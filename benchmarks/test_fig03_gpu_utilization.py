"""Figure 3 — execution time and memory requests vs. GPU core utilisation.

Paper (AMD Kaveri, 4 CPU threads, work-group 256): both Gesummv and SpMV
reach their best execution time at 37.5 % GPU utilisation; beyond it, the
time climbs because the growing number of active PEs causes L2 capacity
misses, visible as a steep rise in total memory requests (Fig. 3b).

Reproduced shape: interior time minimum (12.5–50 % band), monotone-ish
growth of DRAM transactions with utilisation, and a multi-x request ratio
between full and minimal utilisation.
"""

import numpy as np
import pytest

from repro.sim import KAVERI, DopSetting, simulate_execution
from repro.workloads import make_gesummv, make_spmv

from conftest import print_table

UTILISATIONS = [g / 8 for g in range(1, 9)]


@pytest.fixture(scope="module", params=["gesummv", "spmv"])
def sweep(request):
    if request.param == "gesummv":
        workload = make_gesummv(n=16384, wg=256)
    else:
        workload = make_spmv(n=16384, wg=256, nnz_per_row=16384)
    profile = workload.profile()
    results = [
        simulate_execution(
            profile, KAVERI, DopSetting(4, util), run_key=(workload.key, "fig3")
        )
        for util in UTILISATIONS
    ]
    return request.param, results


def test_fig03a_execution_time_curve(benchmark, sweep):
    name, results = sweep
    times = benchmark(lambda: [r.time_s for r in results])
    rows = [
        [f"{util:.3f}", f"{r.time_s * 1e3:8.2f}", f"{r.mem_requests:.3e}",
         f"{r.gpu_l2_survival:.2f}"]
        for util, r in zip(UTILISATIONS, results)
    ]
    print_table(
        f"Figure 3 ({name}, Kaveri, 4 CPU threads)",
        ["GPU util", "time (ms)", "mem requests", "L2 survival"],
        rows,
    )
    best = int(np.argmin(times))
    print(f"best at GPU utilisation {UTILISATIONS[best]:.1%} "
          "(paper: 37.5% for both kernels)")

    # interior optimum in the low-to-mid band
    assert 0 <= best <= 3, "optimum should sit at 12.5%-50% utilisation"
    # full utilisation clearly slower than the optimum
    assert times[-1] > 1.3 * times[best]


def test_fig03b_memory_requests_grow(benchmark, sweep):
    name, results = sweep
    requests = benchmark(lambda: [r.mem_requests for r in results])
    # significant growth from minimal to full utilisation (paper: ~3-6x)
    assert requests[-1] > 1.5 * requests[0], name
    # and the growth concentrates in the upper half of the sweep (the
    # exact curve wiggles a little because the CPU/GPU work split shifts)
    assert requests[-1] > requests[2], name


def test_fig03_l2_survival_mechanism(benchmark, sweep):
    """The request growth must come from the capacity-miss mechanism."""
    _, results = sweep
    survivals = benchmark(lambda: [r.gpu_l2_survival for r in results])
    assert survivals[0] >= survivals[-1]
    assert survivals[-1] < 1.0


def test_benchmark_fig03_point(benchmark):
    workload = make_gesummv(n=16384, wg=256)
    profile = workload.profile()
    benchmark(
        lambda: simulate_execution(
            profile, KAVERI, DopSetting(4, 0.375), run_key=(workload.key, "b")
        )
    )
