"""Table 6 — normalised performance of the static partitionings vs Dopia.

Paper:
    =====================  =============  ======  =======
    configuration          DoP            Kaveri  Skylake
    =====================  =============  ======  =======
    CPU                    (1.0, 0)        70.7%    60.7%
    GPU                    (0, 1.0)        18.6%    39.5%
    ALL                    (1.0, 1.0)      62.3%    69.6%
    Best const. alloc.     (1.0, 0.125)    82.5%    81.6%
    Dopia                  model-driven    94.1%    92.2%
    =====================  =============  ======  =======

Reproduced shape: Dopia > best-constant > {CPU, ALL} > GPU on Kaveri, and
GPU/ALL markedly better on Skylake than on Kaveri (the shared-LLC effect).
"""

import numpy as np

from repro.core import (
    baseline_indices,
    best_constant_allocation,
    config_space,
    evaluate_scheme,
)

from conftest import print_table

PAPER = {
    "kaveri": {"cpu": 0.707, "gpu": 0.186, "all": 0.623, "const": 0.825, "dopia": 0.941},
    "skylake": {"cpu": 0.607, "gpu": 0.395, "all": 0.696, "const": 0.816, "dopia": 0.922},
}


def test_table6(benchmark, platform, synthetic_dataset, dt_cv_selection):
    ds = synthetic_dataset
    benchmark(lambda: best_constant_allocation(ds))
    perf = {}
    for name, index in baseline_indices(platform).items():
        perf[name] = evaluate_scheme(
            ds.times, np.full(ds.n_workloads, index), ds.config_utils
        ).mean_performance
    const_index, perf["const"] = best_constant_allocation(ds)
    perf["dopia"] = evaluate_scheme(
        ds.times, dt_cv_selection, ds.config_utils
    ).mean_performance

    const = config_space(platform)[const_index]
    dop_text = {
        "cpu": "CPU 1.0, GPU 0",
        "gpu": "CPU 0, GPU 1.0",
        "all": "CPU 1.0, GPU 1.0",
        "const": f"CPU {const.cpu_util:.2f}, GPU {const.gpu_util:.3f}",
        "dopia": "driven by ML model",
    }
    paper = PAPER[platform.name]
    rows = [
        [name.upper(), dop_text[name], f"{perf[name]:.1%}", f"{paper[name]:.1%}"]
        for name in ("cpu", "gpu", "all", "const", "dopia")
    ]
    print_table(
        f"Table 6: normalized performance vs Exhaustive ({platform.name})",
        ["configuration", "degree of parallelism", "measured", "paper"],
        rows,
    )

    # ordering: Dopia > best constant >= every naive scheme (the best
    # constant cell can coincide with the CPU corner)
    assert perf["dopia"] > perf["const"]
    assert perf["const"] >= max(perf["cpu"], perf["gpu"], perf["all"])
    # GPU-only is the worst scheme on Kaveri (severe bandwidth cliff)
    if platform.name == "kaveri":
        assert perf["gpu"] == min(perf["cpu"], perf["gpu"], perf["all"])
        assert perf["gpu"] < 0.45
    # Dopia's band
    assert perf["dopia"] >= 0.85


def test_table6_skylake_gpu_friendlier_than_kaveri(benchmark, synthetic_dataset):
    """§9.3: 'conventional co-execution ... performs significantly better
    on Intel' — compare the two platforms' GPU-only means."""
    from repro.core import collect_dataset
    from repro.sim import KAVERI, SKYLAKE
    from repro.workloads import training_workloads

    workloads = training_workloads()
    kaveri = benchmark.pedantic(
        lambda: collect_dataset(workloads, KAVERI, cache=True), rounds=1, iterations=1
    )
    skylake = collect_dataset(workloads, SKYLAKE, cache=True)
    index = baseline_indices(KAVERI)["gpu"]
    gpu_kaveri = evaluate_scheme(
        kaveri.times, np.full(kaveri.n_workloads, index), kaveri.config_utils
    ).mean_performance
    gpu_skylake = evaluate_scheme(
        skylake.times, np.full(skylake.n_workloads, index), skylake.config_utils
    ).mean_performance
    assert gpu_skylake > gpu_kaveri


def test_benchmark_best_constant_search(benchmark, synthetic_dataset):
    benchmark(lambda: best_constant_allocation(synthetic_dataset))
