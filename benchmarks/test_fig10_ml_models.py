"""Figure 10 — accuracy and inference overhead of the four ML families.

Paper (64-fold CV over the 1,224 synthetic workloads): tree-based models
(DT, RF) out-predict the regression models (LIN, SVR) on normalised
performance, while LIN and DT have inference overheads *orders of
magnitude* below SVR and RF — the trade-off that makes DT the deployed
model (§9.2).

Reproduced with ``DOPIA_BENCH_FOLDS`` folds (default 8; 64 = paper) over a
``DOPIA_BENCH_SUBSAMPLE``-strided subset of the synthetic workloads
(default every 2nd; 1 = full).
"""

import numpy as np
import pytest

from repro.core import evaluate_scheme
from repro.ml import SVR, make_model
from repro.ml.crossval import grouped_kfold_indices

from conftest import FOLDS, SUBSAMPLE, print_table

MODEL_SETTINGS = {
    "lin": {},
    "svr": {"max_samples": 1500},
    "dt": {},
    "rf": {"n_estimators": 12},
}


@pytest.fixture(scope="module")
def model_quality(synthetic_dataset):
    ds = synthetic_dataset
    keep = np.arange(0, ds.n_workloads, SUBSAMPLE)
    rows = np.concatenate([np.arange(i * 44, (i + 1) * 44) for i in keep])
    X = ds.feature_matrix()[rows]
    y = ds.targets()[rows]
    groups = np.repeat(np.arange(len(keep)), 44)
    times = ds.times[keep]

    quality = {}
    for name, kwargs in MODEL_SETTINGS.items():
        preds = np.empty_like(y)
        cost = 0.0
        for train, test in grouped_kfold_indices(groups, FOLDS, rng=0):
            model = make_model(name, **kwargs)
            model.fit(X[train], y[train])
            preds[test] = model.predict(X[test])
            cost = model.inference_cost_s(44)
        selected = preds.reshape(len(keep), 44).argmax(axis=1)
        scheme = evaluate_scheme(times, selected, ds.config_utils)
        quality[name] = (scheme, cost, preds, y)
    return quality


def test_fig10a_model_accuracy(benchmark, platform, model_quality):
    benchmark(lambda: model_quality["dt"][0].mean_performance)
    rows = []
    for name, (scheme, _, preds, y) in model_quality.items():
        error = float(np.abs(preds - y).mean())
        rows.append(
            [name.upper(), f"{scheme.mean_performance:.3f}",
             f"{np.median(scheme.normalized_perf):.3f}", f"{error:.3f}"]
        )
    print_table(
        f"Figure 10a: model accuracy ({platform.name}, {FOLDS}-fold CV)",
        ["model", "mean norm. perf", "median", "MAE"],
        rows,
    )
    perf = {k: v[0].mean_performance for k, v in model_quality.items()}
    # tree-based beats linear regression (paper: clearly)
    assert perf["dt"] > perf["lin"]
    assert perf["rf"] > perf["lin"]
    # every model is usable (well above random selection)
    assert min(perf.values()) > 0.55


def test_fig10b_inference_overhead(benchmark, platform, model_quality):
    benchmark(lambda: model_quality["svr"][1])
    rows = [
        [name.upper(), f"{cost * 1e3:.4f}"]
        for name, (_, cost, _, _) in model_quality.items()
    ]
    print_table(
        f"Figure 10b: inference overhead for 44 configurations ({platform.name})",
        ["model", "overhead (ms)"],
        rows,
    )
    cost = {k: v[1] for k, v in model_quality.items()}
    # LIN and DT are orders of magnitude cheaper than SVR (paper: ~100x)
    assert cost["lin"] < cost["svr"] / 50
    assert cost["dt"] < cost["svr"] / 50
    assert cost["rf"] > cost["dt"] * 5


def test_benchmark_dt_inference(benchmark, synthetic_dataset):
    """Timed unit: one 44-configuration DT evaluation (the per-launch cost)."""
    ds = synthetic_dataset
    model = make_model("dt")
    model.fit(ds.feature_matrix()[: 200 * 44], ds.targets()[: 200 * 44])
    rows = ds.feature_matrix()[:44]
    benchmark(lambda: model.predict(rows))


def test_benchmark_svr_inference(benchmark, synthetic_dataset):
    """Timed unit: one 44-configuration SVR evaluation (visibly slower)."""
    ds = synthetic_dataset
    model = SVR(max_samples=800)
    model.fit(ds.feature_matrix()[: 50 * 44], ds.targets()[: 50 * 44])
    rows = ds.feature_matrix()[:44]
    benchmark(lambda: model.predict(rows))
