"""Extension — compiled-backend speedups over the scalar interpreter.

The functional substrate (`repro.interp`) is not part of the paper's
contribution, but everything downstream — differential tests, dataset
collection sanity runs, the application drivers — pays its cost.  This
bench measures what the two compiled tiers buy on representative registry
kernels and asserts the central claims: bit-identical buffers, an
order-of-magnitude vector speedup at realistic launch sizes, and a
further >=2x geomean from the jit tier on the uniform-control fast path.

Run with ``-s`` to see the per-kernel table.
"""

import math
import time

import numpy as np
import pytest

from repro.interp import (
    JitExecutor,
    JitUnsupported,
    KernelExecutor,
    VectorizedExecutor,
    check_vectorizable,
    compile_cached,
)
from repro.workloads import make_atax1, make_gesummv, make_mvt1, make_spmv

from conftest import print_table

#: Mid-sized instances: big enough that batching dominates interpreter
#: dispatch, small enough that the scalar oracle finishes in seconds.
#: GESUMMV/ATAX1/MVT1 take the jit fast path; SpMV's irregular row loop
#: declines to the vector tier.
SUBJECTS = {
    "GESUMMV": lambda: make_gesummv(n=512, wg=64),
    "ATAX1": lambda: make_atax1(n=512, wg=64),
    "MVT1": lambda: make_mvt1(n=512, wg=64),
    "SpMV": lambda: make_spmv(n=2048, wg=64, nnz_per_row=32),
}


def _copy_args(args):
    return {
        name: value.copy() if isinstance(value, np.ndarray) else value
        for name, value in args.items()
    }


def _identical(info, reference, candidate):
    return all(
        reference[buf].tobytes() == candidate[buf].tobytes()
        for buf in info.buffer_params
        if isinstance(reference[buf], np.ndarray)
    )


@pytest.fixture(scope="module")
def speedup_results():
    rows = []
    for name, factory in SUBJECTS.items():
        workload = factory()
        info = workload.kernel_info()
        assert check_vectorizable(info).eligible
        base = workload.full_args(rng=0)

        scalar_args = _copy_args(base)
        started = time.perf_counter()
        KernelExecutor(info, scalar_args, workload.ndrange()).run()
        scalar_s = time.perf_counter() - started

        vector_args = _copy_args(base)
        executor = VectorizedExecutor(info, vector_args, workload.ndrange())
        started = time.perf_counter()
        executor.run()
        vector_s = time.perf_counter() - started

        jit_args = _copy_args(base)
        try:
            compiled = compile_cached(info, jit_args, workload.ndrange())
        except JitUnsupported:
            jit_executor = VectorizedExecutor(
                info, jit_args, workload.ndrange())
            jit_path = "vector"
        else:
            jit_executor = JitExecutor(
                info, jit_args, workload.ndrange(), compiled)
            jit_path = "jit"
        started = time.perf_counter()
        jit_executor.run()
        jit_s = time.perf_counter() - started

        rows.append({
            "kernel": name,
            "work_items": workload.total_work_items,
            "scalar_s": scalar_s,
            "vector_s": vector_s,
            "jit_s": jit_s,
            "speedup": scalar_s / vector_s,
            "jit_speedup": scalar_s / jit_s,
            "jit_over_vector": vector_s / jit_s,
            "jit_path": jit_path,
            "identical": (_identical(info, scalar_args, vector_args)
                          and _identical(info, scalar_args, jit_args)),
            "fallback": executor.used_fallback,
        })
    return rows


def test_ext_backend_speedup_table(benchmark, speedup_results):
    benchmark(lambda: speedup_results[0]["speedup"])
    print_table(
        "Extension: compiled backends vs scalar oracle",
        ["kernel", "work_items", "scalar_s", "vector_s", "jit_s",
         "vec_x", "jit_x", "jit/vec", "path", "identical"],
        [
            [r["kernel"], r["work_items"], f"{r['scalar_s']:.3f}",
             f"{r['vector_s']:.3f}", f"{r['jit_s']:.3f}",
             f"{r['speedup']:.1f}x", f"{r['jit_speedup']:.1f}x",
             f"{r['jit_over_vector']:.1f}x", r["jit_path"], r["identical"]]
            for r in speedup_results
        ],
    )


def test_buffers_bit_identical(speedup_results):
    for row in speedup_results:
        assert row["identical"], row["kernel"]
        assert not row["fallback"], row["kernel"]


def test_order_of_magnitude_speedup(speedup_results):
    for row in speedup_results:
        assert row["speedup"] > 10.0, (
            f"{row['kernel']}: only {row['speedup']:.1f}x"
        )


def test_uniform_fast_path_compiles(speedup_results):
    paths = {r["kernel"]: r["jit_path"] for r in speedup_results}
    assert paths["GESUMMV"] == "jit"
    assert paths["ATAX1"] == "jit"
    assert paths["MVT1"] == "jit"
    # the irregular row loop must decline, not crash
    assert paths["SpMV"] == "vector"


def test_jit_geomean_over_vector(speedup_results):
    ratios = [r["jit_over_vector"] for r in speedup_results
              if r["jit_path"] == "jit"]
    assert ratios, "no kernel took the jit fast path"
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    assert geomean > 2.0, (
        f"jit geomean over vector only {geomean:.2f}x "
        f"(per-kernel: {[round(r, 2) for r in ratios]})"
    )
