"""Extension — vectorized-backend speedup over the scalar interpreter.

The functional substrate (`repro.interp`) is not part of the paper's
contribution, but everything downstream — differential tests, dataset
collection sanity runs, the application drivers — pays its cost.  This
bench measures what the batched NumPy backend buys on representative
registry kernels and asserts the central claims: bit-identical buffers
and an order-of-magnitude speedup at realistic launch sizes.

Run with ``-s`` to see the per-kernel table.
"""

import time

import numpy as np
import pytest

from repro.interp import KernelExecutor, VectorizedExecutor, check_vectorizable
from repro.workloads import make_atax1, make_gesummv, make_spmv

from conftest import print_table

#: Mid-sized instances: big enough that batching dominates interpreter
#: dispatch, small enough that the scalar oracle finishes in seconds.
SUBJECTS = {
    "GESUMMV": lambda: make_gesummv(n=512, wg=64),
    "ATAX1": lambda: make_atax1(n=512, wg=64),
    "SpMV": lambda: make_spmv(n=2048, wg=64, nnz_per_row=32),
}


def _copy_args(args):
    return {
        name: value.copy() if isinstance(value, np.ndarray) else value
        for name, value in args.items()
    }


@pytest.fixture(scope="module")
def speedup_results():
    rows = []
    for name, factory in SUBJECTS.items():
        workload = factory()
        info = workload.kernel_info()
        assert check_vectorizable(info).eligible
        base = workload.full_args(rng=0)

        scalar_args = _copy_args(base)
        started = time.perf_counter()
        KernelExecutor(info, scalar_args, workload.ndrange()).run()
        scalar_s = time.perf_counter() - started

        vector_args = _copy_args(base)
        executor = VectorizedExecutor(info, vector_args, workload.ndrange())
        started = time.perf_counter()
        executor.run()
        vector_s = time.perf_counter() - started

        identical = all(
            scalar_args[buf].tobytes() == vector_args[buf].tobytes()
            for buf in info.buffer_params
            if isinstance(scalar_args[buf], np.ndarray)
        )
        rows.append({
            "kernel": name,
            "work_items": workload.total_work_items,
            "scalar_s": scalar_s,
            "vector_s": vector_s,
            "speedup": scalar_s / vector_s,
            "identical": identical,
            "fallback": executor.used_fallback,
        })
    return rows


def test_ext_backend_speedup_table(benchmark, speedup_results):
    benchmark(lambda: speedup_results[0]["speedup"])
    print_table(
        "Extension: vectorized backend vs scalar oracle",
        ["kernel", "work_items", "scalar_s", "vector_s", "speedup", "identical"],
        [
            [r["kernel"], r["work_items"], f"{r['scalar_s']:.3f}",
             f"{r['vector_s']:.3f}", f"{r['speedup']:.1f}x", r["identical"]]
            for r in speedup_results
        ],
    )


def test_buffers_bit_identical(speedup_results):
    for row in speedup_results:
        assert row["identical"], row["kernel"]
        assert not row["fallback"], row["kernel"]


def test_order_of_magnitude_speedup(speedup_results):
    for row in speedup_results:
        assert row["speedup"] > 10.0, (
            f"{row['kernel']}: only {row['speedup']:.1f}x"
        )
