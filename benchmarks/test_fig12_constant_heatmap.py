"""Figure 12 / Table 6 companion — average performance of constant allocations.

Paper: averaging each constant (CPU, GPU) allocation's normalised
performance over all 1,224 workloads, the best constant cell reaches only
~82 % (Kaveri) / ~82 % (Skylake) of the exhaustive oracle — Dopia's
per-kernel selection (94 % / 92 %) cannot be replaced by any single
configuration.  The heat map's mass sits at full CPU + small GPU fraction.
"""


from repro.core import best_constant_allocation, config_space

from conftest import print_table


def test_fig12_heatmap(benchmark, platform, synthetic_dataset):
    ds = synthetic_dataset
    norm = benchmark(lambda: ds.normalized_performance().mean(axis=0))
    configs = config_space(platform)
    lookup = {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}
    cpu_levels = sorted({c.cpu_util for c in configs})
    gpu_levels = sorted({c.gpu_util for c in configs}, reverse=True)

    rows = []
    for gpu in gpu_levels:
        row = [f"GPU {gpu:.3f}"]
        for cpu in cpu_levels:
            index = lookup.get((cpu, gpu))
            row.append("-" if index is None else f"{norm[index]:.2f}")
        rows.append(row)
    print_table(
        f"Figure 12: mean normalized performance of constant allocations "
        f"({platform.name}, 1,224 workloads)",
        ["alloc"] + [f"CPU {u:.2f}" for u in cpu_levels],
        rows,
    )

    best_index, best_mean = best_constant_allocation(ds)
    best = configs[best_index]
    print(f"best constant allocation: CPU {best.cpu_util:.2f}, "
          f"GPU {best.gpu_util:.3f} -> {best_mean:.3f} "
          "(paper: CPU 1.0, GPU 0.125 -> ~0.82)")

    # no constant allocation approaches the oracle
    assert best_mean < 0.93
    # the best constant cell engages the full CPU and a small GPU slice
    assert best.cpu_util >= 0.75
    assert best.gpu_util <= 0.5


def test_fig12_full_gpu_column_is_poor(benchmark, platform, synthetic_dataset):
    """The bottom-right region (full GPU) must average poorly."""
    ds = synthetic_dataset
    norm = benchmark(lambda: ds.normalized_performance().mean(axis=0))
    configs = config_space(platform)
    full_gpu = [i for i, c in enumerate(configs) if c.gpu_util == 1.0]
    best_cell = norm.max()
    assert norm[full_gpu].max() < best_cell - 0.1


def test_benchmark_heatmap_aggregation(benchmark, synthetic_dataset):
    ds = synthetic_dataset
    benchmark(lambda: ds.normalized_performance().mean(axis=0))
