"""Shared fixtures for the benchmark harness.

Heavy artefacts — the two 1,224-workload training datasets and the
cross-validated model predictions — are computed once per session and
cached on disk under the repository ``.cache`` directory, so re-running
individual benchmark files is cheap.

Environment knobs
-----------------
``DOPIA_BENCH_FOLDS``
    Cross-validation folds for the model-quality benchmarks (default 8;
    the paper uses 64 — set 64 to reproduce the full protocol, at ~10x
    the runtime).
``DOPIA_BENCH_SUBSAMPLE``
    Keep every k-th synthetic workload in the model-comparison benches
    (default 2).  1 reproduces the full set.
``DOPIA_JOBS``
    Worker processes for cold dataset collection (default: cpu count).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import collect_dataset
from repro.core.collect import default_jobs
from repro.ml import make_model
from repro.ml.crossval import grouped_kfold_indices
from repro.sim import KAVERI, SKYLAKE
from repro.workloads import real_workloads, training_workloads

FOLDS = int(os.environ.get("DOPIA_BENCH_FOLDS", "8"))
SUBSAMPLE = int(os.environ.get("DOPIA_BENCH_SUBSAMPLE", "2"))
JOBS = default_jobs()

PLATFORMS = (KAVERI, SKYLAKE)


def platform_params():
    return pytest.mark.parametrize("platform", PLATFORMS, ids=lambda p: p.name)


@pytest.fixture(scope="session", params=PLATFORMS, ids=lambda p: p.name)
def platform(request):
    return request.param


@pytest.fixture(scope="session")
def synthetic_dataset(platform):
    """The full Table-4 synthetic dataset (1,224 x 44) for one platform."""
    return collect_dataset(training_workloads(), platform, cache=True, jobs=JOBS)


@pytest.fixture(scope="session")
def real_dataset(platform):
    """The 14 real-world workloads measured at all 44 configurations."""
    return collect_dataset(real_workloads(), platform, cache=True, jobs=JOBS)


@pytest.fixture(scope="session")
def dt_cv_selection(synthetic_dataset):
    """Out-of-fold DT selections over the synthetic set (Table 5 / Fig 11).

    Grouped K-fold so all 44 rows of a workload stay in one fold; returns
    the chosen configuration index per workload.
    """
    ds = synthetic_dataset
    X, y, groups = ds.feature_matrix(), ds.targets(), ds.groups()
    preds = np.empty_like(y)
    for train, test in grouped_kfold_indices(groups, FOLDS, rng=0):
        model = make_model("dt")
        model.fit(X[train], y[train])
        preds[test] = model.predict(X[test])
    return preds.reshape(ds.n_workloads, ds.n_configs).argmax(axis=1)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform plain-text table output for every reproduced figure/table."""
    print()
    print(f"== {title} ==")
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
