"""Extension — tracing-overhead guard.

The observability layer promises to be zero-perturbation *and* cheap:
every instrumentation site is one ``tracer.enabled`` attribute check when
tracing is off, and a bounded ring-buffer append when it is on.  This
bench times the Algorithm-1 fast path (GESUMMV, vectorized
backend) with the tracer disabled and enabled and asserts the enabled run
stays within 5% of the disabled one — so instrumentation creep that would
make tracing unusable on real runs fails CI instead of landing silently.

Plain ``time.perf_counter`` min-of-N timing on purpose: this file runs in
the fast CI lane, which installs no ``pytest-benchmark``.

The measured result is committed as ``BENCH_trace_overhead.json`` at the
repository root.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.core import run_dynamic
from repro.obs import tracer
from repro.sim import DopSetting
from repro.transform import make_malleable
from repro.workloads import make_gesummv

#: Relative overhead budget for tracing-on vs tracing-off.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so sub-millisecond timer noise cannot fail
#: the relative check on a very fast baseline.
EPS_S = 2e-3
#: min-of-N repetitions; the minimum is the least-noisy estimator here.
REPEATS = 15
#: launches per timed sample, so each sample crosses every
#: instrumentation site (span, per-round instants, backend choice) often.
LAUNCHES_PER_SAMPLE = 3

#: CPU-only keeps the sample on the vectorized fast path — the GPU side
#: of a co-executed launch runs the malleable kernel on the scalar
#: interpreter and would swamp the measurement with interpreter time.
SETTING = DopSetting(cpu_threads=4, gpu_fraction=0.0)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_trace_overhead.json"


def _one_sample(info, malleable, workload):
    args = workload.full_args(rng=0)
    started = time.perf_counter()
    for _ in range(LAUNCHES_PER_SAMPLE):
        trace = run_dynamic(
            info, malleable, args, workload.ndrange(), SETTING,
            backend="vector",
        )
    elapsed = time.perf_counter() - started
    assert trace.total == workload.ndrange().total_groups
    return elapsed


def _interleaved_minima(info, malleable, workload):
    """min-of-N for both modes, alternating disabled/enabled samples.

    Interleaving means slow machine drift (thermal, background load)
    lands on both sides equally instead of biasing whichever mode ran
    second.
    """
    disabled, enabled = [], []
    events = 0
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            tracer.disable()
            disabled.append(_one_sample(info, malleable, workload))
            tracer.clear()
            tracer.enable()
            try:
                enabled.append(_one_sample(info, malleable, workload))
                events = len(tracer.events())
            finally:
                tracer.disable()
                tracer.clear()
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(disabled), min(enabled), events


def test_ext_trace_overhead_within_budget():
    workload = make_gesummv(n=256, wg=64)
    info = workload.kernel_info()
    malleable = make_malleable(workload.source, work_dim=workload.work_dim)

    tracer.disable()
    tracer.clear()
    # warmup (executor caches, numpy first-touch)
    _one_sample(info, malleable, workload)

    disabled_s, enabled_s, events = _interleaved_minima(info, malleable, workload)

    overhead = enabled_s / disabled_s - 1.0
    result = {
        "bench": "trace_overhead",
        "workload": "GESUMMV n=256 wg=64 (vector backend, dynamic schedule, "
                    "cpu-only DoP)",
        "repeats": REPEATS,
        "launches_per_sample": LAUNCHES_PER_SAMPLE,
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
        "events_recorded": events,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(f"trace overhead: disabled {disabled_s * 1e3:.2f} ms, "
          f"enabled {enabled_s * 1e3:.2f} ms ({overhead:+.1%})")

    assert np.isfinite(overhead)
    assert enabled_s <= disabled_s * (1.0 + OVERHEAD_BUDGET) + EPS_S, (
        f"tracing overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(disabled {disabled_s:.4f}s, enabled {enabled_s:.4f}s)"
    )


def test_disabled_tracer_emits_nothing_on_the_fast_path():
    workload = make_gesummv(n=256, wg=64)
    info = workload.kernel_info()
    malleable = make_malleable(workload.source, work_dim=workload.work_dim)
    tracer.disable()
    tracer.clear()
    _one_sample(info, malleable, workload)
    assert tracer.events() == []
    assert tracer.total_events == 0
