"""Figure 9 — dynamic vs. static workload distribution.

Paper: across ~50 real-kernel/input-size combinations, Dopia's dynamic
distribution achieves similar or *better* execution time than the best of
19 static partitionings (5 %…95 % CPU share), because the dynamic scheme
balances at a finer granularity than the 5 % static step; CPU-only and
GPU-only are much slower on average.

Reproduced: 14 kernels × 4 input scales (≥ 50 workloads); we report the
normalised-to-static execution-time distribution for CPU / GPU / STATIC /
DYNAMIC and assert the ordering of the means.
"""

import numpy as np
import pytest

from repro.core import best_static_time, distribution_stats
from repro.core.baselines import baseline_configs
from repro.sim import simulate_execution
from repro.workloads import REAL_WORKLOAD_FACTORIES

from conftest import print_table

#: per-kernel input scales (fractions of the paper size)
SCALES = (0.25, 0.5, 0.75, 1.0)


def scaled_workloads():
    out = []
    for name, factory in REAL_WORKLOAD_FACTORIES.items():
        for scale in SCALES:
            if name == "SYR2K":
                workload = factory(n=max(int(1024 * scale), 64))
            elif name == "2DCONV":
                workload = factory(n=max(int(8192 * scale), 64))
            else:
                kwargs = {"n": max(int(16384 * scale) // 256 * 256, 256)}
                workload = factory(**kwargs)
            out.append(workload)
    return out


@pytest.fixture(scope="module")
def fig9_results(platform):
    schemes = {"cpu": [], "gpu": [], "static": [], "dynamic": []}
    configs = baseline_configs(platform)
    for workload in scaled_workloads():
        profile = workload.profile()
        cpu = simulate_execution(
            profile, platform, configs["cpu"].setting, run_key=(workload.key, "f9")
        ).time_s
        gpu = simulate_execution(
            profile, platform, configs["gpu"].setting, run_key=(workload.key, "f9")
        ).time_s
        static, _ = best_static_time(workload, platform)
        dynamic = simulate_execution(
            profile, platform, configs["all"].setting,
            scheduler="dynamic", run_key=(workload.key, "f9"),
        ).time_s
        schemes["cpu"].append(cpu / static)
        schemes["gpu"].append(gpu / static)
        schemes["static"].append(1.0)
        schemes["dynamic"].append(dynamic / static)
    return {k: np.array(v) for k, v in schemes.items()}


def test_fig09_distribution_table(benchmark, platform, fig9_results):
    benchmark(lambda: distribution_stats(fig9_results["dynamic"]))
    rows = []
    for name in ("cpu", "gpu", "static", "dynamic"):
        stats = distribution_stats(fig9_results[name])
        rows.append(
            [name.upper()]
            + [f"{stats[k]:.2f}" for k in ("mean", "median", "p25", "p75", "p5", "p95")]
        )
    print_table(
        f"Figure 9: execution time normalised to best-static ({platform.name}, "
        f"{len(fig9_results['dynamic'])} workloads)",
        ["scheme", "mean", "median", "p25", "p75", "p5", "p95"],
        rows,
    )

    dynamic = fig9_results["dynamic"]
    # dynamic distribution is competitive with the best static split: the
    # paper's DYNAMIC box has a median near 1 with a mean pulled up by a
    # tail (its whiskers reach ~4x on Kaveri)
    assert np.median(dynamic) < 1.35
    assert dynamic.mean() < 1.7
    # and single-device execution is worse on average than co-execution
    assert fig9_results["cpu"].mean() > dynamic.mean()
    assert fig9_results["gpu"].mean() > dynamic.mean()


def test_fig09_dynamic_beats_static_somewhere(benchmark, platform, fig9_results):
    """The paper's counter-intuitive result: dynamic can *beat* static
    because it balances finer than the 5% grid."""
    wins = benchmark(lambda: (fig9_results["dynamic"] < 1.0).any())
    assert wins


def test_fig09_at_least_50_workloads(benchmark, fig9_results):
    count = benchmark(lambda: len(fig9_results["dynamic"]))
    assert count >= 50


def test_benchmark_dynamic_vs_static_point(benchmark, platform):
    workload = scaled_workloads()[8]
    profile = workload.profile()
    setting = baseline_configs(platform)["all"].setting
    benchmark(
        lambda: simulate_execution(
            profile, platform, setting, scheduler="dynamic", run_key=("bench",)
        )
    )
