"""Extension — cross-platform model transfer.

The conclusion (§10) argues that "performance models for different
architectures can be generated automatically" and that the code-analysis
features "are applicable to any processor".  This extension quantifies the
other side of that claim: a model *trained on one platform's measurements*
must not be blindly applied to the other — the feature-to-performance
mapping is architecture-specific (Kaveri's bandwidth cliff vs Skylake's
shared LLC), which is exactly why Dopia retrains per platform.

We train a DT on the full Kaveri dataset and select configurations for the
Skylake measurements (and vice versa), comparing against natively trained
models under grouped CV.
"""

import numpy as np
import pytest

from repro.core import collect_dataset, evaluate_scheme
from repro.ml import make_model
from repro.ml.crossval import grouped_kfold_indices
from repro.sim import KAVERI, SKYLAKE
from repro.workloads import training_workloads

from conftest import FOLDS, print_table


@pytest.fixture(scope="module")
def transfer_results():
    workloads = training_workloads()
    datasets = {
        "kaveri": collect_dataset(workloads, KAVERI, cache=True),
        "skylake": collect_dataset(workloads, SKYLAKE, cache=True),
    }
    # native: grouped-CV selections on the platform's own data
    native = {}
    for name, ds in datasets.items():
        X, y, groups = ds.feature_matrix(), ds.targets(), ds.groups()
        preds = np.empty_like(y)
        for train, test in grouped_kfold_indices(groups, FOLDS, rng=0):
            model = make_model("dt")
            model.fit(X[train], y[train])
            preds[test] = model.predict(X[test])
        selection = preds.reshape(ds.n_workloads, ds.n_configs).argmax(axis=1)
        native[name] = evaluate_scheme(ds.times, selection, ds.config_utils)
    # transferred: train fully on the other platform, apply directly
    transferred = {}
    for source, target in (("kaveri", "skylake"), ("skylake", "kaveri")):
        model = make_model("dt")
        model.fit(datasets[source].feature_matrix(), datasets[source].targets())
        ds = datasets[target]
        preds = model.predict(ds.feature_matrix())
        selection = preds.reshape(ds.n_workloads, ds.n_configs).argmax(axis=1)
        transferred[target] = evaluate_scheme(ds.times, selection, ds.config_utils)
    return native, transferred


def test_ext_cross_platform_table(benchmark, transfer_results):
    native, transferred = transfer_results
    benchmark(lambda: native["kaveri"].mean_performance)
    rows = [
        [
            target,
            f"{native[target].mean_performance:.3f}",
            f"{transferred[target].mean_performance:.3f}",
            f"{native[target].mean_distance:.3f}",
            f"{transferred[target].mean_distance:.3f}",
        ]
        for target in ("kaveri", "skylake")
    ]
    print_table(
        "Extension: cross-platform model transfer (DT)",
        ["target", "native perf", "transferred perf", "native dist", "transferred dist"],
        rows,
    )
    for target in ("kaveri", "skylake"):
        # a foreign model is still far better than random...
        assert transferred[target].mean_performance > 0.5
        # ...but the natively trained model wins: per-platform training
        # (the paper's offline phase) is justified
        assert (
            native[target].mean_performance
            >= transferred[target].mean_performance - 0.02
        )


def test_ext_transfer_hurts_more_on_the_gpu_cliff(benchmark, transfer_results):
    """Transferring the Skylake model to Kaveri mispredicts GPU-heavy
    configurations (Skylake tolerates them; Kaveri does not)."""
    native, transferred = transfer_results
    benchmark(lambda: transferred["kaveri"].mean_distance)
    assert transferred["kaveri"].mean_distance >= native["kaveri"].mean_distance - 0.02
