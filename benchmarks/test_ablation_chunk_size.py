"""Ablation — GPU work-chunk size in Algorithm 1 (design decision D1).

The paper fixes the GPU's per-dispatch share to num_wgs/10, "empirically
found to minimise load imbalance and dispatch overhead" (§7).  This
ablation sweeps the divisor: very small divisors (huge chunks) suffer
load imbalance when the GPU is slow; very large divisors (tiny chunks)
pay a dispatch overhead per chunk.  The sweet spot should sit in the
middle — containing, or near, the paper's 10.
"""

import numpy as np
import pytest

from repro.sim import DopSetting, simulate_execution
from repro.workloads import make_gesummv, make_conv2d

from conftest import print_table

DIVISORS = (1, 2, 5, 10, 20, 50, 100, 320)


@pytest.fixture(scope="module")
def chunk_sweep(platform):
    out = {}
    for workload in (make_gesummv(n=16384, wg=256), make_conv2d(n=4096, wg=(16, 16))):
        profile = workload.profile()
        setting = DopSetting(platform.cpu.threads, 1.0)
        times = [
            simulate_execution(
                profile, platform, setting, scheduler="dynamic",
                chunk_divisor=divisor, run_key=(workload.key, "chunk"),
            ).time_s
            for divisor in DIVISORS
        ]
        out[workload.key.split("/")[0]] = np.array(times)
    return out


def test_ablation_chunk_divisor(benchmark, platform, chunk_sweep):
    benchmark(lambda: int(np.argmin(chunk_sweep["GESUMMV"])))
    rows = []
    for name, times in chunk_sweep.items():
        best = DIVISORS[int(np.argmin(times))]
        rows.append([name] + [f"{t * 1e3:.2f}" for t in times] + [best])
    print_table(
        f"Ablation D1: dynamic-distribution time (ms) vs chunk divisor "
        f"({platform.name}, ALL configuration)",
        ["kernel"] + [f"1/{d}" for d in DIVISORS] + ["best"],
        rows,
    )
    for name, times in chunk_sweep.items():
        by_divisor = dict(zip(DIVISORS, times))
        # coarse chunks (divisor 1-2) suffer load imbalance: the paper's
        # 1/10 must clearly beat whole-workload GPU pushes
        assert by_divisor[1] > by_divisor[10], name
        # and 1/10 is within 2x of the sweep's best everywhere (for very
        # memory-bound kernels our model rewards even finer chunks than
        # the paper's hardware did; see EXPERIMENTS.md)
        assert by_divisor[10] <= times.min() * 2.0, name


def test_ablation_fine_chunks_plateau(benchmark, platform, chunk_sweep):
    """Beyond ~1/50 the curve flattens: finer dispatch buys nothing more
    (the dispatch overhead eats the remaining balance gain)."""
    benchmark(lambda: dict(zip(DIVISORS, chunk_sweep["GESUMMV"])))
    for name, times in chunk_sweep.items():
        by_divisor = dict(zip(DIVISORS, times))
        assert by_divisor[320] >= by_divisor[100] * 0.95, name


def test_benchmark_chunked_simulation(benchmark, platform):
    workload = make_gesummv(n=16384, wg=256)
    profile = workload.profile()
    setting = DopSetting(platform.cpu.threads, 1.0)
    benchmark(
        lambda: simulate_execution(
            profile, platform, setting, chunk_divisor=10, run_key=("ab",)
        )
    )
