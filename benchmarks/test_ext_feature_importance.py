"""Extension — which Table-1 features drive the DoP selection?

The paper motivates its feature set (§5.1) by the memory-bandwidth
bottleneck: access-pattern counts and the configuration's utilisation
levels should carry the signal.  CART impurity-decrease importances of the
deployed DT make that quantitative.
"""

import numpy as np

from repro.analysis.features import FEATURE_NAMES
from repro.ml import DecisionTreeRegressor

from conftest import print_table


def test_ext_feature_importances(benchmark, platform, synthetic_dataset):
    ds = synthetic_dataset
    model = DecisionTreeRegressor()
    model.fit(ds.feature_matrix(), ds.targets())
    importances = benchmark(lambda: model.feature_importances(len(FEATURE_NAMES)))

    order = np.argsort(importances)[::-1]
    rows = [
        [FEATURE_NAMES[i], f"{importances[i]:.3f}"]
        for i in order
    ]
    print_table(
        f"Extension: DT feature importances ({platform.name})",
        ["feature", "importance"],
        rows,
    )

    by_name = dict(zip(FEATURE_NAMES, importances))
    # the configuration axes must matter: the model's whole job is to rank
    # configurations for a fixed kernel
    assert by_name["cpu_util"] + by_name["gpu_util"] > 0.2
    # and the code/memory features must carry real signal too — otherwise
    # per-kernel selection would be impossible
    code_features = sum(
        by_name[name]
        for name in ("mem_constant", "mem_continuous", "mem_stride",
                     "mem_random", "arith_int", "arith_float")
    )
    assert code_features > 0.05
    assert np.isclose(importances.sum(), 1.0)
