"""Figure 13 — the 14 real-world kernels under Dopia (leave-one-out).

Paper: with the kernel under evaluation excluded from training, Dopia (DT)
achieves on average 84 % of the exhaustive oracle on both platforms —
including all model-inference and distribution overhead — beating the
fixed CPU / GPU / ALL schemes (ALL ≈ 75-76 %).  SVR would reach 88 %
ignoring its inference overhead, but the overhead drops it to 64-70 %
(the "Overhead" bars); MVT2 is Dopia's known misprediction, caused by its
feature vector aliasing ATAX2's.

Reproduced: same leave-one-kernel-out protocol over (synthetic ∪ real)
training data; synthetic part strided by ``DOPIA_BENCH_SUBSAMPLE``.
"""

import numpy as np
import pytest

from repro.core import baseline_indices
from repro.ml import make_model

from conftest import SUBSAMPLE, print_table

MODEL_SETTINGS = {
    "lin": {},
    "svr": {"max_samples": 1500},
    "dt": {},
    "rf": {"n_estimators": 12},
}

PAPER_AVG_DT = 0.84


@pytest.fixture(scope="module")
def fig13(platform, synthetic_dataset, real_dataset):
    synth, real = synthetic_dataset, real_dataset
    keep = np.arange(0, synth.n_workloads, SUBSAMPLE)
    synth_rows = np.concatenate([np.arange(i * 44, (i + 1) * 44) for i in keep])
    X_synth = synth.feature_matrix()[synth_rows]
    y_synth = synth.targets()[synth_rows]
    X_real = real.feature_matrix()
    y_real = real.targets()

    n_real = real.n_workloads
    best_times = real.times.min(axis=1)

    results: dict[str, dict[str, float]] = {}
    overhead: dict[str, dict[str, float]] = {}
    for name, kwargs in MODEL_SETTINGS.items():
        per_kernel: dict[str, float] = {}
        per_kernel_overhead: dict[str, float] = {}
        for k in range(n_real):
            train_real = np.concatenate(
                [np.arange(i * 44, (i + 1) * 44) for i in range(n_real) if i != k]
            )
            X = np.vstack([X_synth, X_real[train_real]])
            y = np.concatenate([y_synth, y_real[train_real]])
            model = make_model(name, **kwargs)
            model.fit(X, y)
            rows = X_real[k * 44:(k + 1) * 44]
            selected = int(np.argmax(model.predict(rows)))
            time = real.times[k, selected]
            cost = model.inference_cost_s(44)
            key = real.workload_keys[k].split("/")[0]
            per_kernel[key] = best_times[k] / time
            per_kernel_overhead[key] = best_times[k] / (time + cost)
        results[name] = per_kernel
        overhead[name] = per_kernel_overhead

    fixed: dict[str, dict[str, float]] = {}
    for name, index in baseline_indices(platform).items():
        fixed[name] = {
            real.workload_keys[k].split("/")[0]: best_times[k] / real.times[k, index]
            for k in range(n_real)
        }
    return results, overhead, fixed


def _average(values: dict[str, float]) -> float:
    return float(np.mean(list(values.values())))


def _geomean(values: dict[str, float]) -> float:
    return float(np.exp(np.mean(np.log(list(values.values())))))


def test_fig13_per_kernel_table(benchmark, platform, fig13):
    results, overhead, fixed = fig13
    benchmark(lambda: _average(overhead["dt"]))
    kernels = list(results["dt"].keys())
    rows = []
    for kernel in kernels:
        rows.append(
            [kernel]
            + [f"{fixed[s][kernel]:.2f}" for s in ("cpu", "gpu", "all")]
            + [f"{overhead[m][kernel]:.2f}" for m in ("lin", "svr", "dt", "rf")]
        )
    rows.append(
        ["Average"]
        + [f"{_average(fixed[s]):.2f}" for s in ("cpu", "gpu", "all")]
        + [f"{_average(overhead[m]):.2f}" for m in ("lin", "svr", "dt", "rf")]
    )
    rows.append(
        ["Geomean"]
        + [f"{_geomean(fixed[s]):.2f}" for s in ("cpu", "gpu", "all")]
        + [f"{_geomean(overhead[m]):.2f}" for m in ("lin", "svr", "dt", "rf")]
    )
    print_table(
        f"Figure 13: normalized performance vs exhaustive search ({platform.name}); "
        f"paper Dopia.DT average = {PAPER_AVG_DT:.2f}",
        ["kernel", "CPU", "GPU", "ALL", "Dopia.LIN", "Dopia.SVR", "Dopia.DT", "Dopia.RF"],
        rows,
    )

    dt_avg = _average(overhead["dt"])
    # Dopia (DT) reaches a large fraction of the oracle, overhead included
    assert dt_avg >= 0.70
    # and beats every fixed scheme on average
    for scheme in ("cpu", "gpu", "all"):
        assert dt_avg > _average(fixed[scheme])


def test_fig13_overhead_penalises_heavy_models(benchmark, platform, fig13):
    """§9.4: SVR's accuracy advantage is eaten by its inference overhead."""
    results, overhead, _ = fig13
    benchmark(lambda: _average(results["svr"]))
    svr_drop = _average(results["svr"]) - _average(overhead["svr"])
    dt_drop = _average(results["dt"]) - _average(overhead["dt"])
    assert svr_drop > dt_drop
    assert dt_drop < 0.02  # DT inference is effectively free


def test_fig13_dt_competitive_with_expensive_models(benchmark, platform, fig13):
    """With overhead charged, DT is at least as good as SVR/RF (the §9.2
    justification for deploying the tree)."""
    _, overhead, _ = fig13
    benchmark(lambda: _average(overhead["rf"]))
    assert _average(overhead["dt"]) >= _average(overhead["svr"]) - 0.05
    assert _average(overhead["dt"]) >= _average(overhead["rf"]) - 0.05


def test_fig13_gpu_affine_kernels_prefer_gpu(benchmark, platform, fig13):
    """2DCONV and FDTD are GPU-friendly (§9.4): GPU-only must be at least
    competitive with CPU-only on them (in our simulator the FDTD stencils
    land at near-parity rather than a clear GPU win), in sharp contrast to
    the memory-bound kernels where GPU-only collapses."""
    _, _, fixed = fig13
    benchmark(lambda: fixed["gpu"]["2DCONV"])
    for kernel in ("2DCONV", "FDTD1", "FDTD2", "FDTD3"):
        assert fixed["gpu"][kernel] > fixed["cpu"][kernel] - 0.08, kernel
        assert fixed["gpu"][kernel] > 0.8, kernel
    # and the anti-class: GPU-only collapses on the bandwidth-bound kernels
    for kernel in ("GESUMMV", "SpMV", "SYR2K"):
        assert fixed["gpu"][kernel] < 0.5, kernel


def test_benchmark_loo_single_fit(benchmark, synthetic_dataset):
    """Timed unit: one leave-one-out DT fit (the dominant Fig-13 cost)."""
    ds = synthetic_dataset
    keep = np.arange(0, ds.n_workloads, max(SUBSAMPLE, 4))
    rows = np.concatenate([np.arange(i * 44, (i + 1) * 44) for i in keep])
    X, y = ds.feature_matrix()[rows], ds.targets()[rows]

    def fit():
        model = make_model("dt")
        model.fit(X, y)
        return model

    benchmark.pedantic(fit, rounds=1, iterations=1)
