"""Figure 11 — Euclidean distance error and normalised performance (64-fold CV).

Paper: Dopia's mean Euclidean distance from the selected to the optimal
configuration (normalised by √2) is ~15 % on Kaveri and ~22 % on Skylake —
far below any fixed scheme — and its mean normalised performance against
the exhaustive oracle is 94 % (Kaveri) / 92 % (Skylake), versus well below
80 % for CPU/GPU/ALL.

Reproduced with the shared grouped-CV DT selections.
"""

import numpy as np

from repro.core import baseline_indices, distribution_stats, evaluate_scheme

from conftest import print_table

PAPER_PERF = {"kaveri": 0.941, "skylake": 0.922}
PAPER_DIST = {"kaveri": 0.15, "skylake": 0.22}


def _schemes(platform, dataset, dt_selection):
    schemes = {}
    for name, index in baseline_indices(platform).items():
        schemes[name] = evaluate_scheme(
            dataset.times, np.full(dataset.n_workloads, index), dataset.config_utils
        )
    schemes["dopia"] = evaluate_scheme(
        dataset.times, dt_selection, dataset.config_utils
    )
    return schemes


def test_fig11a_euclidean_distance(benchmark, platform, synthetic_dataset, dt_cv_selection):
    schemes = benchmark(
        lambda: _schemes(platform, synthetic_dataset, dt_cv_selection)
    )
    rows = []
    for name, scheme in schemes.items():
        stats = distribution_stats(scheme.distance_errors)
        rows.append([name.upper(), f"{stats['mean']:.3f}", f"{stats['median']:.3f}",
                     f"{stats['p75']:.3f}"])
    print_table(
        f"Figure 11a: Euclidean distance error ({platform.name}); "
        f"paper Dopia mean = {PAPER_DIST[platform.name]:.2f}",
        ["scheme", "mean", "median", "p75"],
        rows,
    )
    dopia = schemes["dopia"].mean_distance
    # Dopia is much closer to the optimum than every fixed scheme
    for name in ("cpu", "gpu", "all"):
        assert dopia < schemes[name].mean_distance
    # and lands in the paper's band (≈0.15-0.22, we allow 0.05-0.35)
    assert 0.05 <= dopia <= 0.35
    # tail: 75th percentile within ~20-30% (paper's observation)
    assert np.percentile(schemes["dopia"].distance_errors, 75) <= 0.45


def test_fig11b_normalized_performance(benchmark, platform, synthetic_dataset, dt_cv_selection):
    schemes = benchmark(
        lambda: _schemes(platform, synthetic_dataset, dt_cv_selection)
    )
    rows = []
    for name, scheme in schemes.items():
        stats = distribution_stats(scheme.normalized_perf)
        rows.append([name.upper(), f"{stats['mean']:.3f}", f"{stats['median']:.3f}",
                     f"{stats['p25']:.3f}"])
    print_table(
        f"Figure 11b: normalized performance vs Exhaustive ({platform.name}); "
        f"paper Dopia mean = {PAPER_PERF[platform.name]:.2f}",
        ["scheme", "mean", "median", "p25"],
        rows,
    )
    dopia = schemes["dopia"].mean_performance
    # close-to-optimal despite moderate exact-hit accuracy (the Fig-11 point)
    assert dopia >= 0.85
    for name in ("cpu", "gpu", "all"):
        assert dopia > schemes[name].mean_performance + 0.1


def test_fig11_minor_errors_are_cheap(benchmark, platform, synthetic_dataset, dt_cv_selection):
    """§9.3: small distance errors barely cost performance."""
    scheme = benchmark(
        lambda: evaluate_scheme(
            synthetic_dataset.times, dt_cv_selection, synthetic_dataset.config_utils
        )
    )
    near = scheme.distance_errors < 0.2
    if near.sum() >= 10:
        assert scheme.normalized_perf[near].mean() > 0.9


def test_benchmark_scheme_evaluation(benchmark, synthetic_dataset, dt_cv_selection):
    ds = synthetic_dataset
    benchmark(lambda: evaluate_scheme(ds.times, dt_cv_selection, ds.config_utils))
