"""Table 5 — correct best-configuration classifications over 1,224 workloads.

Paper:
    =========  ====  ===  ===  =====
    platform   CPU   GPU  ALL  Dopia
    =========  ====  ===  ===  =====
    Kaveri      253   15    7    611
    Skylake      27   57   19    334
    =========  ====  ===  ===  =====

Reproduced shape: Dopia's model picks the exact best configuration far
more often than any fixed scheme, and no fixed scheme exceeds a few
hundred hits; exact counts depend on the platform model and noise.
"""

import numpy as np

from repro.core import baseline_indices, evaluate_scheme
from repro.ml import make_model

from conftest import print_table

PAPER = {
    "kaveri": {"cpu": 253, "gpu": 15, "all": 7, "dopia": 611},
    "skylake": {"cpu": 27, "gpu": 57, "all": 19, "dopia": 334},
}


def test_table5_counts(benchmark, platform, synthetic_dataset, dt_cv_selection):
    ds = synthetic_dataset
    benchmark(
        lambda: evaluate_scheme(ds.times, dt_cv_selection, ds.config_utils).correct
    )
    counts = {}
    for name, index in baseline_indices(platform).items():
        scheme = evaluate_scheme(
            ds.times, np.full(ds.n_workloads, index), ds.config_utils
        )
        counts[name] = scheme.correct
    dopia = evaluate_scheme(ds.times, dt_cv_selection, ds.config_utils)
    counts["dopia"] = dopia.correct

    paper = PAPER[platform.name]
    rows = [
        [name.upper(), counts[name], paper[name]]
        for name in ("cpu", "gpu", "all", "dopia")
    ]
    print_table(
        f"Table 5: correct classifications of 1,224 workloads ({platform.name})",
        ["scheme", "measured", "paper"],
        rows,
    )

    # Dopia dominates every fixed configuration.  (How *far* ahead it is
    # depends on the plateau structure of the landscape: on our simulated
    # Kaveri the full-CPU corner is exactly optimal more often than on the
    # paper's silicon, so the margin over CPU is smaller than the paper's
    # 611-vs-253 while the Dopia count itself lands right in their band.)
    assert counts["dopia"] > max(counts["cpu"], counts["gpu"], counts["all"])
    # Dopia lands in the paper's few-hundred band
    assert 200 <= counts["dopia"] <= 900
    # GPU-only / ALL almost never hit the exact optimum with 44 choices
    assert counts["gpu"] < 150 and counts["all"] < 150


def test_table5_dopia_accuracy_is_moderate(benchmark, synthetic_dataset, dt_cv_selection):
    """§9.3: exact-hit accuracy is only ~25-50% — the point of Fig 11 is
    that near-misses still give near-optimal performance."""
    correct = benchmark(
        lambda: (dt_cv_selection == synthetic_dataset.best_config_indices()).sum()
    )
    assert correct < synthetic_dataset.n_workloads  # no oracle by accident


def test_benchmark_dt_training(benchmark, synthetic_dataset):
    """Timed unit: one DT fit on a quarter of the training matrix."""
    ds = synthetic_dataset
    rows = ds.n_workloads // 4 * 44
    X, y = ds.feature_matrix()[:rows], ds.targets()[:rows]

    def fit():
        model = make_model("dt")
        model.fit(X, y)
        return model

    benchmark.pedantic(fit, rounds=1, iterations=1)
