"""Figure 1 — Gesummv throughput heat map over (CPU, GPU) thread counts.

Paper (AMD Kaveri, n = 16,384): the best configuration uses 4 CPU threads
and 192 GPU threads (37.5 % of the GPU); normalised to it, CPU-only
achieves 78 %, GPU-only 13 %, and CPU+GPU(ALL) 61 %.

Reproduced shape: the optimum lies at full-ish CPU plus an *intermediate*
GPU fraction; GPU-only is far below CPU-only; ALL is clearly below the
optimum.  Absolute percentages differ (our substrate is a model, not the
silicon), but the ordering and the interior optimum — the paper's central
motivation — must hold.
"""

import numpy as np
import pytest

from repro.core import config_space, measure_workload
from repro.sim import KAVERI, DopSetting, simulate_execution
from repro.workloads import make_gesummv

from conftest import print_table


@pytest.fixture(scope="module")
def heatmap():
    workload = make_gesummv(n=16384, wg=256)
    configs = config_space(KAVERI)
    times = measure_workload(workload, KAVERI, configs)
    return workload, configs, times


def test_fig01_heatmap_table(benchmark, heatmap):
    workload, configs, times = heatmap
    performance = benchmark(lambda: times.min() / times)
    cpu_levels = sorted({c.cpu_util for c in configs})
    gpu_levels = sorted({c.gpu_util for c in configs}, reverse=True)
    lookup = {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}

    rows = []
    for gpu in gpu_levels:
        row = [f"GPU {gpu * KAVERI.gpu.total_pes:4.0f}"]
        for cpu in cpu_levels:
            index = lookup.get((cpu, gpu))
            row.append("-" if index is None else f"{performance[index]:.2f}")
        rows.append(row)
    headers = ["threads"] + [f"CPU {round(u * KAVERI.cpu.threads)}" for u in cpu_levels]
    print_table("Figure 1: Gesummv normalized throughput (Kaveri)", headers, rows)

    best = configs[int(np.argmin(times))]
    print(f"best configuration: CPU {best.setting.cpu_threads} threads, "
          f"GPU {best.gpu_util:.1%} of PEs")
    cpu_only = performance[lookup[(1.0, 0.0)]]
    gpu_only = performance[lookup[(0.0, 1.0)]]
    both = performance[lookup[(1.0, 1.0)]]
    print(f"CPU-only {cpu_only:.0%} (paper 78%), GPU-only {gpu_only:.0%} "
          f"(paper 13%), ALL {both:.0%} (paper 61%)")

    # -- shape assertions ---------------------------------------------------
    # the optimum engages the GPU only partially
    assert 0.0 < best.gpu_util < 0.75
    # GPU-only is catastrophic on Kaveri, far below CPU-only
    assert gpu_only < 0.35
    assert cpu_only > 2 * gpu_only
    # turning everything on is NOT optimal (the paper's headline point)
    assert both < 0.8


def test_fig01_every_full_gpu_column_degrades(benchmark, heatmap):
    """For every CPU row, full GPU utilisation is slower than the row's best."""
    _, configs, times = heatmap
    lookup = benchmark(
        lambda: {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}
    )
    for cpu in (0.25, 0.5, 0.75, 1.0):
        row_times = [times[lookup[(cpu, g / 8)]] for g in range(9)]
        assert times[lookup[(cpu, 1.0)]] > min(row_times) * 1.5


def test_benchmark_single_configuration(benchmark, heatmap):
    """Timed unit: one simulated launch at the ALL configuration."""
    workload, _, _ = heatmap
    profile = workload.profile()
    benchmark(
        lambda: simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0), run_key=(workload.key,)
        )
    )
