"""Ablation — push-based vs pull-based GPU work distribution (§7 future work).

The paper uses a *push*-based GPU scheme (chunks of num_wgs/10) because
Intel integrated GPUs lack CPU–GPU global atomics; it explicitly leaves
"optimizations for systems that support global atomic operations (and can
thus use a pull-based approach on the GPU)" and "dynamic ... work chunks"
as future work.  Both extensions are implemented here and compared:

* ``dynamic``      — the paper's fixed 1/10 push chunks;
* ``guided``       — push chunks sized from the *remaining* work;
* ``dynamic-pull`` — the GPU pulls from the shared worklist (AMD-only in
  practice; Kaveri's GCN supports global atomics).

Expectation: pull ≤ guided ≤ fixed-push, with the gap largest for
memory-bound kernels where the GPU is slow and fixed chunks leave a long
imbalance tail.
"""

import pytest

from repro.sim import KAVERI, DopSetting, simulate_execution
from repro.workloads import make_conv2d, make_gesummv, make_spmv

from conftest import print_table

WORKLOADS = {
    "GESUMMV": lambda: make_gesummv(n=16384, wg=256),
    "SpMV": lambda: make_spmv(n=16384, wg=256, nnz_per_row=16384),
    "2DCONV": lambda: make_conv2d(n=4096, wg=(16, 16)),
}


@pytest.fixture(scope="module")
def scheduler_sweep():
    out = {}
    setting = DopSetting(4, 1.0)
    for name, factory in WORKLOADS.items():
        workload = factory()
        profile = workload.profile()
        push = simulate_execution(
            profile, KAVERI, setting, scheduler="dynamic",
            run_key=(workload.key, "sched"),
        ).time_s
        guided = simulate_execution(
            profile, KAVERI, setting, scheduler="dynamic",
            chunk_policy="guided", run_key=(workload.key, "sched"),
        ).time_s
        pull = simulate_execution(
            profile, KAVERI, setting, scheduler="dynamic-pull",
            run_key=(workload.key, "sched"),
        ).time_s
        out[name] = (push, guided, pull)
    return out


def test_ablation_scheduler_table(benchmark, scheduler_sweep):
    benchmark(lambda: scheduler_sweep["GESUMMV"])
    rows = [
        [name, f"{push * 1e3:.2f}", f"{guided * 1e3:.2f}", f"{pull * 1e3:.2f}",
         f"{push / pull:.2f}x"]
        for name, (push, guided, pull) in scheduler_sweep.items()
    ]
    print_table(
        "Ablation D5: workload-distribution schemes (Kaveri, ALL config, ms)",
        ["kernel", "push 1/10 (paper)", "guided chunks", "pull-based", "push/pull"],
        rows,
    )
    for name, (push, guided, pull) in scheduler_sweep.items():
        # pull-based removes the chunk-tail imbalance: never slower
        assert pull <= push * 1.05, name
        # guided chunks sit between the two
        assert guided <= push * 1.05, name


def test_ablation_pull_gains_most_on_memory_bound(benchmark, scheduler_sweep):
    push_g, _, pull_g = benchmark(lambda: scheduler_sweep["GESUMMV"])
    push_c, _, pull_c = scheduler_sweep["2DCONV"]
    assert push_g / pull_g > push_c / pull_c


def test_functional_pull_scheduler_correct(benchmark):
    """The pull-based functional scheduler covers every group exactly once."""
    import numpy as np

    from repro.core import run_dynamic_pull
    from repro.frontend import analyze_kernel, parse_kernel
    from repro.interp import NDRange
    from repro.transform import make_malleable

    source = (
        "__kernel void count(__global float* C, int n)"
        "{ C[get_global_id(0)] += 1.0f; }"
    )
    info = benchmark.pedantic(
        lambda: analyze_kernel(parse_kernel(source)), rounds=1, iterations=1
    )
    malleable = make_malleable(source, work_dim=1)
    n = 96
    counts = np.zeros(n)
    trace = run_dynamic_pull(
        info, malleable, {"C": counts, "n": n}, NDRange(n, 8),
        DopSetting(2, 0.5), dop_gpu_mod=2, dop_gpu_alloc=1,
    )
    assert np.all(counts == 1.0)
    assert trace.cpu_groups and trace.gpu_groups


def test_benchmark_pull_simulation(benchmark):
    workload = make_gesummv(n=16384, wg=256)
    profile = workload.profile()
    benchmark(
        lambda: simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0), scheduler="dynamic-pull",
            run_key=("b",),
        )
    )
