"""repro — a full reproduction of *Dopia: Online Parallelism Management for
Integrated CPU/GPU Architectures* (Cho et al., PPoPP 2022).

The package implements the paper's framework and every substrate it needs:

=====================  ====================================================
``repro.frontend``     OpenCL-C lexer/parser/AST/semantics (ECS stand-in)
``repro.analysis``     static feature extraction (Table 1) + kernel profiles
``repro.transform``    malleable GPU + CPU code generation (Figures 5-7)
``repro.interp``       functional kernel interpreter (correctness substrate)
``repro.sim``          integrated-architecture performance model (Kaveri,
                       Skylake; coalescing, L2 capacity misses, shared-DRAM
                       contention, Algorithm-1 co-execution)
``repro.ml``           from-scratch LIN / SVR / DT / RF + 64-fold CV + DT->C
``repro.workloads``    Table-2 synthetic generator + the 14 Table-4 kernels
``repro.cl``           miniature OpenCL host API (the interposition seam)
``repro.core``         Dopia itself: DoP selection, training, runtime
=====================  ====================================================

Quick start::

    from repro import cl
    from repro.core import DopiaRuntime
    from repro.sim import KAVERI

    runtime = DopiaRuntime.from_pretrained(KAVERI, model_name="dt")
    ctx = cl.create_context("kaveri")
    with cl.interposed(runtime):
        program = ctx.create_program_with_source(KERNEL_SRC).build()
        kernel = program.create_kernel("my_kernel")
        kernel.set_args(...)
        queue = cl.create_command_queue(ctx)
        event = queue.enqueue_nd_range_kernel(kernel, (16384,), (256,))
        print(event.simulated_time_s, event.details["prediction"].config)
"""

__version__ = "1.0.0"

from . import analysis, cl, core, frontend, interp, ml, sim, transform, workloads

__all__ = [
    "analysis", "cl", "core", "frontend", "interp", "ml", "sim", "transform",
    "workloads", "__version__",
]
