"""Deterministic measurement-noise model.

Real runtime measurements jitter; a simulator that returns the exact same
number every time makes "oracle vs model" comparisons degenerate (any
model output either matches perfectly or not at all).  Every simulated
execution time is therefore multiplied by a small lognormal factor whose
seed is derived from the run's identity, so results are *reproducible*
(same run → same noise) yet *distinct* across kernels and configurations.
"""

from __future__ import annotations

import hashlib
import math
import struct


#: Default multiplicative jitter (standard deviation of log time).
DEFAULT_SIGMA = 0.02


def _seed_from(parts: tuple) -> int:
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


def noise_factor(parts: tuple, sigma: float = DEFAULT_SIGMA) -> float:
    """A reproducible lognormal factor ``exp(sigma * z)`` for this run.

    ``parts`` identifies the run (kernel key, platform, configuration...);
    the same identity always yields the same factor.
    """
    if sigma <= 0.0:
        return 1.0
    seed = _seed_from(parts)
    # Box–Muller from two uniform doubles derived from the hash
    u1 = ((seed >> 11) & ((1 << 53) - 1)) / float(1 << 53)
    u2 = (seed & ((1 << 11) - 1)) / float(1 << 11)
    u1 = min(max(u1, 1e-12), 1.0 - 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return math.exp(sigma * z)
