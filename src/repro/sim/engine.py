"""Co-execution engine: simulated execution of a kernel launch.

Given a :class:`repro.analysis.profile.KernelProfile`, a platform, and a
degree-of-parallelism setting, the engine predicts the wall-clock time and
total DRAM traffic of the launch under one of the workload-distribution
schemes of §7/§9.1:

* ``dynamic`` — Algorithm 1: CPU threads pull single work-groups from an
  atomic worklist; the GPU is pushed chunks of ``num_wgs / chunk_divisor``
  (default 10) and synchronised between chunks, paying one dispatch
  overhead per chunk.
* ``dynamic-pull`` — the future-work variant for hardware with CPU–GPU
  global atomics: the GPU pulls work-groups from the shared worklist too,
  removing the chunk barrier (and its load-imbalance tail).
* ``static`` — an a-priori split: ``static_cpu_share`` of the work-groups
  go to the CPU, the rest are dispatched to the GPU in one piece; both
  devices run concurrently (contended) until one finishes, then the other
  continues alone at full bandwidth.
* CPU-only / GPU-only fall out of the settings (a zero on the other side).

The engine is analytic/event-driven rather than cycle-accurate: each
scheduling round advances time by the GPU's chunk service time while the
CPU drains work-groups at the contended rate — a few dozen arithmetic
operations per simulated launch, fast enough to generate the paper's
54,472-point training set in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.profile import KernelProfile
from ..obs import tracer
from .contention import contended_rates
from .devices import DeviceRate, cpu_rate, gpu_rate
from .noise import DEFAULT_SIGMA, noise_factor
from .platforms import Platform


@dataclass(frozen=True)
class DopSetting:
    """A degree-of-parallelism configuration: active CPU threads + GPU PE fraction."""

    cpu_threads: int
    gpu_fraction: float

    def __post_init__(self) -> None:
        if self.cpu_threads < 0:
            raise ValueError("cpu_threads must be non-negative")
        if not 0.0 <= self.gpu_fraction <= 1.0:
            raise ValueError("gpu_fraction must be in [0, 1]")
        if self.cpu_threads == 0 and self.gpu_fraction == 0.0:
            raise ValueError("at least one device must be active")

    @property
    def uses_cpu(self) -> bool:
        return self.cpu_threads > 0

    @property
    def uses_gpu(self) -> bool:
        return self.gpu_fraction > 0.0


@dataclass
class ExecutionResult:
    """Outcome of one simulated launch."""

    time_s: float
    cpu_items: float
    gpu_items: float
    mem_requests: float          #: total DRAM transactions (64 B each)
    gpu_l2_survival: float       #: stream-line survival in the GPU cache
    scheduler: str

    @property
    def throughput(self) -> float:
        """Work-items per second."""
        return (self.cpu_items + self.gpu_items) / max(self.time_s, 1e-12)


class SimulationError(Exception):
    """Raised for invalid simulation requests."""


def _solo_time_cpu(items: float, rate: DeviceRate, platform: Platform,
                   threads: int) -> float:
    spawn = platform.cpu.thread_spawn_overhead_s * threads
    if rate.items_per_second <= 0.0:
        raise SimulationError("CPU rate is zero for an active CPU setting")
    contended = contended_rates([rate], platform.dram_bandwidth, 1.0)[0]
    return spawn + items / contended


def _solo_time_gpu(items: float, rate: DeviceRate, platform: Platform,
                   n_dispatches: int = 1) -> float:
    if rate.items_per_second <= 0.0:
        raise SimulationError("GPU rate is zero for an active GPU setting")
    contended = contended_rates([rate], platform.dram_bandwidth, 1.0)[0]
    return n_dispatches * platform.gpu.dispatch_overhead_s + items / contended


def simulate_execution(
    profile: KernelProfile,
    platform: Platform,
    setting: DopSetting,
    scheduler: str = "dynamic",
    static_cpu_share: float | None = None,
    chunk_divisor: int = 10,
    chunk_policy: str = "fixed",
    sigma: float = DEFAULT_SIGMA,
    run_key: tuple = (),
) -> ExecutionResult:
    """Simulate one kernel launch and return its :class:`ExecutionResult`.

    ``run_key`` identifies the run for the deterministic noise model;
    callers pass (kernel key, ...) so repeated simulations reproduce.
    ``chunk_policy`` selects the GPU push-chunk sizing: ``"fixed"`` is the
    paper's ``num_wgs / chunk_divisor``; ``"guided"`` recomputes the chunk
    from the *remaining* work each round (guided self-scheduling — the
    paper's "more elaborate work-group assignments" future work).
    """
    items = float(profile.global_size)
    wg_items = float(max(profile.local_size, 1))
    num_wgs = max(1.0, items / wg_items)

    crate = cpu_rate(profile, platform, setting.cpu_threads)
    grate = gpu_rate(profile, platform, setting.gpu_fraction)

    if scheduler == "dynamic":
        result = _simulate_dynamic(
            profile, platform, setting, crate, grate, num_wgs, wg_items,
            chunk_divisor, chunk_policy,
        )
    elif scheduler == "dynamic-pull":
        result = _simulate_dynamic_pull(
            profile, platform, setting, crate, grate, num_wgs, wg_items,
        )
    elif scheduler == "static":
        if static_cpu_share is None:
            raise SimulationError("static scheduler requires static_cpu_share")
        result = _simulate_static(
            profile, platform, setting, crate, grate, num_wgs, wg_items,
            static_cpu_share,
        )
    else:
        raise SimulationError(f"unknown scheduler {scheduler!r}")

    factor = noise_factor(
        run_key + (platform.name, setting.cpu_threads, round(setting.gpu_fraction, 6),
                   scheduler, static_cpu_share),
        sigma,
    )
    result.time_s *= factor
    if tracer.enabled:
        # Simulated-time breakdown: where the modelled wall-clock went.
        tracer.instant(
            "sim.execute", "sim",
            scheduler=scheduler, platform=platform.name,
            cpu_threads=setting.cpu_threads, gpu_fraction=setting.gpu_fraction,
            time_s=result.time_s, noise_factor=factor,
            cpu_items=result.cpu_items, gpu_items=result.gpu_items,
            mem_requests=result.mem_requests,
            spawn_overhead_s=(platform.cpu.thread_spawn_overhead_s
                              * setting.cpu_threads if setting.uses_cpu else 0.0),
            dispatch_overhead_s=(platform.gpu.dispatch_overhead_s
                                 if setting.uses_gpu else 0.0),
            run_key="/".join(str(part) for part in run_key),
        )
        tracer.counter("sim.executions")
        tracer.observe("sim.time_s", result.time_s)
    return result


def _mem_requests(cpu_items: float, gpu_items: float,
                  crate: DeviceRate, grate: DeviceRate) -> float:
    line = 64.0
    return (cpu_items * crate.bytes_per_item + gpu_items * grate.bytes_per_item) / line


def _simulate_dynamic(
    profile: KernelProfile,
    platform: Platform,
    setting: DopSetting,
    crate: DeviceRate,
    grate: DeviceRate,
    num_wgs: float,
    wg_items: float,
    chunk_divisor: int,
    chunk_policy: str = "fixed",
) -> ExecutionResult:
    if chunk_policy not in ("fixed", "guided"):
        raise SimulationError(f"unknown chunk policy {chunk_policy!r}")
    bandwidth = platform.dram_bandwidth
    survival = grate.traffic.l2_survival if setting.uses_gpu else 1.0

    # single-device fast paths -------------------------------------------------
    if not setting.uses_gpu:
        time = _solo_time_cpu(num_wgs * wg_items, crate, platform, setting.cpu_threads)
        return ExecutionResult(
            time_s=time, cpu_items=num_wgs * wg_items, gpu_items=0.0,
            mem_requests=_mem_requests(num_wgs * wg_items, 0.0, crate, grate),
            gpu_l2_survival=survival, scheduler="dynamic",
        )
    if not setting.uses_cpu:
        n_chunks = max(1, chunk_divisor)
        time = _solo_time_gpu(num_wgs * wg_items, grate, platform, n_chunks)
        return ExecutionResult(
            time_s=time, cpu_items=0.0, gpu_items=num_wgs * wg_items,
            mem_requests=_mem_requests(0.0, num_wgs * wg_items, crate, grate),
            gpu_l2_survival=survival, scheduler="dynamic",
        )

    # co-execution: contended rates while both devices are drawing ------------
    fairness = platform.arbitration_fairness
    cpu_cont, gpu_cont = contended_rates([crate, grate], bandwidth, fairness)
    cpu_solo = contended_rates([crate], bandwidth, 1.0)[0]
    if gpu_cont <= 0.0 or cpu_solo <= 0.0:
        raise SimulationError("device rate collapsed to zero")

    chunk_wgs = max(1.0, num_wgs / max(1, chunk_divisor))
    dispatch = platform.gpu.dispatch_overhead_s
    spawn = platform.cpu.thread_spawn_overhead_s * setting.cpu_threads

    time = spawn
    taken = 0.0
    cpu_wgs = 0.0
    gpu_wgs = 0.0
    while taken < num_wgs:
        if chunk_policy == "guided":
            chunk_wgs = max(1.0, (num_wgs - taken) / max(1, chunk_divisor))
        gpu_take = min(chunk_wgs, num_wgs - taken)
        taken += gpu_take
        gpu_wgs += gpu_take
        gpu_busy = dispatch + gpu_take * wg_items / gpu_cont
        remaining = num_wgs - taken
        if remaining <= 0.0:
            time += gpu_busy
            break
        cpu_capacity = gpu_busy * cpu_cont / wg_items
        if cpu_capacity >= remaining:
            # the CPU drains everything left before the GPU chunk returns;
            # once the CPU is idle the GPU's remaining work speeds up to
            # its uncontended rate, shortening the chunk's tail
            cpu_wgs += remaining
            taken = num_wgs
            cpu_finish = remaining * wg_items / cpu_cont
            if cpu_finish >= gpu_busy:
                time += cpu_finish
            else:
                gpu_solo = contended_rates([grate], bandwidth, 1.0)[0]
                done = max(0.0, (cpu_finish - dispatch)) * gpu_cont
                leftover = max(gpu_take * wg_items - done, 0.0)
                time += max(cpu_finish, dispatch) + leftover / gpu_solo
            break
        cpu_wgs += cpu_capacity
        taken += cpu_capacity
        time += gpu_busy

    return ExecutionResult(
        time_s=time,
        cpu_items=cpu_wgs * wg_items,
        gpu_items=gpu_wgs * wg_items,
        mem_requests=_mem_requests(cpu_wgs * wg_items, gpu_wgs * wg_items, crate, grate),
        gpu_l2_survival=survival,
        scheduler="dynamic",
    )


def _simulate_dynamic_pull(
    profile: KernelProfile,
    platform: Platform,
    setting: DopSetting,
    crate: DeviceRate,
    grate: DeviceRate,
    num_wgs: float,
    wg_items: float,
) -> ExecutionResult:
    """Fully pull-based co-execution (the paper's future-work extension, §7).

    On platforms with CPU–GPU global atomics (AMD GCN), the GPU could pull
    work-groups from the shared worklist like the CPU threads do, removing
    the per-chunk dispatch barrier and its load-imbalance tail.  Both
    devices then drain the worklist continuously at their contended rates;
    the makespan is the common drain time plus one dispatch.
    """
    bandwidth = platform.dram_bandwidth
    survival = grate.traffic.l2_survival if setting.uses_gpu else 1.0
    if not setting.uses_gpu or not setting.uses_cpu:
        # degenerates to the single-device paths of the push scheme
        return _simulate_dynamic(
            profile, platform, setting, crate, grate, num_wgs, wg_items, 1,
            "fixed",
        )
    fairness = platform.arbitration_fairness
    cpu_cont, gpu_cont = contended_rates([crate, grate], bandwidth, fairness)
    total_rate = cpu_cont + gpu_cont
    if total_rate <= 0.0:
        raise SimulationError("device rate collapsed to zero")
    items = num_wgs * wg_items
    spawn = platform.cpu.thread_spawn_overhead_s * setting.cpu_threads
    time = max(spawn, platform.gpu.dispatch_overhead_s) + items / total_rate
    cpu_items = items * cpu_cont / total_rate
    gpu_items = items - cpu_items
    return ExecutionResult(
        time_s=time,
        cpu_items=cpu_items,
        gpu_items=gpu_items,
        mem_requests=_mem_requests(cpu_items, gpu_items, crate, grate),
        gpu_l2_survival=survival,
        scheduler="dynamic-pull",
    )


def _simulate_static(
    profile: KernelProfile,
    platform: Platform,
    setting: DopSetting,
    crate: DeviceRate,
    grate: DeviceRate,
    num_wgs: float,
    wg_items: float,
    cpu_share: float,
) -> ExecutionResult:
    if not 0.0 <= cpu_share <= 1.0:
        raise SimulationError("static_cpu_share must be in [0, 1]")
    bandwidth = platform.dram_bandwidth
    survival = grate.traffic.l2_survival if setting.uses_gpu else 1.0
    cpu_items = cpu_share * num_wgs * wg_items if setting.uses_cpu else 0.0
    gpu_items = num_wgs * wg_items - cpu_items
    if gpu_items > 0.0 and not setting.uses_gpu:
        raise SimulationError("static split sends work to an inactive GPU")
    if cpu_items > 0.0 and not setting.uses_cpu:
        raise SimulationError("static split sends work to an inactive CPU")

    spawn = platform.cpu.thread_spawn_overhead_s * setting.cpu_threads
    dispatch = platform.gpu.dispatch_overhead_s if gpu_items > 0.0 else 0.0

    if cpu_items <= 0.0:
        time = _solo_time_gpu(gpu_items, grate, platform)
    elif gpu_items <= 0.0:
        time = _solo_time_cpu(cpu_items, crate, platform, setting.cpu_threads)
    else:
        fairness = platform.arbitration_fairness
        cpu_cont, gpu_cont = contended_rates([crate, grate], bandwidth, fairness)
        t_cpu = spawn + cpu_items / cpu_cont
        t_gpu = dispatch + gpu_items / gpu_cont
        overlap = min(t_cpu, t_gpu)
        if t_cpu <= t_gpu:
            done = (overlap - dispatch) * gpu_cont if overlap > dispatch else 0.0
            leftover = max(gpu_items - done, 0.0)
            gpu_solo = contended_rates([grate], bandwidth, 1.0)[0]
            time = overlap + leftover / gpu_solo
        else:
            done = (overlap - spawn) * cpu_cont if overlap > spawn else 0.0
            leftover = max(cpu_items - done, 0.0)
            cpu_solo = contended_rates([crate], bandwidth, 1.0)[0]
            time = overlap + leftover / cpu_solo

    return ExecutionResult(
        time_s=time,
        cpu_items=cpu_items,
        gpu_items=gpu_items,
        mem_requests=_mem_requests(cpu_items, gpu_items, crate, grate),
        gpu_l2_survival=survival,
        scheduler="static",
    )
