"""Shared-memory bandwidth arbitration between the CPU and GPU devices.

Integrated processors share one off-chip memory system; when the combined
demand exceeds the sustainable bandwidth, both devices stall.  The paper's
central observation (Figure 1) is that over-provisioning one device's
parallelism starves the other through exactly this path.

The arbiter blends two regimes:

* *max–min fair* sharing — each device receives at most its demand, and
  spare capacity is redistributed (an idealised QoS-aware controller);
* *pressure-proportional* sharing — at saturation, service is granted in
  proportion to the request rate each agent offers.  This is how real
  FR-FCFS-style controllers behave, and it is the mechanism behind the
  paper's Figure 1: a fully-unleashed GPU floods the controller with
  requests and "the outnumbered CPU cores experience a significant
  performance degradation caused by congestion in the memory system".

``fairness`` ∈ [0, 1] interpolates between them (0 = purely proportional,
1 = purely fair).  Each platform carries its own value: Kaveri's northbridge
offers little CPU protection, while Skylake's shared LLC and newer
controller shield the CPU somewhat better.
"""

from __future__ import annotations

from typing import Sequence


#: A device's *pressure* on the memory controller saturates once its miss
#: queues are full: however fast its compute side could consume data, it can
#: keep at most a bounded multiple of the DRAM bandwidth in flight.  This
#: cap keeps a thrashing GPU from (unphysically) monopolising the controller.
PRESSURE_CAP = 1.2


def allocate_bandwidth(
    demands: Sequence[float], capacity: float, fairness: float = 1.0
) -> list[float]:
    """Allocate ``capacity`` among ``demands``; see module docstring.

    The result never exceeds a device's demand and sums to at most
    ``min(capacity, sum(demands))``.
    """
    fair = _maxmin_fair(demands, capacity)
    if fairness >= 1.0:
        return fair
    pressure = [min(d, PRESSURE_CAP * capacity) for d in demands]
    proportional = _pressure_proportional(pressure, capacity)
    # proportional shares are computed from the capped pressure but never
    # grant more than the true demand
    proportional = [min(p, d) for p, d in zip(proportional, demands)]
    return [
        fairness * f + (1.0 - fairness) * p for f, p in zip(fair, proportional)
    ]


def _pressure_proportional(
    demands: Sequence[float], capacity: float
) -> list[float]:
    total = sum(demands)
    if total <= capacity or total <= 0.0:
        return [float(d) for d in demands]
    return [d / total * capacity for d in demands]


def _maxmin_fair(demands: Sequence[float], capacity: float) -> list[float]:
    """Max–min fair allocation of ``capacity`` among ``demands``.

    Devices demanding less than an equal share keep their demand; the
    remainder is split among the still-hungry devices, iteratively.
    """
    n = len(demands)
    if n == 0:
        return []
    allocation = [0.0] * n
    remaining = float(capacity)
    hungry = [i for i in range(n) if demands[i] > 0.0]
    while hungry and remaining > 1e-12:
        share = remaining / len(hungry)
        satisfied = [i for i in hungry if demands[i] - allocation[i] <= share]
        if not satisfied:
            for i in hungry:
                allocation[i] += share
            remaining = 0.0
            break
        for i in satisfied:
            grant = demands[i] - allocation[i]
            allocation[i] = demands[i]
            remaining -= grant
            hungry.remove(i)
    return allocation


def contended_rates(rates, capacity: float, fairness: float = 1.0) -> list[float]:
    """Contended item rates for devices sharing ``capacity`` bytes/second.

    ``rates`` is a sequence of :class:`repro.sim.devices.DeviceRate`.
    Each device's bandwidth demand is its compute-bound rate times its
    per-item traffic; the achieved item rate is the roofline minimum of
    compute and allocated bandwidth.
    """
    demands = [rate.bandwidth_demand for rate in rates]
    allocation = allocate_bandwidth(demands, capacity, fairness)
    return [
        rate.items_rate_given_bandwidth(bw) for rate, bw in zip(rates, allocation)
    ]


def config_slowdown(
    cpu_util: float, gpu_util: float,
    cpu_load: float, gpu_load: float,
    fairness: float = 1.0,
) -> float:
    """Modelled slowdown of one launch sharing device capacity with a
    background load.

    Per device, the launch offers its configuration's normalised
    utilisation as demand against capacity 1.0, alongside the in-flight
    background demand; :func:`allocate_bandwidth` (with the platform's
    arbitration fairness) grants each side a share, and the slowdown is
    demand over grant.  With free capacity the grant equals the demand
    and the slowdown is exactly 1.0 — a lone launch is never charged.
    This is the multiplier the serving layer applies to simulated
    execution time, and the ground truth the online retraining loop's
    hindsight probes replay.
    """
    slowdown = 1.0
    for mine, background in ((cpu_util, cpu_load), (gpu_util, gpu_load)):
        if mine <= 0.0 or background <= 0.0:
            continue
        granted = allocate_bandwidth([mine, background], 1.0,
                                     fairness=fairness)[0]
        if granted > 1e-12:
            slowdown = max(slowdown, mine / granted)
    return slowdown
