"""Per-device execution-rate models (compute side of the roofline).

Each device is summarised by how many work-items per second it can retire
when memory is infinitely fast (the compute rate) and how many DRAM bytes
each item drags in (from :mod:`repro.sim.memory`).  The co-execution
engine combines these with the shared-bandwidth arbitration to obtain
contended rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.profile import KernelProfile
from .memory import TrafficEstimate, cpu_traffic, gpu_traffic
from .platforms import Platform

#: Extra issue cost of special-function operations (sqrt, exp, ...) in
#: units of regular float operations.
_SPECIAL_COST_GPU = 4.0
_SPECIAL_COST_CPU = 12.0

#: Throughput factor of one SMT sibling thread relative to a full core.
_SMT_YIELD = 0.3


@dataclass(frozen=True)
class DeviceRate:
    """Execution capability of one device for one kernel launch."""

    items_per_second: float      #: compute-bound retirement rate
    bytes_per_item: float        #: DRAM traffic per work-item
    traffic: TrafficEstimate

    @property
    def bandwidth_demand(self) -> float:
        """Bytes/second the device would pull if never memory-stalled."""
        return self.items_per_second * self.bytes_per_item

    def items_rate_given_bandwidth(self, bandwidth: float) -> float:
        """Achievable item rate when allotted ``bandwidth`` bytes/second."""
        if self.items_per_second <= 0.0:
            return 0.0
        if self.bytes_per_item <= 0.0:
            return self.items_per_second
        return min(self.items_per_second, bandwidth / self.bytes_per_item)


def gpu_rate(
    profile: KernelProfile, platform: Platform, gpu_fraction: float
) -> DeviceRate:
    """GPU device rate at PE utilisation ``gpu_fraction`` ∈ [0, 1].

    Compute capacity scales linearly with the number of active PEs (that
    is precisely what the malleable-kernel throttle controls); control
    divergence and irregular loop bounds serialise SIMD batches and
    discount the rate — the reason irregular kernels are CPU-affine
    (§1, [24, 36]).
    """
    if gpu_fraction <= 0.0:
        return DeviceRate(0.0, 0.0, TrafficEstimate(0.0, 0.0, 1.0))
    gpu = platform.gpu
    cycles = (
        profile.flops_float_per_item / gpu.flops_per_cycle_per_pe
        + profile.special_per_item * _SPECIAL_COST_GPU / gpu.flops_per_cycle_per_pe
        + profile.flops_int_per_item / gpu.intops_per_cycle_per_pe
        + profile.mem_ops_per_item  # one issue slot per access
    )
    cycles = max(cycles, 1.0)
    divergence = 1.0 + 0.5 * profile.divergent_branches
    if profile.irregular:
        divergence += 1.0
    active_pes = gpu.total_pes * gpu_fraction
    rate = active_pes * gpu.freq_ghz * 1e9 / (cycles * divergence)
    traffic = gpu_traffic(profile, platform, gpu_fraction)
    return DeviceRate(rate, traffic.bytes_per_item, traffic)


def cpu_effective_cores(platform: Platform, active_threads: int) -> float:
    """Core-equivalents of ``active_threads`` (SMT siblings yield less)."""
    cpu = platform.cpu
    full = min(active_threads, cpu.cores)
    smt = max(0, active_threads - cpu.cores)
    return full + _SMT_YIELD * smt


def cpu_rate(
    profile: KernelProfile, platform: Platform, active_threads: int
) -> DeviceRate:
    """CPU device rate with ``active_threads`` worker threads.

    Branches cost the CPU almost nothing (out-of-order cores with branch
    prediction), and SIMD width is modelled through ``flops_per_cycle``.
    The per-core sustainable-bandwidth cap bounds the compute rate so a
    single core cannot claim the whole memory system.
    """
    if active_threads <= 0:
        return DeviceRate(0.0, 0.0, TrafficEstimate(0.0, 0.0, 1.0))
    cpu = platform.cpu
    cycles = (
        profile.flops_float_per_item / cpu.flops_per_cycle
        + profile.special_per_item * _SPECIAL_COST_CPU / cpu.flops_per_cycle
        + profile.flops_int_per_item / cpu.intops_per_cycle
        + profile.mem_ops_per_item / cpu.mem_ops_per_cycle
    )
    cycles = max(cycles, 1.0)
    cores = cpu_effective_cores(platform, active_threads)
    rate = cores * cpu.freq_ghz * 1e9 / cycles
    traffic = cpu_traffic(profile, platform)
    if traffic.bytes_per_item > 0.0:
        bw_cap = cores * cpu.max_bw_per_core_gbps * 1e9
        rate = min(rate, bw_cap / traffic.bytes_per_item)
    return DeviceRate(rate, traffic.bytes_per_item, traffic)
