"""DRAM-traffic model: what one work-item costs in shared-memory bytes.

This module turns an :class:`repro.analysis.profile.KernelProfile` into
per-work-item DRAM byte counts for the CPU and the GPU device, including
the two effects the paper identifies as decisive on integrated parts:

**GPU coalescing** (§5.1).  Within a SIMD batch (wavefront/EU-thread),
adjacent lanes execute adjacent work-items.  The *warp stride* of an
access — its address delta between adjacent work-items — determines how
many DRAM transactions the batch issues:

* warp stride 0: one address broadcast to the whole batch;
* small warp stride (≤ a cache line): lanes coalesce into few lines;
* large warp stride (each work-item owns a row, e.g. ``A[i*n+j]``): every
  lane opens a *private line stream*, and the line fetched for iteration
  ``j`` only pays off if it survives in L2 until iterations ``j+1 … j+15``.

**L2 capacity misses** (§3.2, Figure 3b).  The private line streams of all
concurrently resident work-items compete for the GPU L2.  Raising the
degree of parallelism raises the number of concurrent streams linearly;
once their combined live set exceeds the L2, the survival probability
drops and per-access traffic degrades toward one full line per access —
the paper's observed super-linear growth in memory requests.

The CPU runs work-items of a work-group sequentially on one core, so its
streams are few, prefetch-friendly, and backed by a large LLC; random and
shared accesses are filtered by LLC capacity instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.profile import KernelProfile, OpProfile
from ..analysis.accessclass import AccessClass
from .platforms import Platform


def _clamp01(value: float) -> float:
    return 0.0 if value <= 0.0 else 1.0 if value >= 1.0 else value


@dataclass(frozen=True)
class TrafficEstimate:
    """Per-work-item DRAM traffic of a kernel on one device."""

    bytes_per_item: float
    transactions_per_item: float
    l2_survival: float  #: stream-line survival probability (GPU diagnostics)


def _shared_region_bytes(op: OpProfile) -> float:
    """Distinct cache-resident bytes of a shared (item-independent) region."""
    ts_bytes = op.temporal_stride_elems * op.elem_bytes
    if ts_bytes == 0.0:
        return float(op.elem_bytes)  # one hot element
    # lines touched once per traversal, at line granularity for big strides
    return op.executions_per_item * min(max(op.elem_bytes, ts_bytes), 64.0)


def _random_region_bytes(op: OpProfile, profile: KernelProfile) -> float:
    """Footprint estimate of a randomly indexed region.

    Indirect accesses (e.g. ``x[colidx[k]]`` in SpMV) touch a region whose
    size static analysis cannot see; the paper's workloads index vectors
    sized like the problem, so the global work size is the natural proxy —
    across the whole launch the accesses spray over the full region even
    when each work-item only issues a few.
    """
    return float(profile.global_size) * op.elem_bytes


def gpu_traffic(
    profile: KernelProfile,
    platform: Platform,
    gpu_fraction: float,
) -> TrafficEstimate:
    """DRAM bytes per work-item on the GPU at utilisation ``gpu_fraction``.

    ``gpu_fraction`` is the active-PE fraction in (0, 1] selected by the
    malleable-kernel throttle.
    """
    gpu = platform.gpu
    line = gpu.cacheline_bytes
    cache = platform.gpu_effective_cache_bytes()
    # memory-concurrent work-items chip-wide: the L2 is shared by all CUs,
    # so every CU's active streams compete for it
    concurrent_items = max(
        1.0, gpu.max_resident_items_per_cu * gpu.num_cus * gpu_fraction
    )
    concurrent_items = min(concurrent_items, float(profile.global_size))

    # ---- working set: who competes for the L2 ----------------------------
    stream_ops = 0
    region_bytes = 0.0
    for op in profile.op_profiles:
        if op.access is AccessClass.RANDOM:
            region_bytes += _random_region_bytes(op, profile)
        elif op.shared:
            region_bytes += min(_shared_region_bytes(op), cache * 4.0)
        else:
            warp_bytes = op.warp_stride_elems * op.elem_bytes
            if warp_bytes > line and op.temporal_stride_elems > 0:
                stream_ops += 1
    # each private stream holds a handful of lines live (demand + prefetch)
    lines_live = 4.0
    working_set = stream_ops * concurrent_items * lines_live * line + region_bytes
    survival = _clamp01(cache / working_set) if working_set > 0 else 1.0

    # ---- per-op traffic ----------------------------------------------------
    total_bytes = 0.0
    for op in profile.op_profiles:
        n = op.executions_per_item
        elem = op.elem_bytes
        if op.access is AccessClass.CONSTANT:
            continue  # one line, shared by everything: negligible
        if op.access is AccessClass.RANDOM:
            total_bytes += n * line * (1.0 - survival) + n * elem * survival
            continue
        warp_bytes = op.warp_stride_elems * elem
        temporal_bytes = op.temporal_stride_elems * elem
        if op.shared:
            # broadcast: ideal cost is the region once, amortised over all
            # concurrent consumers; thrashed cost is a line per SIMD batch
            ideal = n * elem / concurrent_items
            worst = n * line / gpu.simd_width
            total_bytes += ideal + (1.0 - survival) * max(worst - ideal, 0.0)
        elif warp_bytes <= line:
            # lanes coalesce: the batch's lines are fully (or partly) used
            # the moment they arrive; no L2 persistence required
            total_bytes += n * min(max(elem, warp_bytes), line)
        elif temporal_bytes == 0.0:
            # scattered one-shot accesses (large stride across lanes, no
            # loop reuse): every access opens its own line
            total_bytes += n * line
        else:
            # private per-lane stream: line reuse across loop iterations
            ideal = n * min(max(elem, temporal_bytes), line)
            worst = n * line
            total_bytes += ideal + (1.0 - survival) * (worst - ideal)

    return TrafficEstimate(
        bytes_per_item=total_bytes,
        transactions_per_item=total_bytes / line,
        l2_survival=survival,
    )


def cpu_traffic(profile: KernelProfile, platform: Platform) -> TrafficEstimate:
    """DRAM bytes per work-item on the CPU.

    The CPU executes a work-group's items sequentially per core: per-item
    streams are contiguous in time, the hardware prefetcher hides strides
    below a line, and the big LLC absorbs shared and random regions that
    fit (which is why SpMV and other irregular kernels are CPU-affine).
    """
    cpu = platform.cpu
    line = 64.0
    cache = float(cpu.llc_bytes)

    region_bytes = 0.0
    for op in profile.op_profiles:
        if op.access is AccessClass.RANDOM:
            region_bytes += _random_region_bytes(op, profile)
        elif op.shared:
            region_bytes += _shared_region_bytes(op)
    survival = _clamp01(cache / region_bytes) if region_bytes > 0 else 1.0

    total_bytes = 0.0
    for op in profile.op_profiles:
        n = op.executions_per_item
        elem = op.elem_bytes
        if op.access is AccessClass.CONSTANT:
            continue
        if op.access is AccessClass.RANDOM:
            total_bytes += n * line * (1.0 - survival) + n * elem * 0.1 * survival
            continue
        if op.shared:
            # shared regions stay LLC-resident when they fit
            total_bytes += n * elem * (1.0 - survival)
            continue
        stride = op.temporal_stride_elems
        if stride == 0.0:
            stride = op.warp_stride_elems  # consecutive items run back-to-back
        if not math.isfinite(stride):
            stride = line / elem
        total_bytes += n * min(max(elem, stride * elem), line)

    return TrafficEstimate(
        bytes_per_item=total_bytes,
        transactions_per_item=total_bytes / line,
        l2_survival=survival,
    )
