"""Integrated-architecture performance simulator (the timing substrate)."""

from .contention import allocate_bandwidth, config_slowdown, contended_rates
from .devices import DeviceRate, cpu_effective_cores, cpu_rate, gpu_rate
from .engine import DopSetting, ExecutionResult, SimulationError, simulate_execution
from .memory import TrafficEstimate, cpu_traffic, gpu_traffic
from .noise import DEFAULT_SIGMA, noise_factor
from .platforms import KAVERI, PLATFORMS, SKYLAKE, CpuSpec, GpuSpec, Platform, get_platform

__all__ = [
    "allocate_bandwidth", "config_slowdown", "contended_rates", "DeviceRate",
    "cpu_effective_cores", "cpu_rate", "gpu_rate", "DopSetting",
    "ExecutionResult", "SimulationError", "simulate_execution",
    "TrafficEstimate", "cpu_traffic", "gpu_traffic", "DEFAULT_SIGMA",
    "noise_factor", "KAVERI", "PLATFORMS", "SKYLAKE", "CpuSpec", "GpuSpec",
    "Platform", "get_platform",
]
