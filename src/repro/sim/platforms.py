"""Machine descriptions of the two evaluated integrated processors.

Numbers follow §8.1 of the paper plus publicly documented micro-
architectural parameters of the two parts:

* **AMD A10-7850K "Kaveri"** — Steamroller quad-core CPU at 3.7 GHz and a
  GCN GPU with 8 CUs × 64 PEs (512 PEs) at 720 MHz; dual-channel DDR3-2133
  (≈34 GB/s peak, ≈21 GB/s sustained); the GPU has a 512 KiB shared L2 and
  *no* cache shared with the CPU (separate Onion/Garlic paths).
* **Intel i7-6700 "Skylake"** — quad-core/8-thread CPU at 3.4 GHz and a
  Gen9 GT2 GPU described by the paper as 24 CUs × 32 PEs (768 PEs) at
  350/1150 MHz; dual-channel DDR4-2133 (≈34 GB/s peak, ≈27 GB/s sustained
  — Skylake's memory subsystem sustains a larger fraction of peak), and a
  shared 8 MiB LLC that also backs the GPU — the paper's explanation for
  why the ALL configuration behaves much better on Intel (§9.3).

Absolute figures matter less than ratios: the reproduction targets the
paper's *shapes* (who wins where, where the DoP sweet spots fall).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """CPU-device parameters of an integrated processor."""

    cores: int                      #: physical cores (= schedulable CUs)
    threads: int                    #: hardware threads usable by the runtime
    freq_ghz: float
    flops_per_cycle: float          #: sustained f32 FLOPs/cycle/core (SIMD)
    intops_per_cycle: float         #: sustained integer ops/cycle/core
    mem_ops_per_cycle: float        #: load/store issue rate per core
    llc_bytes: int                  #: last-level cache reachable by the CPU
    max_bw_per_core_gbps: float     #: per-core sustainable DRAM bandwidth
    thread_spawn_overhead_s: float  #: cost of waking one worker thread


@dataclass(frozen=True)
class GpuSpec:
    """GPU-device parameters of an integrated processor."""

    num_cus: int
    pes_per_cu: int
    freq_ghz: float
    simd_width: int                 #: lanes executing in lockstep (warp/wave)
    l2_bytes: int                   #: GPU-side shared cache
    cacheline_bytes: int
    max_resident_items_per_cu: int  #: memory-active work-items per CU
    dispatch_overhead_s: float      #: host cost of one kernel enqueue
    flops_per_cycle_per_pe: float
    intops_per_cycle_per_pe: float
    shares_llc: bool                #: GPU misses also hit the CPU LLC

    @property
    def total_pes(self) -> int:
        return self.num_cus * self.pes_per_cu


@dataclass(frozen=True)
class Platform:
    """One integrated CPU/GPU processor."""

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    dram_bandwidth_gbps: float      #: sustained shared-memory bandwidth
    dram_latency_s: float
    #: memory-controller arbitration between CPU and GPU at saturation:
    #: 0 = purely request-proportional (a flooding GPU starves the CPU),
    #: 1 = perfectly fair.  See repro.sim.contention.
    arbitration_fairness: float = 0.3

    @property
    def dram_bandwidth(self) -> float:
        """Sustained bandwidth in bytes/second."""
        return self.dram_bandwidth_gbps * 1e9

    def gpu_effective_cache_bytes(self) -> float:
        """Cache capacity backing GPU memory traffic.

        On architectures with a shared LLC (Intel) the GPU effectively
        enjoys a slice of the big CPU cache behind its own L2, which is
        the paper's explanation for Intel's milder capacity-miss cliff.
        """
        extra = 0.25 * self.cpu.llc_bytes if self.gpu.shares_llc else 0.0
        return self.gpu.l2_bytes + extra


KAVERI = Platform(
    name="kaveri",
    cpu=CpuSpec(
        cores=4,
        threads=4,
        freq_ghz=3.7,
        flops_per_cycle=8.0,        # AVX/FMA3 f32 on Steamroller, sustained
        intops_per_cycle=4.0,
        mem_ops_per_cycle=2.0,
        llc_bytes=4 * 1024 * 1024,  # 2 x 2 MiB module-shared L2
        max_bw_per_core_gbps=8.0,
        thread_spawn_overhead_s=8e-6,
    ),
    gpu=GpuSpec(
        num_cus=8,
        pes_per_cu=64,
        freq_ghz=0.72,
        simd_width=64,              # GCN wavefront
        l2_bytes=512 * 1024,
        cacheline_bytes=64,
        max_resident_items_per_cu=256,
        dispatch_overhead_s=40e-6,
        flops_per_cycle_per_pe=2.0,  # FMA
        intops_per_cycle_per_pe=1.0,
        shares_llc=False,
    ),
    dram_bandwidth_gbps=21.0,
    dram_latency_s=90e-9,
    arbitration_fairness=0.35,
)

SKYLAKE = Platform(
    name="skylake",
    cpu=CpuSpec(
        cores=4,
        threads=8,
        freq_ghz=3.4,
        flops_per_cycle=16.0,       # AVX2/FMA f32
        intops_per_cycle=6.0,
        mem_ops_per_cycle=3.0,
        llc_bytes=8 * 1024 * 1024,
        max_bw_per_core_gbps=12.0,
        thread_spawn_overhead_s=6e-6,
    ),
    gpu=GpuSpec(
        num_cus=24,
        pes_per_cu=32,
        freq_ghz=1.15,
        simd_width=16,              # Gen9 SIMD-16 dispatch
        l2_bytes=768 * 1024,        # Gen9 GTI/L3 slice serving the EUs
        cacheline_bytes=64,
        max_resident_items_per_cu=256,
        dispatch_overhead_s=30e-6,
        flops_per_cycle_per_pe=2.0,
        intops_per_cycle_per_pe=1.0,
        shares_llc=True,
    ),
    dram_bandwidth_gbps=27.0,
    dram_latency_s=80e-9,
    arbitration_fairness=0.5,
)

#: The two evaluation platforms of the paper, by name.
PLATFORMS = {platform.name: platform for platform in (KAVERI, SKYLAKE)}


def get_platform(name: str) -> Platform:
    """Look up a platform by name (``"kaveri"`` or ``"skylake"``)."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
