"""Regenerate the paper's figures as SVG files.

``generate_all(out_dir)`` produces:

* ``figure01_gesummv_heatmap.svg`` — the Figure-1 Gesummv DoP heat map;
* ``figure03_<kernel>.svg`` — Figure-3 execution-time / memory-request
  curves for Gesummv and SpMV;
* ``figure12_<platform>.svg`` — the Figure-12 constant-allocation heat
  maps for both platforms;
* ``figure13_<platform>.svg`` — Figure-13-style bar charts of the fixed
  schemes vs Dopia (DT) on the 14 real kernels.

Everything is driven by the same simulator/training pipeline as the
benchmark harness (training datasets are cached, so after the first run
this is quick).  Also exposed as ``python -m repro figures``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core import (
    DopPredictor,
    baseline_indices,
    collect_dataset,
    config_space,
    default_jobs,
    measure_workload,
)
from ..ml import make_model
from ..sim import KAVERI, PLATFORMS, DopSetting, simulate_execution
from ..workloads import make_gesummv, make_spmv, real_workloads, training_workloads
from .svg import barchart_svg, heatmap_svg, linechart_svg


def figure01(out_dir: Path) -> Path:
    """Figure 1: Gesummv normalised throughput over the DoP grid (Kaveri)."""
    workload = make_gesummv(n=16384, wg=256)
    configs = config_space(KAVERI)
    times = measure_workload(workload, KAVERI, configs)
    performance = times.min() / times
    cpu_levels = sorted({c.cpu_util for c in configs})
    gpu_levels = sorted({c.gpu_util for c in configs}, reverse=True)
    lookup = {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}
    grid = [
        [
            performance[lookup[(cpu, gpu)]] if (cpu, gpu) in lookup else float("nan")
            for cpu in cpu_levels
        ]
        for gpu in gpu_levels
    ]
    svg = heatmap_svg(
        grid,
        row_labels=[f"GPU {int(g * KAVERI.gpu.total_pes)}" for g in gpu_levels],
        col_labels=[f"CPU {round(c * KAVERI.cpu.threads)}" for c in cpu_levels],
        title="Figure 1: Gesummv normalized throughput (Kaveri)",
    )
    path = out_dir / "figure01_gesummv_heatmap.svg"
    path.write_text(svg)
    return path


def figure03(out_dir: Path) -> list[Path]:
    """Figure 3: time and memory requests vs GPU utilisation (Kaveri)."""
    paths = []
    for name, workload in (
        ("gesummv", make_gesummv(n=16384, wg=256)),
        ("spmv", make_spmv(n=16384, wg=256, nnz_per_row=16384)),
    ):
        profile = workload.profile()
        utils = [g / 8 for g in range(1, 9)]
        results = [
            simulate_execution(profile, KAVERI, DopSetting(4, u),
                               run_key=(workload.key, "fig3"))
            for u in utils
        ]
        svg = linechart_svg(
            [u * 100 for u in utils],
            {
                "time (ms)": [r.time_s * 1e3 for r in results],
                "mem requests (x1e6)": [r.mem_requests / 1e6 for r in results],
            },
            title=f"Figure 3: {name} vs GPU utilization (Kaveri, 4 CPU threads)",
            x_label="GPU utilization (%)",
        )
        path = out_dir / f"figure03_{name}.svg"
        path.write_text(svg)
        paths.append(path)
    return paths


def figure12(out_dir: Path) -> list[Path]:
    """Figure 12: mean normalised performance of constant allocations."""
    paths = []
    for platform in PLATFORMS.values():
        dataset = collect_dataset(training_workloads(), platform, cache=True, jobs=default_jobs())
        norm = dataset.normalized_performance().mean(axis=0)
        configs = config_space(platform)
        cpu_levels = sorted({c.cpu_util for c in configs})
        gpu_levels = sorted({c.gpu_util for c in configs}, reverse=True)
        lookup = {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}
        grid = [
            [
                norm[lookup[(cpu, gpu)]] if (cpu, gpu) in lookup else float("nan")
                for cpu in cpu_levels
            ]
            for gpu in gpu_levels
        ]
        svg = heatmap_svg(
            grid,
            row_labels=[f"GPU {g:.3f}" for g in gpu_levels],
            col_labels=[f"CPU {c:.2f}" for c in cpu_levels],
            title=f"Figure 12: constant allocations ({platform.name})",
        )
        path = out_dir / f"figure12_{platform.name}.svg"
        path.write_text(svg)
        paths.append(path)
    return paths


def figure13(out_dir: Path) -> list[Path]:
    """Figure-13-style bars: CPU/GPU/ALL/Dopia.DT on the 14 real kernels.

    Uses whole-synthetic-set training (the cheap variant of the benchmark's
    leave-one-out protocol; the full protocol lives in the bench).
    """
    paths = []
    for platform in PLATFORMS.values():
        synth = collect_dataset(training_workloads(), platform, cache=True, jobs=default_jobs())
        real = collect_dataset(real_workloads(), platform, cache=True, jobs=default_jobs())
        model = make_model("dt")
        model.fit(synth.feature_matrix(), synth.targets())
        predictor = DopPredictor(model, platform)
        del predictor  # selection happens directly on the measured matrix

        best = real.times.min(axis=1)
        preds = model.predict(real.feature_matrix()).reshape(real.n_workloads, 44)
        selected = preds.argmax(axis=1)
        dopia = best / real.times[np.arange(real.n_workloads), selected]

        series: dict[str, list[float]] = {}
        for name, index in baseline_indices(platform).items():
            series[name.upper()] = list(best / real.times[:, index])
        series["Dopia.DT"] = list(dopia)
        groups = [key.split("/")[0] for key in real.workload_keys]
        svg = barchart_svg(
            groups, series,
            title=f"Figure 13: real-world kernels ({platform.name})",
            y_label="normalized perf", y_max=1.0,
        )
        path = out_dir / f"figure13_{platform.name}.svg"
        path.write_text(svg)
        paths.append(path)
    return paths


def generate_all(out_dir: str | Path = "figures") -> list[Path]:
    """Write every figure into ``out_dir`` and return the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = [figure01(out)]
    paths += figure03(out)
    paths += figure12(out)
    paths += figure13(out)
    return paths
