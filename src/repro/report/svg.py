"""Dependency-free SVG rendering of the paper's figure types.

The benchmark harness prints tables; this module draws them — heat maps
(Figures 1 and 12), line charts (Figure 3), and grouped bar charts
(Figure 13) — as standalone SVG files, so the reproduction can literally
regenerate the paper's figures without matplotlib (which is unavailable
in this environment).

The renderer is deliberately small: a handful of shape helpers writing
well-formed SVG 1.1, plus a perceptually-reasonable two-ramp colour map.
"""

from __future__ import annotations

import math
from typing import Sequence
from xml.sax.saxutils import escape

FONT = "ui-monospace, 'DejaVu Sans Mono', monospace"


def _color(value: float) -> str:
    """Map [0, 1] to a blue→yellow ramp (dark = slow, bright = fast)."""
    v = min(max(value, 0.0), 1.0)
    # two linear segments through (0.5): dark blue -> teal -> yellow
    if v < 0.5:
        t = v / 0.5
        r, g, b = int(30 + 20 * t), int(40 + 120 * t), int(90 + 60 * t)
    else:
        t = (v - 0.5) / 0.5
        r, g, b = int(50 + 200 * t), int(160 + 80 * t), int(150 - 110 * t)
    return f"rgb({r},{g},{b})"


class SvgCanvas:
    """Accumulates SVG elements and serialises them."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.elements: list[str] = []

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             stroke: str = "none", title: str | None = None) -> None:
        body = (
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}"'
        )
        if title:
            self.elements.append(f"{body}><title>{escape(title)}</title></rect>")
        else:
            self.elements.append(body + "/>")

    def text(self, x: float, y: float, content: str, size: int = 12,
             anchor: str = "start", fill: str = "#222") -> None:
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="{FONT}" text-anchor="{anchor}" fill="{fill}">'
            f"{escape(content)}</text>"
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#888", width: float = 1.0) -> None:
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]],
                 stroke: str = "#1f5fa8", width: float = 2.0) -> None:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def to_string(self) -> str:
        header = (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">'
        )
        background = f'<rect width="{self.width}" height="{self.height}" fill="white"/>'
        return "\n".join([header, background, *self.elements, "</svg>"])


def heatmap_svg(
    values: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str,
    cell: int = 56,
) -> str:
    """A Figure-1/12-style heat map.  ``values`` are in [0, 1] (NaN = empty)."""
    rows, cols = len(row_labels), len(col_labels)
    left, top = 110, 54
    width = left + cols * cell + 30
    height = top + rows * cell + 40
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 24, title, size=14, anchor="middle")
    for j, label in enumerate(col_labels):
        canvas.text(left + j * cell + cell / 2, top - 8, label, anchor="middle")
    for i, row in enumerate(values):
        canvas.text(left - 8, top + i * cell + cell / 2 + 4, row_labels[i],
                    anchor="end")
        for j, value in enumerate(row):
            x, y = left + j * cell, top + i * cell
            if value is None or (isinstance(value, float) and math.isnan(value)):
                canvas.rect(x, y, cell, cell, "#eee", stroke="#ccc")
                continue
            canvas.rect(x, y, cell, cell, _color(value), stroke="white",
                        title=f"{row_labels[i]} x {col_labels[j]}: {value:.2f}")
            luminance = value  # bright cells get dark text
            canvas.text(x + cell / 2, y + cell / 2 + 4, f"{value:.2f}",
                        anchor="middle", size=11,
                        fill="#222" if luminance > 0.55 else "#eee")
    return canvas.to_string()


def linechart_svg(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str,
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
) -> str:
    """A Figure-3-style line chart (one line per named series)."""
    left, right, top, bottom = 70, 20, 50, 60
    plot_w, plot_h = width - left - right, height - top - bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 24, title, size=14, anchor="middle")

    all_y = [v for ys in series.values() for v in ys]
    y_max = max(all_y) * 1.05 or 1.0
    x_min, x_max = min(x_values), max(x_values)

    def sx(x: float) -> float:
        return left + (x - x_min) / (x_max - x_min or 1.0) * plot_w

    def sy(y: float) -> float:
        return top + plot_h - y / y_max * plot_h

    canvas.line(left, top, left, top + plot_h)
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h)
    for tick in range(5):
        y = y_max * tick / 4
        canvas.line(left - 4, sy(y), left, sy(y))
        canvas.text(left - 8, sy(y) + 4, f"{y:.3g}", anchor="end", size=10)
    for x in x_values:
        canvas.line(sx(x), top + plot_h, sx(x), top + plot_h + 4)
        canvas.text(sx(x), top + plot_h + 16, f"{x:g}", anchor="middle", size=10)
    canvas.text(left + plot_w / 2, height - 12, x_label, anchor="middle", size=11)
    canvas.text(16, top - 10, y_label, size=11)

    palette = ["#1f5fa8", "#c0392b", "#27ae60", "#8e44ad"]
    for index, (name, ys) in enumerate(series.items()):
        color = palette[index % len(palette)]
        canvas.polyline([(sx(x), sy(y)) for x, y in zip(x_values, ys)], stroke=color)
        canvas.text(left + plot_w - 4, top + 16 + 16 * index, name,
                    anchor="end", size=11, fill=color)
    return canvas.to_string()


def barchart_svg(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str,
    y_label: str = "",
    y_max: float | None = None,
    width: int | None = None,
    height: int = 380,
) -> str:
    """A Figure-13-style grouped bar chart."""
    n_groups, n_series = len(groups), len(series)
    bar, gap = 14, 18
    group_w = n_series * bar + gap
    left, top, bottom = 60, 50, 80
    width = width or left + n_groups * group_w + 30
    plot_h = height - top - bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 24, title, size=14, anchor="middle")
    limit = y_max or max(max(v) for v in series.values()) * 1.05

    def sy(y: float) -> float:
        return top + plot_h - min(y, limit) / limit * plot_h

    canvas.line(left, top, left, top + plot_h)
    canvas.line(left, top + plot_h, width - 20, top + plot_h)
    for tick in range(5):
        y = limit * tick / 4
        canvas.line(left - 4, sy(y), left, sy(y))
        canvas.text(left - 8, sy(y) + 4, f"{y:.2f}", anchor="end", size=10)
    canvas.text(16, top - 10, y_label, size=11)

    palette = ["#5b7fa6", "#c0392b", "#27ae60", "#8e44ad", "#d4a017", "#16a085", "#7f8c8d"]
    for g_index, group in enumerate(groups):
        gx = left + g_index * group_w + gap / 2
        for s_index, (name, values) in enumerate(series.items()):
            value = values[g_index]
            canvas.rect(gx + s_index * bar, sy(value), bar - 2,
                        top + plot_h - sy(value),
                        palette[s_index % len(palette)],
                        title=f"{group} / {name}: {value:.2f}")
        canvas.text(gx + group_w / 2 - gap / 2, top + plot_h + 14, group,
                    anchor="middle", size=9)
    for s_index, name in enumerate(series):
        y = height - 40 + 14 * (s_index // 4)
        x = left + (s_index % 4) * 130
        canvas.rect(x, y - 9, 10, 10, palette[s_index % len(palette)])
        canvas.text(x + 14, y, name, size=10)
    return canvas.to_string()
