"""Figure regeneration: SVG renderings of the paper's plots."""

from .figures import figure01, figure03, figure12, figure13, generate_all
from .svg import SvgCanvas, barchart_svg, heatmap_svg, linechart_svg

__all__ = [
    "figure01", "figure03", "figure12", "figure13", "generate_all",
    "SvgCanvas", "barchart_svg", "heatmap_svg", "linechart_svg",
]
