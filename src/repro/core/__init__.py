"""Dopia core: DoP selection, training, runtime management, baselines."""

from .collect import (
    CollectionStats,
    DatasetCacheError,
    WorkloadSpec,
    clear_cache,
    collect_dataset_with_stats,
    default_jobs,
)
from .baselines import (
    BASELINE_UTILS,
    STATIC_SHARES,
    baseline_configs,
    baseline_indices,
    best_constant_allocation,
    best_static_time,
)
from .dopconfig import (
    CPU_LEVELS,
    GPU_LEVELS,
    MAX_CONFIG_DISTANCE,
    DopConfig,
    config_distance,
    config_space,
    config_utils_matrix,
    find_config,
)
from .metrics import SchemeQuality, distribution_stats, evaluate_scheme
from .predictor import DopPredictor, Prediction
from .runtime import DopiaRuntime, KernelArtifacts, execute_chain_serial
from .scheduler import (
    AtomicWorklist,
    ScheduleTrace,
    run_dynamic,
    run_dynamic_pull,
    run_static,
)
from .training import DopDataset, collect_dataset, default_cache_dir, measure_workload

__all__ = [
    "BASELINE_UTILS", "STATIC_SHARES", "baseline_configs", "baseline_indices",
    "best_constant_allocation", "best_static_time", "CPU_LEVELS", "GPU_LEVELS",
    "MAX_CONFIG_DISTANCE", "DopConfig", "config_distance", "config_space",
    "config_utils_matrix", "find_config", "SchemeQuality", "distribution_stats",
    "evaluate_scheme", "DopPredictor", "Prediction", "DopiaRuntime", "execute_chain_serial",
    "KernelArtifacts", "AtomicWorklist", "ScheduleTrace", "run_dynamic",
    "run_dynamic_pull", "run_static", "DopDataset", "collect_dataset", "default_cache_dir",
    "measure_workload", "CollectionStats", "DatasetCacheError", "WorkloadSpec",
    "clear_cache", "collect_dataset_with_stats", "default_jobs",
]
