"""Evaluation metrics of §9.3: classification counts, Euclidean distance
error, and normalised performance against the exhaustive oracle."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dopconfig import MAX_CONFIG_DISTANCE


@dataclass
class SchemeQuality:
    """Per-workload quality of one selection scheme against the oracle."""

    correct: int                   #: Table-5 count: exact best-config hits
    distance_errors: np.ndarray    #: Fig 11a: normalised Euclidean distances
    normalized_perf: np.ndarray    #: Fig 11b: t_best / t_selected per workload

    @property
    def mean_distance(self) -> float:
        return float(self.distance_errors.mean())

    @property
    def mean_performance(self) -> float:
        return float(self.normalized_perf.mean())


def evaluate_scheme(
    times: np.ndarray,
    selected: np.ndarray,
    config_utils: np.ndarray,
) -> SchemeQuality:
    """Score a selection scheme on a recorded time matrix.

    ``times`` is (n_workloads, n_configs); ``selected`` gives the scheme's
    chosen configuration index per workload; ``config_utils`` is the
    (n_configs, 2) normalised-utilisation table.
    """
    times = np.asarray(times, dtype=np.float64)
    selected = np.asarray(selected, dtype=np.int64)
    best_index = times.argmin(axis=1)
    best_time = times.min(axis=1)
    rows = np.arange(times.shape[0])

    correct = int((selected == best_index).sum())
    deltas = config_utils[selected] - config_utils[best_index]
    distances = np.hypot(deltas[:, 0], deltas[:, 1]) / MAX_CONFIG_DISTANCE
    normalized = best_time / times[rows, selected]
    return SchemeQuality(
        correct=correct, distance_errors=distances, normalized_perf=normalized
    )


def distribution_stats(values: np.ndarray) -> dict[str, float]:
    """Mean/median/percentile summary used by the box plots (Figs 9–11)."""
    values = np.asarray(values, dtype=np.float64)
    return {
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "p5": float(np.percentile(values, 5)),
        "p25": float(np.percentile(values, 25)),
        "p75": float(np.percentile(values, 75)),
        "p95": float(np.percentile(values, 95)),
    }
