"""Thread-count selection: evaluate the model over all 44 configurations.

"Dopia's ML model is evaluated for different CPU and GPU core allocations
to find the best thread-level parallelism for the given kernel.  The core
configuration of the predicted minimal kernel runtime determines the CPU
and GPU core configuration with which the kernel is executed." (§7)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.features import StaticFeatures
from ..ml.base import Estimator
from ..obs import tracer
from ..sim.platforms import Platform
from .dopconfig import DopConfig, config_space, config_utils_matrix


@dataclass
class Prediction:
    """The outcome of one DoP selection."""

    config: DopConfig
    scores: np.ndarray          #: predicted normalised performance per config
    inference_cost_s: float     #: modelled cost of the 44 evaluations


class DopPredictor:
    """Binds a trained model to a platform's configuration space."""

    def __init__(self, model: Estimator, platform: Platform):
        self.model = model
        self.platform = platform
        self.configs = config_space(platform)
        self._utils = config_utils_matrix(self.configs)

    def feature_rows(
        self, static: StaticFeatures, work_dim: int, global_size: int, local_size: int
    ) -> np.ndarray:
        """(44, 11) model inputs for one kernel launch."""
        n = len(self.configs)
        rows = np.empty((n, 11), dtype=np.float64)
        rows[:, 0:6] = static.as_tuple()
        rows[:, 6] = work_dim
        rows[:, 7] = global_size
        rows[:, 8] = local_size
        rows[:, 9:] = self._utils
        return rows

    def select(
        self, static: StaticFeatures, work_dim: int, global_size: int, local_size: int
    ) -> Prediction:
        """Pick the configuration with the highest predicted performance."""
        rows = self.feature_rows(static, work_dim, global_size, local_size)
        scores = self.model.predict(rows)
        best = int(np.argmax(scores))
        prediction = Prediction(
            config=self.configs[best],
            scores=scores,
            inference_cost_s=self.model.inference_cost_s(len(self.configs)),
        )
        if tracer.enabled:
            # The full scored configuration space — the evidence behind
            # "why did this launch pick (c CPU threads, GPU/g)?".
            tracer.instant(
                "predictor.select", "predict",
                platform=self.platform.name,
                work_dim=work_dim, global_size=global_size,
                local_size=local_size,
                best=best,
                cpu_threads=prediction.config.setting.cpu_threads,
                gpu_fraction=prediction.config.setting.gpu_fraction,
                inference_cost_s=prediction.inference_cost_s,
                configs=[
                    {
                        "cpu_threads": config.setting.cpu_threads,
                        "gpu_fraction": config.setting.gpu_fraction,
                        "score": float(score),
                    }
                    for config, score in zip(self.configs, scores)
                ],
            )
            tracer.counter("predictor.selections")
        return prediction
