"""Thread-count selection: evaluate the model over all 44 configurations.

"Dopia's ML model is evaluated for different CPU and GPU core allocations
to find the best thread-level parallelism for the given kernel.  The core
configuration of the predicted minimal kernel runtime determines the CPU
and GPU core configuration with which the kernel is executed." (§7)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.features import StaticFeatures
from ..ml.base import Estimator
from ..obs import tracer
from ..sim.platforms import Platform
from .dopconfig import DopConfig, config_space, config_utils_matrix


@dataclass
class Prediction:
    """The outcome of one DoP selection."""

    config: DopConfig
    scores: np.ndarray          #: predicted normalised performance per config
    inference_cost_s: float     #: modelled cost of the 44 evaluations


class DopPredictor:
    """Binds a trained model to a platform's configuration space."""

    def __init__(self, model: Estimator, platform: Platform):
        self.model = model
        self.platform = platform
        self.configs = config_space(platform)
        self._utils = config_utils_matrix(self.configs)

    def feature_rows(
        self, static: StaticFeatures, work_dim: int, global_size: int, local_size: int,
        cpu_load: float = 0.0, gpu_load: float = 0.0,
    ) -> np.ndarray:
        """(44, 11) model inputs for one kernel launch.

        ``cpu_load``/``gpu_load`` are the *live* device occupancies (0–1)
        at enqueue time — Table 1's ``CPU_util``/``GPU_util`` features in
        their online, multiprogrammed role.  Each candidate row carries the
        total utilisation the device would see if this launch ran at that
        configuration *on top of* the background load (capped at 1.0).
        At idle (the defaults) the rows reduce to the offline training
        layout, so single-client behaviour is unchanged.
        """
        n = len(self.configs)
        rows = np.empty((n, 11), dtype=np.float64)
        rows[:, 0:6] = static.as_tuple()
        rows[:, 6] = work_dim
        rows[:, 7] = global_size
        rows[:, 8] = local_size
        rows[:, 9:] = self._utils
        if cpu_load > 0.0:
            np.minimum(rows[:, 9] + cpu_load, 1.0, out=rows[:, 9])
        if gpu_load > 0.0:
            np.minimum(rows[:, 10] + gpu_load, 1.0, out=rows[:, 10])
        return rows

    def feasible_mask(self, cpu_load: float, gpu_load: float) -> np.ndarray:
        """Configurations that fit in the *remaining* device capacity.

        A candidate is feasible when its CPU-thread share and GPU-PE
        fraction both fit alongside the in-flight load.  The serving layer
        uses this to keep an enqueue from claiming PEs another launch
        already occupies.
        """
        eps = 1e-9
        return ((self._utils[:, 0] <= 1.0 - cpu_load + eps)
                & (self._utils[:, 1] <= 1.0 - gpu_load + eps))

    def select(
        self, static: StaticFeatures, work_dim: int, global_size: int, local_size: int,
        cpu_load: float = 0.0, gpu_load: float = 0.0,
    ) -> Prediction:
        """Pick the configuration with the highest predicted performance.

        With a non-zero live load, candidates that no longer fit in the
        remaining capacity are masked out before the argmax (unless *every*
        candidate is infeasible — a saturated device — in which case the
        unmasked argmax wins and the launch oversubscribes, paying the
        contention penalty instead of deadlocking).
        """
        rows = self.feature_rows(static, work_dim, global_size, local_size,
                                 cpu_load=cpu_load, gpu_load=gpu_load)
        scores = self.model.predict(rows)
        ranked = scores
        if cpu_load > 0.0 or gpu_load > 0.0:
            feasible = self.feasible_mask(cpu_load, gpu_load)
            if feasible.any():
                ranked = np.where(feasible, scores, -np.inf)
        best = int(np.argmax(ranked))
        prediction = Prediction(
            config=self.configs[best],
            scores=scores,
            inference_cost_s=self.model.inference_cost_s(len(self.configs)),
        )
        if tracer.enabled:
            # The full scored configuration space — the evidence behind
            # "why did this launch pick (c CPU threads, GPU/g)?".
            tracer.instant(
                "predictor.select", "predict",
                platform=self.platform.name,
                work_dim=work_dim, global_size=global_size,
                local_size=local_size,
                cpu_load=cpu_load, gpu_load=gpu_load,
                best=best,
                cpu_threads=prediction.config.setting.cpu_threads,
                gpu_fraction=prediction.config.setting.gpu_fraction,
                inference_cost_s=prediction.inference_cost_s,
                configs=[
                    {
                        "cpu_threads": config.setting.cpu_threads,
                        "gpu_fraction": config.setting.gpu_fraction,
                        "score": float(score),
                    }
                    for config, score in zip(self.configs, scores)
                ],
            )
            tracer.counter("predictor.selections")
        return prediction
