"""Training-data collection (paper §5.2, Table 4).

Every workload is executed (simulated) at all 44 DoP configurations with
Dopia's dynamic workload distribution; the recorded execution times become
the model targets.  Following the paper, the target is the *normalised
performance* of a configuration — best observed time over this
configuration's time, in (0, 1] — which makes targets comparable across
kernels of very different absolute runtimes.

Collecting the full (1,224 + 14) × 44 = 54,472-point dataset takes the
paper "a few hours" on hardware and a few tens of seconds here, so results
are cached on disk (``DOPIA_CACHE_DIR`` overrides the location).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..analysis.features import StaticFeatures, extract_static_features
from ..sim.engine import simulate_execution
from ..sim.platforms import Platform
from ..workloads.registry import Workload
from .dopconfig import DopConfig, config_space, config_utils_matrix


def default_cache_dir() -> Path:
    env = os.environ.get("DOPIA_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache"


@dataclass
class DopDataset:
    """Execution times and features of a workload set on one platform.

    ``times[i, j]`` is the simulated execution time of workload ``i`` under
    configuration ``j`` (the fixed order of :func:`config_space`).
    """

    platform_name: str
    workload_keys: list[str]
    static_features: np.ndarray    #: (n, 6) Table-1 code features
    runtime_features: np.ndarray   #: (n, 3) work_dim, global_size, local_size
    times: np.ndarray              #: (n, 44) seconds
    config_utils: np.ndarray       #: (44, 2) normalised utilisations

    # -- dataset views ------------------------------------------------------

    @property
    def n_workloads(self) -> int:
        return len(self.workload_keys)

    @property
    def n_configs(self) -> int:
        return self.times.shape[1]

    def normalized_performance(self) -> np.ndarray:
        """(n, 44) best-time / time — the model target, in (0, 1]."""
        best = self.times.min(axis=1, keepdims=True)
        return best / self.times

    def best_config_indices(self) -> np.ndarray:
        """Index of the fastest configuration per workload."""
        return self.times.argmin(axis=1)

    def feature_matrix(self) -> np.ndarray:
        """(n*44, 11) Table-1 rows: static ⊕ runtime ⊕ config utils."""
        n, c = self.n_workloads, self.n_configs
        out = np.empty((n * c, 11), dtype=np.float64)
        static_runtime = np.hstack([self.static_features, self.runtime_features])
        out[:, :9] = np.repeat(static_runtime, c, axis=0)
        out[:, 9:] = np.tile(self.config_utils, (n, 1))
        return out

    def targets(self) -> np.ndarray:
        """(n*44,) normalised performance, matching :meth:`feature_matrix`."""
        return self.normalized_performance().ravel()

    def groups(self) -> np.ndarray:
        """(n*44,) workload index per row — for grouped cross-validation."""
        return np.repeat(np.arange(self.n_workloads), self.n_configs)

    def rows_of(self, workload_index: int) -> slice:
        return slice(workload_index * self.n_configs, (workload_index + 1) * self.n_configs)

    # -- persistence ------------------------------------------------------------

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            platform_name=self.platform_name,
            workload_keys=np.array(self.workload_keys),
            static_features=self.static_features,
            runtime_features=self.runtime_features,
            times=self.times,
            config_utils=self.config_utils,
        )

    @staticmethod
    def load(path: Path) -> "DopDataset":
        data = np.load(path, allow_pickle=False)
        return DopDataset(
            platform_name=str(data["platform_name"]),
            workload_keys=[str(k) for k in data["workload_keys"]],
            static_features=data["static_features"],
            runtime_features=data["runtime_features"],
            times=data["times"],
            config_utils=data["config_utils"],
        )


def measure_workload(
    workload: Workload,
    platform: Platform,
    configs: Sequence[DopConfig] | None = None,
    sigma: float | None = None,
) -> np.ndarray:
    """Simulated dynamic-distribution times of one workload at every config."""
    if configs is None:
        configs = config_space(platform)
    profile = workload.profile()
    kwargs = {} if sigma is None else {"sigma": sigma}
    return np.array(
        [
            simulate_execution(
                profile, platform, config.setting,
                scheduler="dynamic", run_key=(workload.key,), **kwargs,
            ).time_s
            for config in configs
        ]
    )


def _workloads_fingerprint(workloads: Sequence[Workload], platform: Platform) -> str:
    hasher = hashlib.blake2b(digest_size=12)
    hasher.update(platform.name.encode())
    hasher.update(repr(platform).encode())
    for workload in workloads:
        hasher.update(workload.key.encode())
        hasher.update(workload.source.encode())
        hasher.update(repr(sorted(workload.scalar_args.items())).encode())
    return hasher.hexdigest()


def collect_dataset(
    workloads: Sequence[Workload],
    platform: Platform,
    cache: bool = True,
    cache_dir: Path | None = None,
) -> DopDataset:
    """Build (or load from cache) the dataset for ``workloads`` on ``platform``."""
    directory = cache_dir or default_cache_dir()
    fingerprint = _workloads_fingerprint(workloads, platform)
    path = directory / f"dataset-{platform.name}-{fingerprint}.npz"
    if cache and path.exists():
        return DopDataset.load(path)

    configs = config_space(platform)
    static = np.empty((len(workloads), 6), dtype=np.float64)
    runtime = np.empty((len(workloads), 3), dtype=np.float64)
    times = np.empty((len(workloads), len(configs)), dtype=np.float64)
    for index, workload in enumerate(workloads):
        features: StaticFeatures = extract_static_features(workload.kernel_info())
        static[index] = features.as_tuple()
        runtime[index] = (
            workload.work_dim,
            workload.total_work_items,
            workload.work_group_items,
        )
        times[index] = measure_workload(workload, platform, configs)
    dataset = DopDataset(
        platform_name=platform.name,
        workload_keys=[w.key for w in workloads],
        static_features=static,
        runtime_features=runtime,
        times=times,
        config_utils=config_utils_matrix(configs),
    )
    if cache:
        dataset.save(path)
    return dataset
