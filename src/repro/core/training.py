"""Training-data collection (paper §5.2, Table 4).

Every workload is executed (simulated) at all 44 DoP configurations with
Dopia's dynamic workload distribution; the recorded execution times become
the model targets.  Following the paper, the target is the *normalised
performance* of a configuration — best observed time over this
configuration's time, in (0, 1] — which makes targets comparable across
kernels of very different absolute runtimes.

Collecting the full (1,224 + 14) × 44 = 54,472-point dataset takes the
paper "a few hours" on hardware and a few tens of seconds here, so results
are cached on disk (``DOPIA_CACHE_DIR`` overrides the location).  The cache
is a content-addressed shard store — one ``.npz`` per (workload, platform)
plus a dataset manifest — managed by :mod:`repro.core.collect`, which also
parallelises cold collection over a process pool (``jobs``).  Unreadable or
truncated cache files are never fatal: they are treated as cache misses and
only the affected shards are re-collected.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..sim.engine import simulate_execution
from ..sim.platforms import Platform
from ..workloads.registry import Workload
from .dopconfig import DopConfig, config_space


def default_cache_dir() -> Path:
    env = os.environ.get("DOPIA_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache"


@dataclass
class DopDataset:
    """Execution times and features of a workload set on one platform.

    ``times[i, j]`` is the simulated execution time of workload ``i`` under
    configuration ``j`` (the fixed order of :func:`config_space`).
    """

    platform_name: str
    workload_keys: list[str]
    static_features: np.ndarray    #: (n, 6) Table-1 code features
    runtime_features: np.ndarray   #: (n, 3) work_dim, global_size, local_size
    times: np.ndarray              #: (n, 44) seconds
    config_utils: np.ndarray       #: (44, 2) normalised utilisations

    # -- dataset views ------------------------------------------------------

    @property
    def n_workloads(self) -> int:
        return len(self.workload_keys)

    @property
    def n_configs(self) -> int:
        return self.times.shape[1]

    def normalized_performance(self) -> np.ndarray:
        """(n, 44) best-time / time — the model target, in (0, 1]."""
        best = self.times.min(axis=1, keepdims=True)
        return best / self.times

    def best_config_indices(self) -> np.ndarray:
        """Index of the fastest configuration per workload."""
        return self.times.argmin(axis=1)

    def feature_matrix(self) -> np.ndarray:
        """(n*44, 11) Table-1 rows: static ⊕ runtime ⊕ config utils."""
        n, c = self.n_workloads, self.n_configs
        out = np.empty((n * c, 11), dtype=np.float64)
        static_runtime = np.hstack([self.static_features, self.runtime_features])
        out[:, :9] = np.repeat(static_runtime, c, axis=0)
        out[:, 9:] = np.tile(self.config_utils, (n, 1))
        return out

    def targets(self) -> np.ndarray:
        """(n*44,) normalised performance, matching :meth:`feature_matrix`."""
        return self.normalized_performance().ravel()

    def groups(self) -> np.ndarray:
        """(n*44,) workload index per row — for grouped cross-validation."""
        return np.repeat(np.arange(self.n_workloads), self.n_configs)

    def rows_of(self, workload_index: int) -> slice:
        return slice(workload_index * self.n_configs, (workload_index + 1) * self.n_configs)

    # -- persistence ------------------------------------------------------------

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            platform_name=self.platform_name,
            workload_keys=np.array(self.workload_keys),
            static_features=self.static_features,
            runtime_features=self.runtime_features,
            times=self.times,
            config_utils=self.config_utils,
        )

    @staticmethod
    def load(path: Path) -> "DopDataset":
        """Load a dataset saved by :meth:`save`.

        Raises :class:`repro.core.collect.DatasetCacheError` — never a bare
        ``zipfile.BadZipFile`` — when the file is missing, truncated, or
        otherwise unreadable, so callers can treat corruption as a cache
        miss.  Use :meth:`try_load` for the non-raising variant.
        """
        from .collect import CACHE_READ_ERRORS, DatasetCacheError

        try:
            with np.load(path, allow_pickle=False) as data:
                dataset = DopDataset(
                    platform_name=str(data["platform_name"]),
                    workload_keys=[str(k) for k in data["workload_keys"]],
                    static_features=np.asarray(data["static_features"], dtype=np.float64),
                    runtime_features=np.asarray(data["runtime_features"], dtype=np.float64),
                    times=np.asarray(data["times"], dtype=np.float64),
                    config_utils=np.asarray(data["config_utils"], dtype=np.float64),
                )
        except CACHE_READ_ERRORS as error:
            raise DatasetCacheError(path, error) from error
        n = dataset.n_workloads
        if (
            dataset.static_features.shape != (n, 6)
            or dataset.runtime_features.shape != (n, 3)
            or dataset.times.ndim != 2
            or dataset.times.shape[0] != n
            or dataset.config_utils.shape != (dataset.times.shape[1], 2)
        ):
            raise DatasetCacheError(path, ValueError("inconsistent array shapes"))
        return dataset

    @staticmethod
    def try_load(path: Path) -> "DopDataset | None":
        """:meth:`load`, but ``None`` instead of raising on a bad file."""
        from .collect import DatasetCacheError

        try:
            return DopDataset.load(path)
        except DatasetCacheError:
            return None


def measure_workload(
    workload: Workload,
    platform: Platform,
    configs: Sequence[DopConfig] | None = None,
    sigma: float | None = None,
) -> np.ndarray:
    """Simulated dynamic-distribution times of one workload at every config."""
    if configs is None:
        configs = config_space(platform)
    profile = workload.profile()
    kwargs = {} if sigma is None else {"sigma": sigma}
    return np.array(
        [
            simulate_execution(
                profile, platform, config.setting,
                scheduler="dynamic", run_key=(workload.key,), **kwargs,
            ).time_s
            for config in configs
        ]
    )


def _workloads_fingerprint(workloads: Sequence[Workload], platform: Platform) -> str:
    hasher = hashlib.blake2b(digest_size=12)
    hasher.update(platform.name.encode())
    hasher.update(repr(platform).encode())
    for workload in workloads:
        hasher.update(workload.key.encode())
        hasher.update(workload.source.encode())
        hasher.update(repr(sorted(workload.scalar_args.items())).encode())
    return hasher.hexdigest()


def collect_dataset(
    workloads: Sequence[Workload],
    platform: Platform,
    cache: bool = True,
    cache_dir: Path | None = None,
    jobs: int | None = None,
    sigma: float | None = None,
    progress=None,
) -> DopDataset:
    """Build (or load from cache) the dataset for ``workloads`` on ``platform``.

    Thin wrapper over :func:`repro.core.collect.collect_dataset_with_stats`
    (the sharded, parallel, fault-tolerant pipeline) that keeps the original
    return type.  ``jobs=None`` collects serially in-process; pass
    ``jobs=os.cpu_count()`` (the CLI default) to fan cache misses out over a
    process pool.
    """
    from .collect import collect_dataset_with_stats

    dataset, _ = collect_dataset_with_stats(
        workloads,
        platform,
        cache=cache,
        cache_dir=cache_dir,
        jobs=jobs,
        sigma=sigma,
        progress=progress,
    )
    return dataset
