"""DopiaRuntime: the interposed runtime tying everything together (§4).

Installed as the :class:`repro.cl.Interposer`, the runtime

* at **program build** (``clCreateProgramWithSource``): statically analyses
  every kernel, extracts the Table-1 code features, and prepares the
  malleable GPU and CPU variants (§5, §6);
* at **kernel launch** (``clEnqueueNDRangeKernel``): combines the static
  features with the launch geometry, evaluates the pre-trained ML model
  over all 44 DoP configurations, picks the predicted-best setting, and
  executes the launch with dynamic workload distribution (§7) — both
  functionally (Algorithm 1 over the interpreter, mutating real buffers)
  and on the performance model (simulated wall-clock, which includes the
  model-inference overhead the paper charges in Figure 13).
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..analysis.features import StaticFeatures, extract_static_features
from ..analysis.profile import profile_kernel
from ..cl.api import Interposer
from ..cl.program import Kernel, Program
from ..cl.queue import CommandQueue, Event
from ..cl.types import CommandType
from ..interp.ndrange import NDRange
from ..ml import make_model
from ..ml.base import Estimator
from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.engine import DopSetting, ExecutionResult, simulate_execution
from ..sim.platforms import Platform
from ..transform.cpu_codegen import CpuKernel, CpuTransformError, make_cpu_kernel
from ..transform.gpu_malleable import (
    MalleableKernel,
    TransformError,
    make_malleable,
    throttle_settings,
)
from ..workloads.synthetic import training_workloads
from .predictor import DopPredictor, Prediction
from .scheduler import run_dynamic
from .training import collect_dataset


@dataclass(frozen=True)
class LaunchRecord:
    """One interposed launch: what was picked and what it cost.

    The canonical copy of every launch flows through the tracer (the
    ``dopia.launch`` span tree plus the ``dopia.launch_record`` event);
    this typed record is the bounded in-memory view kept on
    :attr:`DopiaRuntime.launches` for programmatic access.
    """

    kernel: str
    prediction: Prediction
    result: ExecutionResult
    time_s: float
    #: Table-1 static features of the launched kernel (empty for records
    #: created before the online-retraining fields were added)
    static: tuple = ()
    work_dim: int = 0
    global_size: int = 0
    local_size: int = 0

    def as_details(self) -> dict[str, Any]:
        """The ``Event.details`` dict (the historical record layout)."""
        return {
            "kernel": self.kernel,
            "prediction": self.prediction,
            "result": self.result,
            "time_s": self.time_s,
        }


#: Default bound on the in-memory launch log (records, not bytes).
DEFAULT_MAX_LAUNCH_RECORDS = 4096


@dataclass
class KernelArtifacts:
    """Per-kernel products of Dopia's compile-time pass."""

    static_features: StaticFeatures
    #: malleable GPU variants per work dimension (lazily generated)
    malleable: dict[int, MalleableKernel]
    #: Figure-7 CPU variants per (work dimension, claim discipline)
    #: (lazily generated)
    cpu_codegen: dict[tuple[int, str], CpuKernel]
    transformable: bool
    transform_error: str = ""


class DopiaRuntime(Interposer):
    """The Dopia framework as a cl-API interposer."""

    def __init__(
        self,
        platform: Platform,
        model: Estimator,
        chunk_divisor: int = 10,
        include_inference_overhead: bool = True,
        backend: str | None = None,
        max_launch_records: int = DEFAULT_MAX_LAUNCH_RECORDS,
    ):
        self.platform = platform
        self.predictor = DopPredictor(model, platform)
        self.chunk_divisor = chunk_divisor
        self.include_inference_overhead = include_inference_overhead
        #: interpreter backend for functional execution (``auto``/``vector``/
        #: ``scalar``; ``None`` defers to ``DOPIA_BACKEND``)
        self.backend = backend
        #: bounded launch log: one :class:`LaunchRecord` per interposed
        #: enqueue, newest kept (a long-lived runtime no longer grows
        #: without bound; the full history is the tracer's job)
        self.launches: deque[LaunchRecord] = deque(maxlen=max(1, max_launch_records))
        #: total records appended since construction or :meth:`clear`,
        #: counting past the ring bound
        self.total_launches = 0
        #: guards launch accounting (append + total) as one atomic step
        self._launch_lock = threading.Lock()
        #: optional observation sink (:class:`repro.ml.online.OnlineLoop`);
        #: when set, :meth:`record_launch` feeds every launch into the
        #: retraining loop's observation store — see :meth:`attach_online`
        self.online = None
        #: guards lazy per-kernel artifact generation (malleable/CPU
        #: variants); reentrant because ``_artifacts`` may trigger a full
        #: ``program_built`` pass.  Execution itself never holds it.
        self._artifact_lock = threading.RLock()

    @property
    def max_launch_records(self) -> int:
        return self.launches.maxlen or 0

    def clear(self) -> None:
        """Drop the accumulated launch records and reset the total."""
        with self._launch_lock:
            self.launches.clear()
            self.total_launches = 0

    def attach_online(self, loop) -> None:
        """Feed future launches into an :class:`repro.ml.online.OnlineLoop`.

        The runtime is the single-client (idle-machine) path, so the
        observations it contributes carry zero background load — they
        anchor the store's idle cells while a co-located server (or a
        later serving session sharing the same persistent store)
        contributes the loaded ones.
        """
        self.online = loop

    def record_launch(self, record: LaunchRecord) -> None:
        """Append one launch record atomically (ring append + total).

        With an online loop attached, the record is also ingested as a
        training observation (when it carries the launch-shape fields —
        pre-existing minimal records are logged but not learned from).
        """
        with self._launch_lock:
            self.launches.append(record)
            self.total_launches += 1
        loop = self.online
        if loop is not None and record.static:
            config = record.prediction.config
            loop.ingest(
                kernel=record.kernel,
                static=record.static,
                work_dim=record.work_dim,
                global_size=record.global_size,
                local_size=record.local_size,
                cpu_load=0.0,
                gpu_load=0.0,
                cpu_util=config.cpu_util,
                gpu_util=config.gpu_util,
                time_s=record.result.time_s,
                source="runtime",
            )

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_pretrained(
        platform: Platform,
        model_name: str = "dt",
        cache: bool = True,
        jobs: int | None = None,
        backend: str | None = None,
        **model_kwargs,
    ) -> "DopiaRuntime":
        """Train (or load the cached dataset for) the Table-4 synthetic
        workloads and return a ready runtime — the paper's offline phase.
        ``jobs`` sets the worker-process count for cold collection."""
        dataset = collect_dataset(training_workloads(), platform, cache=cache, jobs=jobs)
        model = make_model(model_name, **model_kwargs)
        model.fit(dataset.feature_matrix(), dataset.targets())
        return DopiaRuntime(platform, model, backend=backend)

    # -- compile-time pass -----------------------------------------------------

    def program_built(self, program: Program) -> None:
        with self._artifact_lock, tracer.span(
                "dopia.program_build", "build",
                kernels=list(program.kernel_infos)):
            for name, info in program.kernel_infos.items():
                if isinstance(program.interposer_data.get(name), KernelArtifacts):
                    continue  # another thread won the build race
                with tracer.span("dopia.analyze_kernel", "build", kernel=name):
                    features = extract_static_features(info)
                    try:
                        make_malleable(info, work_dim=1)
                        transformable, error = True, ""
                    except TransformError as exc:
                        transformable, error = False, str(exc)
                program.interposer_data[name] = KernelArtifacts(
                    static_features=features,
                    malleable={},
                    cpu_codegen={},
                    transformable=transformable,
                    transform_error=error,
                )
                if tracer.enabled:
                    tracer.instant("dopia.kernel_artifacts", "build",
                                   kernel=name, transformable=transformable,
                                   reason=error)

    def _artifacts(self, kernel: Kernel) -> KernelArtifacts:
        data = kernel.program.interposer_data.get(kernel.name)
        if not isinstance(data, KernelArtifacts):
            self.program_built(kernel.program)
            data = kernel.program.interposer_data[kernel.name]
        return data

    def _malleable_for(self, kernel: Kernel, work_dim: int) -> MalleableKernel:
        artifacts = self._artifacts(kernel)
        if work_dim not in artifacts.malleable:
            with self._artifact_lock:
                if work_dim not in artifacts.malleable:
                    self._verify_buildable(kernel)
                    artifacts.malleable[work_dim] = make_malleable(
                        kernel.info, work_dim=work_dim
                    )
        return artifacts.malleable[work_dim]

    @staticmethod
    def _verify_buildable(kernel: Kernel) -> None:
        """Legality gate at build time: ``verify_kernel`` runs before the
        malleable transform and, under ``DOPIA_VERIFY=raise``, a kernel
        with ERROR diagnostics is refused rather than transformed.  The
        default ``off`` costs one env lookup."""
        if os.environ.get("DOPIA_VERIFY", "off").strip().lower() \
                in ("", "off"):
            return
        from ..analysis.verify import (
            apply_policy,
            current_policy,
            verify_kernel,
        )

        policy = current_policy()
        if policy == "off":
            return
        apply_policy(verify_kernel(kernel.info), policy)

    def cpu_variant(self, kernel: Kernel, work_dim: int,
                    claims: str | None = None,
                    ndrange: NDRange | None = None) -> CpuKernel:
        """The generated Figure-7 CPU source for ``kernel`` (on demand).

        ``claims`` picks the worklist discipline (see
        :func:`repro.transform.make_cpu_kernel`).  ``None`` resolves it
        from evidence: when ``ndrange`` is provided and the verifier's
        specialized race pass returns a *clean* verdict for this launch,
        the fetch-add claims are relaxed to a static stride; any other
        verdict (``unknown``, diagnosed, or no launch to specialize
        against) keeps the always-safe atomic form.
        """
        if claims is None:
            claims = "relaxed" if (
                ndrange is not None and self._race_clean(kernel, ndrange)
            ) else "atomic"
        artifacts = self._artifacts(kernel)
        key = (work_dim, claims)
        if key not in artifacts.cpu_codegen:
            with self._artifact_lock:
                if key not in artifacts.cpu_codegen:
                    try:
                        artifacts.cpu_codegen[key] = make_cpu_kernel(
                            kernel.info, work_dim=work_dim, claims=claims
                        )
                    except CpuTransformError as exc:
                        raise CpuTransformError(f"{kernel.name}: {exc}") from exc
        return artifacts.cpu_codegen[key]

    def _race_clean(self, kernel: Kernel, ndrange: NDRange) -> bool:
        """Whether the verifier proves this launch free of cross-item races."""
        from ..analysis.verify import LaunchSpec, verify_launch_cached

        try:
            args = kernel.bound_args()
        except Exception:
            return False  # arguments not fully bound yet: no evidence
        launch = LaunchSpec.from_args(ndrange, args)
        report = verify_launch_cached(kernel.info, launch)
        return report.verdicts.get("races") == "clean"

    # -- launch-time pass ------------------------------------------------------

    def enqueue(
        self,
        queue: CommandQueue,
        kernel: Kernel,
        ndrange: NDRange,
        irregular_trip_hint: Optional[float],
    ) -> Optional[Event]:
        artifacts = self._artifacts(kernel)
        if not artifacts.transformable:
            # Barriered kernels cannot be throttled (§6); fall back to the
            # vanilla runtime path by declining the launch.
            if tracer.enabled:
                tracer.instant("dopia.decline", "launch", kernel=kernel.name,
                               reason=artifacts.transform_error)
            return None

        traced = tracer.enabled
        with tracer.span(
            "dopia.launch", "launch",
            kernel=kernel.name,
            global_size=list(ndrange.global_size),
            local_size=list(ndrange.local_size),
            functional=queue.functional,
        ) if traced else NULL_SPAN:
            with tracer.span("dopia.predict", "predict",
                             kernel=kernel.name) if traced else NULL_SPAN:
                prediction = self.predictor.select(
                    artifacts.static_features,
                    ndrange.work_dim,
                    ndrange.total_work_items,
                    ndrange.work_items_per_group,
                )
            setting = prediction.config.setting

            if queue.functional:
                with tracer.span(
                    "dopia.execute_functional", "schedule",
                    kernel=kernel.name, cpu_threads=setting.cpu_threads,
                    gpu_fraction=setting.gpu_fraction,
                ) if traced else NULL_SPAN:
                    self._execute_functional(kernel, ndrange, prediction)

            with tracer.span("dopia.simulate", "sim",
                             kernel=kernel.name) if traced else NULL_SPAN:
                profile = profile_kernel(
                    kernel.info,
                    kernel.scalar_args(),
                    ndrange.total_work_items,
                    ndrange.work_items_per_group,
                    work_dim=ndrange.work_dim,
                    irregular_trip_hint=irregular_trip_hint,
                )
                result = simulate_execution(
                    profile, self.platform, setting,
                    scheduler="dynamic", chunk_divisor=self.chunk_divisor,
                    run_key=(kernel.name, "dopia"),
                )
            time = result.time_s
            if self.include_inference_overhead:
                time += prediction.inference_cost_s
            record = LaunchRecord(
                kernel=kernel.name,
                prediction=prediction,
                result=result,
                time_s=time,
                static=artifacts.static_features.as_tuple(),
                work_dim=ndrange.work_dim,
                global_size=ndrange.total_work_items,
                local_size=ndrange.work_items_per_group,
            )
            self.record_launch(record)
            if traced:
                tracer.instant(
                    "dopia.launch_record", "launch",
                    kernel=kernel.name,
                    cpu_threads=setting.cpu_threads,
                    gpu_fraction=setting.gpu_fraction,
                    time_s=time, sim_time_s=result.time_s,
                    inference_cost_s=prediction.inference_cost_s,
                )
                tracer.counter("dopia.launches")
                tracer.observe("dopia.launch_time_s", time)
            return Event(
                command=CommandType.NDRANGE_KERNEL,
                simulated_time_s=time,
                details=record.as_details(),
            )

    @staticmethod
    def _verify_transformed(
        kernel: Kernel,
        malleable: MalleableKernel,
        ndrange: NDRange,
        mod: int,
        alloc: int,
    ) -> None:
        """Verify the *malleable* variant about to execute, not just the
        original: the throttled kernel must preserve access-set disjointness
        for this launch.  Gated on ``DOPIA_VERIFY`` (default ``off`` costs
        one env lookup); results are cached per (kernel, launch shape)."""
        from ..analysis.verify import (
            LaunchSpec,
            apply_policy,
            current_policy,
            verify_launch_cached,
        )

        policy = current_policy()
        if policy == "off":
            return
        args = dict(kernel.bound_args())
        args["dop_gpu_mod"] = mod
        args["dop_gpu_alloc"] = alloc
        spec = LaunchSpec.from_args(ndrange, args)
        apply_policy(verify_launch_cached(malleable.info, spec), policy)

    @staticmethod
    def _verify_admissible(kernel: Kernel, ndrange: NDRange) -> None:
        """Launch-time legality gate on the original kernel.  Gated on
        ``DOPIA_VERIFY``; reports are cached per (kernel, launch shape)."""
        if os.environ.get("DOPIA_VERIFY", "off").strip().lower() \
                in ("", "off"):
            return
        from ..analysis.verify import (
            LaunchSpec,
            apply_policy,
            current_policy,
            verify_launch_cached,
        )

        policy = current_policy()
        if policy == "off":
            return
        try:
            args = kernel.bound_args()
        except Exception:
            return  # arguments not fully bound: nothing to specialize
        spec = LaunchSpec.from_args(ndrange, args)
        apply_policy(verify_launch_cached(kernel.info, spec), policy)

    def _execute_functional(
        self, kernel: Kernel, ndrange: NDRange, prediction: Prediction
    ) -> None:
        setting = prediction.config.setting
        # Legality gate: verify the *original* kernel for this launch
        # before any variant is even built — under raise, a RACE001 input
        # is refused outright instead of being transformed and scheduled.
        self._verify_admissible(kernel, ndrange)
        malleable = self._malleable_for(kernel, ndrange.work_dim)
        if setting.uses_gpu:
            mod, alloc = throttle_settings(
                self.platform.gpu.pes_per_cu, setting.gpu_fraction
            )
        else:
            mod, alloc = 1, 1
        self._verify_transformed(kernel, malleable, ndrange, mod, alloc)
        run_dynamic(
            kernel.info,
            malleable,
            kernel.bound_args(),
            ndrange,
            setting,
            dop_gpu_mod=mod,
            dop_gpu_alloc=alloc,
            chunk_divisor=self.chunk_divisor,
            backend=self.backend,
        )

    # -- chains ---------------------------------------------------------------

    def run_chain(self, chain) -> list[Prediction]:
        """Run a :class:`repro.workloads.chains.KernelChain` in task order,
        functionally, with the predicted-best DoP per launch.

        This is the single-client path; for pipelined concurrent execution
        hand the chain to ``DopiaServer.submit_chain`` instead.  Returns
        the per-task predictions in task order.
        """
        prepared: dict[tuple[str, str], tuple[Any, MalleableKernel]] = {}
        predictions: list[Prediction] = []
        for task in chain.tasks:
            workload = task.workload
            ndrange = workload.ndrange()
            key = (workload.source, workload.kernel_name)
            if key not in prepared:
                info = workload.kernel_info()
                prepared[key] = (info, make_malleable(
                    info, work_dim=ndrange.work_dim))
            info, malleable = prepared[key]
            prediction = self.predictor.select(
                extract_static_features(info),
                ndrange.work_dim,
                ndrange.total_work_items,
                ndrange.work_items_per_group,
            )
            setting = prediction.config.setting
            if setting.uses_gpu:
                mod, alloc = throttle_settings(
                    self.platform.gpu.pes_per_cu, setting.gpu_fraction)
            else:
                mod, alloc = 1, 1
            run_dynamic(
                info, malleable, task.args, ndrange, setting,
                dop_gpu_mod=mod, dop_gpu_alloc=alloc,
                chunk_divisor=self.chunk_divisor, backend=self.backend,
            )
            predictions.append(prediction)
        return predictions


def execute_chain_serial(chain, *, backend: str | None = None,
                         setting: DopSetting | None = None) -> None:
    """Serial oracle for a :class:`repro.workloads.chains.KernelChain`.

    Runs every task one at a time in declaration order (which the chain
    factories guarantee is a valid topological order — asserted here),
    single CPU thread by default.  The graph tests compare server-executed
    buffer bytes against a fresh identical chain run through this.
    """
    if setting is None:
        setting = DopSetting(cpu_threads=1, gpu_fraction=0.0)
    if setting.uses_gpu:
        raise ValueError("the serial oracle is CPU-only; got a GPU setting")
    done: set[str] = set()
    prepared: dict[tuple[str, str], tuple[Any, MalleableKernel]] = {}
    for task in chain.tasks:
        missing = [dep for dep in task.deps if dep not in done]
        if missing:
            raise ValueError(
                f"chain {chain.name!r} lists task {task.key!r} before its "
                f"dependencies {missing}")
        workload = task.workload
        ndrange = workload.ndrange()
        key = (workload.source, workload.kernel_name)
        if key not in prepared:
            info = workload.kernel_info()
            prepared[key] = (info, make_malleable(
                info, work_dim=ndrange.work_dim))
        info, malleable = prepared[key]
        run_dynamic(
            info, malleable, task.args, ndrange, setting,
            dop_gpu_mod=1, dop_gpu_alloc=1, backend=backend,
        )
        done.add(task.key)


def execute_workload_serial(workload, args: dict[str, Any], *,
                            backend: str | None = None,
                            setting: DopSetting | None = None) -> None:
    """Serial oracle for a single workload launch (mutates ``args`` buffers).

    Single CPU thread by default, same dynamic-scheduling path as
    :func:`execute_chain_serial`; the sharded-serving tests run every
    registry workload through this and demand bit-identical buffers from
    the multi-process server.
    """
    if setting is None:
        setting = DopSetting(cpu_threads=1, gpu_fraction=0.0)
    if setting.uses_gpu:
        raise ValueError("the serial oracle is CPU-only; got a GPU setting")
    ndrange = workload.ndrange()
    info = workload.kernel_info()
    malleable = make_malleable(info, work_dim=ndrange.work_dim)
    run_dynamic(
        info, malleable, args, ndrange, setting,
        dop_gpu_mod=1, dop_gpu_alloc=1, backend=backend,
    )
