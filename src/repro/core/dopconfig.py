"""The degree-of-parallelism configuration space (paper Table 3).

Dopia considers five CPU levels (0/25/50/75/100 % of hardware threads) and
nine GPU levels (eighths of the PEs), excluding the all-zero pair:
5 × 9 − 1 = 44 candidate configurations per platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.engine import DopSetting
from ..sim.platforms import Platform

#: Normalised CPU utilisation levels (fractions of all hardware threads).
CPU_LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Normalised GPU utilisation levels (eighths of all PEs).
GPU_LEVELS = tuple(i / 8 for i in range(9))


@dataclass(frozen=True)
class DopConfig:
    """One candidate configuration: normalised utilisations + the concrete
    device setting for a specific platform."""

    cpu_util: float
    gpu_util: float
    setting: DopSetting

    @property
    def utils(self) -> tuple[float, float]:
        return (self.cpu_util, self.gpu_util)


def config_space(platform: Platform) -> list[DopConfig]:
    """All 44 Table-3 configurations for ``platform``, in a fixed order.

    CPU utilisation maps to thread counts (Kaveri: 0–4 cores; Skylake:
    0–8 threads); GPU utilisation is the PE fraction the malleable kernel
    activates.
    """
    configs = []
    for cpu_util in CPU_LEVELS:
        threads = round(cpu_util * platform.cpu.threads)
        for gpu_util in GPU_LEVELS:
            if cpu_util == 0.0 and gpu_util == 0.0:
                continue
            configs.append(
                DopConfig(
                    cpu_util=cpu_util,
                    gpu_util=gpu_util,
                    setting=DopSetting(cpu_threads=threads, gpu_fraction=gpu_util),
                )
            )
    assert len(configs) == 44
    return configs


def config_utils_matrix(configs: list[DopConfig]) -> np.ndarray:
    """(n, 2) array of normalised (cpu_util, gpu_util) pairs."""
    return np.array([config.utils for config in configs], dtype=np.float64)


#: Normalisation constant for the Euclidean-distance error of Figure 11a:
#: the longest possible distance in the unit configuration square.
MAX_CONFIG_DISTANCE = float(np.sqrt(2.0))


def config_distance(a: DopConfig, b: DopConfig) -> float:
    """Normalised Euclidean distance between two configurations (§9.3)."""
    du = a.cpu_util - b.cpu_util
    dv = a.gpu_util - b.gpu_util
    return float(np.hypot(du, dv)) / MAX_CONFIG_DISTANCE


def find_config(
    configs: list[DopConfig], cpu_util: float, gpu_util: float
) -> DopConfig:
    """Look up the configuration with the given normalised utilisations."""
    for config in configs:
        if abs(config.cpu_util - cpu_util) < 1e-9 and abs(config.gpu_util - gpu_util) < 1e-9:
            return config
    raise KeyError(f"no config ({cpu_util}, {gpu_util})")
