"""The comparison configurations of §8.3 and the exhaustive oracle.

* ``CPU``  — all CPU threads, GPU off; work statically assigned.
* ``GPU``  — all GPU PEs, CPU off.
* ``ALL``  — everything on, collaborative execution.
* ``Exhaustive`` — the oracle: the fastest of all 44 configurations,
  selected with zero overhead (unrealisable in practice; found by
  exhaustive search over the recorded times).
* ``Best constant allocation`` — the single configuration with the best
  *average* normalised performance over a workload set (Table 6).
* ``best static`` — the best of 19 static partitionings (5 %…95 % to the
  CPU) under the ALL configuration (Figure 9's STATIC).
"""

from __future__ import annotations

import numpy as np

from ..sim.engine import simulate_execution
from ..sim.platforms import Platform
from ..workloads.registry import Workload
from .dopconfig import DopConfig, config_space, find_config
from .training import DopDataset

#: The three fixed schemes, as normalised (cpu_util, gpu_util) pairs.
BASELINE_UTILS = {
    "cpu": (1.0, 0.0),
    "gpu": (0.0, 1.0),
    "all": (1.0, 1.0),
}

#: Figure 9's static partition sweep: CPU share from 5 % to 95 %.
STATIC_SHARES = tuple(round(0.05 * i, 2) for i in range(1, 20))


def baseline_configs(platform: Platform) -> dict[str, DopConfig]:
    """The CPU / GPU / ALL configurations of §8.3 for ``platform``."""
    configs = config_space(platform)
    return {
        name: find_config(configs, *utils) for name, utils in BASELINE_UTILS.items()
    }


def baseline_indices(platform: Platform) -> dict[str, int]:
    """Positions of CPU / GPU / ALL in the fixed configuration order."""
    configs = config_space(platform)
    out = {}
    for name, utils in BASELINE_UTILS.items():
        config = find_config(configs, *utils)
        out[name] = configs.index(config)
    return out


def best_constant_allocation(dataset: DopDataset) -> tuple[int, float]:
    """(config index, mean normalised perf) of the best single configuration.

    This is Table 6's "Best const. alloc." row: the one fixed (CPU, GPU)
    pair that maximises average normalised performance across the whole
    workload set.
    """
    norm = dataset.normalized_performance()
    means = norm.mean(axis=0)
    best = int(np.argmax(means))
    return best, float(means[best])


def best_static_time(
    workload: Workload,
    platform: Platform,
    shares: tuple[float, ...] = STATIC_SHARES,
) -> tuple[float, float]:
    """(time, share) of the best static partitioning under ALL resources."""
    profile = workload.profile()
    config = baseline_configs(platform)["all"]
    best_time = np.inf
    best_share = shares[0]
    for share in shares:
        result = simulate_execution(
            profile, platform, config.setting,
            scheduler="static", static_cpu_share=share,
            run_key=(workload.key, "static"),
        )
        if result.time_s < best_time:
            best_time = result.time_s
            best_share = share
    return best_time, best_share
