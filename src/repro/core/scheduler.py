"""Functional implementation of Algorithm 1 (runtime workload management).

This module executes a kernel launch the way Dopia's runtime manager does,
operating on the *real* buffers through the interpreter:

* an atomic worklist holds the index of the next unprocessed work-group;
* each active CPU thread pulls **one work-group at a time** (pull-based,
  because CPUs have cheap atomics);
* the GPU is **pushed chunks** of ``num_wgs / 10`` work-groups — Intel
  iGPUs lack CPU–GPU global atomics, so the GPU cannot pull — executed
  with the malleable kernel at the selected ``(dop_gpu_mod,
  dop_gpu_alloc)`` throttle, using the ND-range global offset to address
  the chunk (Figure 5 line 16 reads ``get_global_offset``);
* the loop repeats until the worklist is exhausted.

Functional execution is deterministic and every work-group is executed
exactly once, whatever the interleaving — the invariant the test suite
checks.  Timing is *not* modelled here (that is :mod:`repro.sim.engine`);
this is the correctness half of the runtime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from ..frontend.semantics import KernelInfo
from ..interp.ndrange import NDRange
from ..interp.vectorize import make_executor
from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.engine import DopSetting
from ..transform.gpu_malleable import ALLOC_PARAM, MOD_PARAM, MalleableKernel


@dataclass
class ScheduleTrace:
    """Which device executed which work-groups, in claim order."""

    cpu_groups: list[int] = field(default_factory=list)
    gpu_groups: list[int] = field(default_factory=list)
    gpu_chunks: int = 0

    @property
    def total(self) -> int:
        return len(self.cpu_groups) + len(self.gpu_groups)


class AtomicWorklist:
    """The shared work-group counter of Algorithm 1 (line 6).

    Genuinely atomic: ``fetch_add`` is a locked read-modify-write, so the
    counter can be shared by concurrent claimants (the serving layer's
    stress harness hammers one worklist from many threads) without losing
    or duplicating work-groups.  The lock is per-worklist — per-launch
    state, never a global execution lock.
    """

    __slots__ = ("next", "limit", "_lock")

    def __init__(self, num_work_groups: int):
        self.next = 0
        self.limit = num_work_groups
        self._lock = threading.Lock()

    def fetch_add(self, count: int = 1) -> int:
        with self._lock:
            value = self.next
            self.next += count
            return value

    @property
    def exhausted(self) -> bool:
        return self.next >= self.limit


def _verify_legality(
    cpu_info: KernelInfo,
    gpu_kernel: MalleableKernel | None,
    args: dict[str, Any],
    ndrange: NDRange,
    dop_gpu_mod: int,
    dop_gpu_alloc: int,
) -> None:
    """Admission legality gate for every dynamic-schedule execution.

    Under ``DOPIA_VERIFY`` the original kernel — and, when the GPU side is
    active, the malleable variant at this throttle — must verify for this
    launch before any work-group is claimed; ``raise`` refuses RACE001
    inputs outright.  All callers of :func:`run_dynamic` (the runtime, the
    serving workers, chains) pass through here, so the gate cannot be
    bypassed by a new execution path.  The default ``off`` costs one env
    lookup; verified launches are cached per (kernel, launch shape).
    """
    import os

    if os.environ.get("DOPIA_VERIFY", "off").strip().lower() in ("", "off"):
        return
    from ..analysis.verify import (
        LaunchSpec,
        apply_policy,
        current_policy,
        verify_launch_cached,
    )

    policy = current_policy()
    if policy == "off":
        return
    apply_policy(
        verify_launch_cached(cpu_info, LaunchSpec.from_args(ndrange, args)),
        policy)
    if gpu_kernel is not None:
        gpu_args = dict(args)
        gpu_args[MOD_PARAM] = dop_gpu_mod
        gpu_args[ALLOC_PARAM] = dop_gpu_alloc
        apply_policy(
            verify_launch_cached(gpu_kernel.info,
                                 LaunchSpec.from_args(ndrange, gpu_args)),
            policy)


def run_dynamic(
    cpu_info: KernelInfo,
    gpu_kernel: MalleableKernel,
    args: dict[str, Any],
    ndrange: NDRange,
    setting: DopSetting,
    dop_gpu_mod: int = 1,
    dop_gpu_alloc: int = 1,
    chunk_divisor: int = 10,
    cpu_pulls_per_round: int | None = None,
    backend: str | None = None,
) -> ScheduleTrace:
    """Execute one launch with Algorithm 1's dynamic distribution.

    ``cpu_info`` is the kernel the CPU threads run (work-group at a time —
    semantically the original kernel); ``gpu_kernel`` is the malleable GPU
    variant.  ``cpu_pulls_per_round`` models how many work-groups the CPU
    side claims while one GPU chunk is in flight (any value yields a
    correct execution; it only changes the split).  ``backend`` selects
    the interpreter backend for the CPU side (the malleable GPU kernel is
    never vectorizable — its local atomic worklist keeps it on the scalar
    path).
    """
    num_wgs = ndrange.total_groups
    worklist = AtomicWorklist(num_wgs)
    trace = ScheduleTrace()

    use_cpu = setting.uses_cpu
    use_gpu = setting.uses_gpu
    if not use_cpu and not use_gpu:
        raise ValueError("at least one device must be active")

    _verify_legality(cpu_info, gpu_kernel if use_gpu else None, args,
                     ndrange, dop_gpu_mod, dop_gpu_alloc)

    cpu_executor = (
        make_executor(cpu_info, args, ndrange, backend=backend)
        if use_cpu else None
    )
    gpu_executor = None
    if use_gpu:
        gpu_args = dict(args)
        gpu_args[MOD_PARAM] = dop_gpu_mod
        gpu_args[ALLOC_PARAM] = dop_gpu_alloc
        gpu_executor = make_executor(
            gpu_kernel.info, gpu_args, ndrange, backend=backend)

    chunk = max(1, num_wgs // max(1, chunk_divisor)) if use_gpu else 0
    pulls = cpu_pulls_per_round
    if pulls is None:
        pulls = max(1, setting.cpu_threads) * max(1, chunk // 2)

    traced = tracer.enabled
    with tracer.span(
        "schedule.run_dynamic", "schedule",
        kernel=cpu_info.kernel.name, num_work_groups=num_wgs,
        cpu_threads=setting.cpu_threads, gpu_fraction=setting.gpu_fraction,
        chunk_size=chunk,
    ) if traced else NULL_SPAN:
        if not use_gpu:
            # CPU-only launch: no other device shares the worklist, so
            # the pull loop degenerates to "claim everything once" — run
            # the whole NDRange as one batch, which pays the executor's
            # per-call overhead (output snapshot, lane setup) once
            # instead of once per work-group.
            worklist.fetch_add(num_wgs)
            cpu_executor.run(
                [ndrange.group_from_linear(g) for g in range(num_wgs)])
            trace.cpu_groups.extend(range(num_wgs))
            if traced:
                tracer.instant("schedule.cpu_pull", "schedule",
                               groups=trace.cpu_groups)
            return trace
        while not worklist.exhausted:
            if use_gpu:
                start = worklist.fetch_add(chunk)
                take = min(chunk, num_wgs - start)
                if take > 0:
                    group_ids = [ndrange.group_from_linear(g) for g in range(start, start + take)]
                    gpu_executor.run(group_ids)
                    trace.gpu_groups.extend(range(start, start + take))
                    trace.gpu_chunks += 1
                    if traced:
                        tracer.instant("schedule.gpu_chunk", "schedule",
                                       start=start, count=take,
                                       chunk=trace.gpu_chunks - 1)
            if use_cpu:
                pulled_from = len(trace.cpu_groups)
                for _ in range(pulls if use_gpu else num_wgs):
                    if worklist.exhausted:
                        break
                    group = worklist.fetch_add(1)
                    if group >= num_wgs:
                        break
                    cpu_executor.run_group(ndrange.group_from_linear(group))
                    trace.cpu_groups.append(group)
                if traced and len(trace.cpu_groups) > pulled_from:
                    tracer.instant("schedule.cpu_pull", "schedule",
                                   groups=trace.cpu_groups[pulled_from:])

    return trace


def run_dynamic_pull(
    cpu_info: KernelInfo,
    gpu_kernel: MalleableKernel,
    args: dict[str, Any],
    ndrange: NDRange,
    setting: DopSetting,
    dop_gpu_mod: int = 1,
    dop_gpu_alloc: int = 1,
    gpu_claims_per_round: int = 2,
    backend: str | None = None,
) -> ScheduleTrace:
    """Fully pull-based variant (future-work extension, §7).

    On platforms with CPU–GPU global atomics both devices claim
    work-groups from the same worklist one (or a few) at a time; there is
    no chunk barrier.  Functionally every work-group still executes
    exactly once.
    """
    num_wgs = ndrange.total_groups
    worklist = AtomicWorklist(num_wgs)
    trace = ScheduleTrace()
    use_cpu = setting.uses_cpu
    use_gpu = setting.uses_gpu
    if not use_cpu and not use_gpu:
        raise ValueError("at least one device must be active")
    cpu_executor = (
        make_executor(cpu_info, args, ndrange, backend=backend)
        if use_cpu else None
    )
    gpu_executor = None
    if use_gpu:
        gpu_args = dict(args)
        gpu_args[MOD_PARAM] = dop_gpu_mod
        gpu_args[ALLOC_PARAM] = dop_gpu_alloc
        gpu_executor = make_executor(
            gpu_kernel.info, gpu_args, ndrange, backend=backend)

    traced = tracer.enabled
    with tracer.span(
        "schedule.run_dynamic_pull", "schedule",
        kernel=cpu_info.kernel.name, num_work_groups=num_wgs,
        cpu_threads=setting.cpu_threads, gpu_fraction=setting.gpu_fraction,
        gpu_claims_per_round=gpu_claims_per_round,
    ) if traced else NULL_SPAN:
        while not worklist.exhausted:
            if use_gpu:
                claimed_from = len(trace.gpu_groups)
                for _ in range(gpu_claims_per_round):
                    if worklist.exhausted:
                        break
                    group = worklist.fetch_add(1)
                    gpu_executor.run_group(ndrange.group_from_linear(group))
                    trace.gpu_groups.append(group)
                trace.gpu_chunks += 1
                if traced:
                    tracer.instant("schedule.gpu_pull", "schedule",
                                   groups=trace.gpu_groups[claimed_from:])
            if use_cpu:
                pulled_from = len(trace.cpu_groups)
                for _ in range(max(1, setting.cpu_threads) if use_gpu else num_wgs):
                    if worklist.exhausted:
                        break
                    group = worklist.fetch_add(1)
                    cpu_executor.run_group(ndrange.group_from_linear(group))
                    trace.cpu_groups.append(group)
                if traced and len(trace.cpu_groups) > pulled_from:
                    tracer.instant("schedule.cpu_pull", "schedule",
                                   groups=trace.cpu_groups[pulled_from:])
    return trace


def run_static(
    cpu_info: KernelInfo,
    gpu_kernel: MalleableKernel,
    args: dict[str, Any],
    ndrange: NDRange,
    setting: DopSetting,
    cpu_share: float,
    dop_gpu_mod: int = 1,
    dop_gpu_alloc: int = 1,
    backend: str | None = None,
) -> ScheduleTrace:
    """Execute with an a-priori static split (Figure 9's STATIC baseline)."""
    if not 0.0 <= cpu_share <= 1.0:
        raise ValueError("cpu_share must be in [0, 1]")
    num_wgs = ndrange.total_groups
    cpu_wgs = round(cpu_share * num_wgs) if setting.uses_cpu else 0
    if not setting.uses_gpu:
        cpu_wgs = num_wgs
    trace = ScheduleTrace()
    traced = tracer.enabled
    with tracer.span(
        "schedule.run_static", "schedule",
        kernel=cpu_info.kernel.name, num_work_groups=num_wgs,
        cpu_threads=setting.cpu_threads, gpu_fraction=setting.gpu_fraction,
        cpu_share=cpu_share,
    ) if traced else NULL_SPAN:
        if cpu_wgs > 0:
            executor = make_executor(cpu_info, args, ndrange, backend=backend)
            executor.run(ndrange.group_from_linear(g) for g in range(cpu_wgs))
            trace.cpu_groups.extend(range(cpu_wgs))
            if traced:
                tracer.instant("schedule.static_cpu", "schedule",
                               start=0, count=cpu_wgs)
        if cpu_wgs < num_wgs:
            gpu_args = dict(args)
            gpu_args[MOD_PARAM] = dop_gpu_mod
            gpu_args[ALLOC_PARAM] = dop_gpu_alloc
            executor = make_executor(gpu_kernel.info, gpu_args, ndrange,
                                     backend=backend)
            executor.run(ndrange.group_from_linear(g) for g in range(cpu_wgs, num_wgs))
            trace.gpu_groups.extend(range(cpu_wgs, num_wgs))
            trace.gpu_chunks = 1
            if traced:
                tracer.instant("schedule.static_gpu", "schedule",
                               start=cpu_wgs, count=num_wgs - cpu_wgs)
    return trace
