"""Parallel, fault-tolerant dataset collection with sharded caching.

The Table-4 corpus — (1,224 synthetic + 14 real) workloads x 44 DoP
configurations — is embarrassingly parallel: every workload's sweep is an
independent pure function of (kernel, launch geometry, platform).  This
module fans the per-workload measurements out over a
``concurrent.futures.ProcessPoolExecutor`` and replaces the old monolithic
``.npz`` cache with a content-addressed shard store:

``<cache_dir>/shards/<platform>/<shard-hash>.npz``
    One workload's measurements (static features, runtime features, and the
    44 simulated times).  The hash covers the kernel source, launch
    geometry, scalar arguments, the full platform description, the noise
    level, and a schema version — a stale or foreign shard can never be
    mistaken for a current one.

``<cache_dir>/dataset-<platform>-<fingerprint>.manifest.json``
    The dataset-level index: the ordered workload keys, their shard hashes,
    and collection statistics.  Purely informational — shard reads are
    self-validating — so a corrupt manifest is discarded and rewritten.

Robustness guarantees:

* every write is **atomic** — data goes to a temp file in the destination
  directory first, then ``os.replace`` — so a crash mid-write can never
  leave a partial shard behind;
* every read is **corruption-safe** — ``BadZipFile``, truncation, missing
  keys, and shape/value mismatches are logged, the bad file is discarded,
  and only the affected shards are re-collected;
* collection is **resumable** — shards are written as results arrive, so an
  interrupted run resumes from the shards already on disk.

Legacy monolithic ``dataset-<platform>-<fingerprint>.npz`` files (the
pre-shard cache format) are still honoured on read when intact, and treated
as a cache miss (removed, re-collected) when corrupt.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence
from zipfile import BadZipFile

import numpy as np

from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.platforms import Platform
from ..workloads.registry import Workload

log = logging.getLogger("repro.collect")

#: Bump when the shard file layout or its semantic content changes.
SHARD_SCHEMA_VERSION = 1

#: Exceptions that mean "this cache file is unreadable", not "bug".
CACHE_READ_ERRORS = (OSError, BadZipFile, EOFError, KeyError, ValueError)

#: Progress callback: (done, total, workload_key).
ProgressFn = Callable[[int, int, str], None]


class DatasetCacheError(RuntimeError):
    """A dataset cache file exists but cannot be read back."""

    def __init__(self, path: Path, cause: BaseException):
        super().__init__(f"unreadable dataset cache {path}: {cause!r}")
        self.path = Path(path)
        self.cause = cause


def default_jobs() -> int:
    """Worker-count default: ``DOPIA_JOBS`` env override, else cpu_count."""
    env = os.environ.get("DOPIA_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Pickle-safe workload description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """The measurement-relevant, pickle-safe subset of a :class:`Workload`.

    ``Workload`` itself carries a ``buffer_builder`` closure and therefore
    cannot cross a process boundary; measurement only needs the kernel text
    and launch geometry, which this spec captures exactly.
    """

    key: str
    source: str
    kernel_name: str
    global_size: tuple[int, ...]
    local_size: tuple[int, ...]
    scalar_args: tuple[tuple[str, float], ...]
    irregular_trip_hint: Optional[float]

    @staticmethod
    def from_workload(workload: Workload) -> "WorkloadSpec":
        return WorkloadSpec(
            key=workload.key,
            source=workload.source,
            kernel_name=workload.kernel_name,
            global_size=tuple(workload.global_size),
            local_size=tuple(workload.local_size),
            scalar_args=tuple(sorted(workload.scalar_args.items())),
            irregular_trip_hint=workload.irregular_trip_hint,
        )

    def to_workload(self) -> Workload:
        return Workload(
            key=self.key,
            source=self.source,
            kernel_name=self.kernel_name,
            global_size=self.global_size,
            local_size=self.local_size,
            scalar_args=dict(self.scalar_args),
            irregular_trip_hint=self.irregular_trip_hint,
        )


def shard_fingerprint(
    spec: WorkloadSpec, platform: Platform, sigma: float | None = None
) -> str:
    """Content address of one workload's shard on one platform."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in (
        SHARD_SCHEMA_VERSION,
        platform.name,
        repr(platform),
        spec.key,
        spec.kernel_name,
        spec.source,
        spec.global_size,
        spec.local_size,
        spec.scalar_args,
        spec.irregular_trip_hint,
        sigma,
    ):
        hasher.update(repr(part).encode())
        hasher.update(b"\x1f")
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Collection statistics
# ---------------------------------------------------------------------------


@dataclass
class CollectionStats:
    """Instrumentation of one :func:`collect_dataset_with_stats` call."""

    platform: str = ""
    n_workloads: int = 0
    n_configs: int = 0
    jobs: int = 1
    shard_hits: int = 0
    shard_misses: int = 0
    shards_corrupt: int = 0       #: unreadable shards discarded and redone
    legacy_hit: bool = False      #: served from a pre-shard monolithic file
    read_seconds: float = 0.0     #: cache probe + shard load phase
    collect_seconds: float = 0.0  #: simulation (the parallel phase)
    write_seconds: float = 0.0    #: shard + manifest persistence
    total_seconds: float = 0.0

    def summary(self) -> str:
        source = "legacy cache" if self.legacy_hit else (
            f"{self.shard_hits} shard hits, {self.shard_misses} collected"
            + (f" ({self.shards_corrupt} corrupt discarded)" if self.shards_corrupt else "")
        )
        return (
            f"{self.platform}: {self.n_workloads} workloads x {self.n_configs} configs"
            f" | {source} | jobs={self.jobs}"
            f" | read {self.read_seconds:.2f}s, collect {self.collect_seconds:.2f}s,"
            f" write {self.write_seconds:.2f}s, total {self.total_seconds:.2f}s"
        )


# ---------------------------------------------------------------------------
# Atomic, corruption-safe shard I/O
# ---------------------------------------------------------------------------


def _atomic_write_npz(path: Path, arrays: dict) -> None:
    """Write an ``.npz`` so that ``path`` is either absent or complete."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".npz")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _discard(path: Path, reason: str) -> None:
    log.warning("discarding unusable cache file %s (%s)", path, reason)
    try:
        path.unlink(missing_ok=True)
    except OSError:  # pragma: no cover - unlink raced or read-only cache
        pass


def _write_shard(
    path: Path,
    key: str,
    static: np.ndarray,
    runtime: np.ndarray,
    times: np.ndarray,
) -> None:
    _atomic_write_npz(
        path,
        {
            "schema": np.int64(SHARD_SCHEMA_VERSION),
            "key": np.array(key),
            "static": static,
            "runtime": runtime,
            "times": times,
        },
    )


def _read_shard(
    path: Path, key: str, n_configs: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Load one shard; ``None`` (never an exception) when missing or bad."""
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["schema"]) != SHARD_SCHEMA_VERSION:
                _discard(path, f"schema {int(data['schema'])}")
                return None
            if str(data["key"]) != key:
                _discard(path, f"key mismatch: {data['key']!r}")
                return None
            static = np.asarray(data["static"], dtype=np.float64)
            runtime = np.asarray(data["runtime"], dtype=np.float64)
            times = np.asarray(data["times"], dtype=np.float64)
    except CACHE_READ_ERRORS as error:
        _discard(path, repr(error))
        return None
    if static.shape != (6,) or runtime.shape != (3,) or times.shape != (n_configs,):
        _discard(path, f"shapes {static.shape}/{runtime.shape}/{times.shape}")
        return None
    if not (np.isfinite(times).all() and (times > 0).all()):
        _discard(path, "non-finite or non-positive times")
        return None
    return static, runtime, times


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclass
class Manifest:
    """Dataset-level index of the shard store (informational)."""

    version: int
    platform: str
    fingerprint: str
    n_configs: int
    entries: list[dict]  #: [{"key": ..., "shard": <hash>}] in dataset order
    stats: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=1)


def read_manifest(path: Path) -> Manifest | None:
    """Parse a manifest; ``None`` (and discard) when missing or corrupt."""
    if not path.exists():
        return None
    try:
        raw = json.loads(path.read_text())
        manifest = Manifest(
            version=int(raw["version"]),
            platform=str(raw["platform"]),
            fingerprint=str(raw["fingerprint"]),
            n_configs=int(raw["n_configs"]),
            entries=[
                {"key": str(e["key"]), "shard": str(e["shard"])} for e in raw["entries"]
            ],
            stats=dict(raw.get("stats", {})),
        )
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        _discard(path, repr(error))
        return None
    return manifest


# ---------------------------------------------------------------------------
# The measurement worker (top-level: must be picklable for process pools)
# ---------------------------------------------------------------------------


def _collect_worker(
    task: tuple[int, WorkloadSpec, Platform, float | None],
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Measure one workload: static features, runtime features, 44 times.

    Pure function of its arguments (the simulator's noise is seeded by the
    workload key), so parallel and serial collection agree bit-for-bit.
    """
    from ..analysis.features import extract_static_features
    from .training import measure_workload

    index, spec, platform, sigma = task
    workload = spec.to_workload()
    features = extract_static_features(workload.kernel_info())
    static = np.array(features.as_tuple(), dtype=np.float64)
    runtime = np.array(
        [workload.work_dim, workload.total_work_items, workload.work_group_items],
        dtype=np.float64,
    )
    times = measure_workload(workload, platform, sigma=sigma)
    return index, static, runtime, times


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


def shard_store_dir(cache_dir: Path, platform_name: str) -> Path:
    return Path(cache_dir) / "shards" / platform_name


def manifest_path(cache_dir: Path, platform_name: str, fingerprint: str) -> Path:
    return Path(cache_dir) / f"dataset-{platform_name}-{fingerprint}.manifest.json"


def legacy_dataset_path(cache_dir: Path, platform_name: str, fingerprint: str) -> Path:
    return Path(cache_dir) / f"dataset-{platform_name}-{fingerprint}.npz"


def collect_dataset_with_stats(
    workloads: Sequence[Workload],
    platform: Platform,
    *,
    cache: bool = True,
    cache_dir: Path | None = None,
    jobs: int | None = None,
    sigma: float | None = None,
    progress: ProgressFn | None = None,
):
    """Build (or load) the dataset for ``workloads``; return it with stats.

    ``jobs`` is the worker-process count: ``None`` or 1 collects serially
    in-process; larger values fan the cache misses out over a process pool.
    The result is bit-identical for every ``jobs`` value.
    """
    # Imported here (not at module top) so ``training`` can re-export this
    # pipeline without an import cycle.
    from .dopconfig import config_space, config_utils_matrix
    from .training import DopDataset, _workloads_fingerprint, default_cache_dir

    t_start = time.perf_counter()
    jobs = max(1, jobs if jobs is not None else 1)
    configs = config_space(platform)
    n, n_configs = len(workloads), len(configs)
    stats = CollectionStats(
        platform=platform.name, n_workloads=n, n_configs=n_configs, jobs=jobs
    )
    directory = Path(cache_dir or default_cache_dir())
    fingerprint = _workloads_fingerprint(workloads, platform)

    # -- legacy monolithic cache (pre-shard format) ------------------------
    if cache:
        legacy = legacy_dataset_path(directory, platform.name, fingerprint)
        if legacy.exists():
            dataset = DopDataset.try_load(legacy)
            if dataset is not None and dataset.n_workloads == n:
                stats.legacy_hit = True
                stats.shard_hits = n
                stats.read_seconds = stats.total_seconds = time.perf_counter() - t_start
                _trace_collection(stats)
                return dataset, stats
            _discard(legacy, "corrupt or stale legacy dataset")

    specs = [WorkloadSpec.from_workload(w) for w in workloads]
    hashes = [shard_fingerprint(spec, platform, sigma) for spec in specs]
    store = shard_store_dir(directory, platform.name)

    static = np.empty((n, 6), dtype=np.float64)
    runtime = np.empty((n, 3), dtype=np.float64)
    times = np.empty((n, n_configs), dtype=np.float64)

    # -- phase 1: probe the shard store ------------------------------------
    traced = tracer.enabled
    t_read = time.perf_counter()
    missing: list[int] = []
    with tracer.span("collect.probe", "collect", platform=platform.name,
                     workloads=n, cached=cache) if traced else NULL_SPAN:
        if cache:
            for index, (spec, digest) in enumerate(zip(specs, hashes)):
                shard_file = store / f"{digest}.npz"
                existed = shard_file.exists()
                shard = _read_shard(shard_file, spec.key, n_configs)
                if shard is None:
                    if existed:
                        stats.shards_corrupt += 1
                    missing.append(index)
                    continue
                static[index], runtime[index], times[index] = shard
                stats.shard_hits += 1
        else:
            missing = list(range(n))
    stats.shard_misses = len(missing)
    stats.read_seconds = time.perf_counter() - t_read

    # -- phase 2: measure the misses (the parallel phase) ------------------
    t_collect = time.perf_counter()
    write_seconds = 0.0

    def store_result(
        done: int, result: tuple[int, np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        nonlocal write_seconds
        index, shard_static, shard_runtime, shard_times = result
        static[index], runtime[index], times[index] = (
            shard_static, shard_runtime, shard_times,
        )
        if cache:
            t_write = time.perf_counter()
            _write_shard(
                store / f"{hashes[index]}.npz",
                specs[index].key, shard_static, shard_runtime, shard_times,
            )
            write_seconds += time.perf_counter() - t_write
        if progress is not None:
            progress(done, len(missing), specs[index].key)

    tasks = [(index, specs[index], platform, sigma) for index in missing]
    with tracer.span("collect.measure", "collect", platform=platform.name,
                     misses=len(tasks), jobs=jobs) if traced else NULL_SPAN:
        if len(tasks) > 1 and jobs > 1:
            workers = min(jobs, len(tasks))
            chunksize = max(1, len(tasks) // (workers * 8))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for done, result in enumerate(
                    pool.map(_collect_worker, tasks, chunksize=chunksize), start=1
                ):
                    store_result(done, result)
        else:
            for done, task in enumerate(tasks, start=1):
                store_result(done, _collect_worker(task))
    stats.collect_seconds = time.perf_counter() - t_collect - write_seconds

    dataset = DopDataset(
        platform_name=platform.name,
        workload_keys=[spec.key for spec in specs],
        static_features=static,
        runtime_features=runtime,
        times=times,
        config_utils=config_utils_matrix(configs),
    )

    # -- phase 3: publish the manifest -------------------------------------
    if cache:
        t_write = time.perf_counter()
        manifest = Manifest(
            version=SHARD_SCHEMA_VERSION,
            platform=platform.name,
            fingerprint=fingerprint,
            n_configs=n_configs,
            entries=[
                {"key": spec.key, "shard": digest}
                for spec, digest in zip(specs, hashes)
            ],
            stats={
                "shard_hits": stats.shard_hits,
                "shard_misses": stats.shard_misses,
                "shards_corrupt": stats.shards_corrupt,
                "jobs": stats.jobs,
            },
        )
        _atomic_write_text(
            manifest_path(directory, platform.name, fingerprint), manifest.to_json()
        )
        write_seconds += time.perf_counter() - t_write
    stats.write_seconds = write_seconds
    stats.total_seconds = time.perf_counter() - t_start
    if stats.shards_corrupt:
        log.warning(
            "%s: re-collected %d corrupt shard(s)", platform.name, stats.shards_corrupt
        )
    _trace_collection(stats)
    return dataset, stats


def _trace_collection(stats: CollectionStats) -> None:
    """Mirror one collection's statistics into the tracer (when enabled)."""
    if not tracer.enabled:
        return
    tracer.instant(
        "collect.done", "collect",
        platform=stats.platform,
        n_workloads=stats.n_workloads, n_configs=stats.n_configs,
        jobs=stats.jobs, shard_hits=stats.shard_hits,
        shard_misses=stats.shard_misses, shards_corrupt=stats.shards_corrupt,
        legacy_hit=stats.legacy_hit,
        read_seconds=stats.read_seconds, collect_seconds=stats.collect_seconds,
        write_seconds=stats.write_seconds, total_seconds=stats.total_seconds,
    )
    tracer.counter("collect.shard_hits", stats.shard_hits)
    tracer.counter("collect.shard_misses", stats.shard_misses)


# ---------------------------------------------------------------------------
# Cache maintenance helpers (used by ``dopia cache``)
# ---------------------------------------------------------------------------


def cache_contents(cache_dir: Path) -> dict:
    """Inventory of a cache directory: manifests, shards, bytes on disk."""
    directory = Path(cache_dir)
    manifests = sorted(directory.glob("dataset-*.manifest.json"))
    legacy = sorted(directory.glob("dataset-*.npz"))
    shards = sorted(directory.glob("shards/*/*.npz"))
    return {
        "dir": directory,
        "manifests": manifests,
        "legacy": legacy,
        "shards": shards,
        "bytes": sum(p.stat().st_size for p in manifests + legacy + shards if p.exists()),
    }


def clear_cache(cache_dir: Path) -> int:
    """Delete every cache artefact under ``cache_dir``; return files removed."""
    contents = cache_contents(cache_dir)
    removed = 0
    for path in contents["manifests"] + contents["legacy"] + contents["shards"]:
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - raced deletion
            pass
    store_root = Path(cache_dir) / "shards"
    if store_root.exists():
        for sub in sorted(store_root.glob("*")):
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        if not any(store_root.iterdir()):
            store_root.rmdir()
    return removed
