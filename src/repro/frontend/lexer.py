"""Tokenizer for the OpenCL-C subset used by the Dopia workloads.

The lexer is a single-pass scanner producing a flat list of :class:`Token`
objects.  It understands:

* line (``//``) and block (``/* */``) comments,
* preprocessor-style lines (``#define`` etc.) which are skipped — the paper
  kernels do not rely on macros, but inputs copied from Polybench sources
  occasionally carry guards,
* integer literals (decimal and hex, with optional ``u``/``U``/``l``/``L``
  suffixes), floating-point literals (with optional ``f``/``F`` suffix),
* identifiers and the OpenCL-C keywords used in kernels,
* all C operators needed by expressions in the paper's kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexerError, SourceLocation


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LITERAL = "int"
    FLOAT_LITERAL = "float"
    PUNCT = "punct"
    EOF = "eof"


#: Keywords recognised by the parser.  Address-space and access qualifiers are
#: included so parameter declarations such as ``__global const float *A`` lex
#: into keyword tokens rather than plain identifiers.
KEYWORDS = frozenset(
    {
        "void", "char", "uchar", "short", "ushort", "int", "uint", "long",
        "ulong", "float", "double", "bool", "size_t", "ptrdiff_t",
        "signed", "unsigned",
        "__kernel", "kernel",
        "__global", "global", "__local", "local", "__constant", "constant",
        "__private", "private",
        "const", "volatile", "restrict", "static", "inline",
        "if", "else", "for", "while", "do", "return", "break", "continue",
        "struct", "typedef",
        "true", "false",
    }
)

#: Multi-character operators, longest first so maximal munch works by
#: scanning this tuple in order.
_PUNCTUATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the source spelling; for literals the parser converts it
    to a Python number on demand so the token stream stays uniform.
    """

    kind: TokenKind
    value: str
    location: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.location})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Scans OpenCL-C source text into tokens.

    The class keeps explicit line/column counters instead of using ``re``
    so diagnostics point at the exact offending character.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers -------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    # -- skipping -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments, and preprocessor lines."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError("unterminated block comment", start)
            elif ch == "#" and self.column == 1:
                # Preprocessor directive: skip to end of (logical) line,
                # honouring backslash continuations.
                while self.pos < len(self.source):
                    if self._peek() == "\\" and self._peek(1) == "\n":
                        self._advance(2)
                        continue
                    if self._peek() == "\n":
                        break
                    self._advance()
            else:
                return

    # -- token scanners -----------------------------------------------------

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            elif self._peek() == ".":
                is_float = True
                self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) and self._peek(1) in "+-"
                    and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # literal suffixes (note: membership tests must exclude the empty
        # EOF sentinel — `"" in "uUlL"` is True in Python)
        if is_float:
            if self._peek() and self._peek() in "fF":
                self._advance()
        else:
            while self._peek() and self._peek() in "uUlL":
                self._advance()
            if self._peek() and self._peek() in "fF":
                is_float = True
                self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, loc)

    def _scan_ident(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek() and _is_ident_char(self._peek()):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def _scan_punct(self) -> Token:
        loc = self._loc()
        for op in _PUNCTUATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.PUNCT, op, loc)
        raise LexerError(f"unexpected character {self._peek()!r}", loc)

    # -- public API ---------------------------------------------------------

    def next_token(self) -> Token:
        """Return the next token, or an EOF token at end of input."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self._loc())
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number()
        if _is_ident_start(ch):
            return self._scan_ident()
        return self._scan_punct()

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source).tokenize()
