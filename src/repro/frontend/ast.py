"""AST node definitions for the OpenCL-C subset.

Nodes are plain dataclasses.  Every node stores its :class:`SourceLocation`
so later passes (feature extraction, malleable-code generation) can report
precise diagnostics.  The hierarchy intentionally mirrors a C AST:

* :class:`Expr` subclasses for expressions,
* :class:`Stmt` subclasses for statements,
* :class:`FunctionDef` / :class:`TranslationUnit` at the top level.

A small visitor (:class:`NodeVisitor`) and a generic ``walk`` iterator are
provided; the analysis passes in :mod:`repro.analysis` are built on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

from .errors import SourceLocation

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: OpenCL-C scalar type names the frontend understands, mapped to whether the
#: type is floating point.  ``size_t`` is treated as an unsigned integer.
SCALAR_TYPES = {
    "void": None,
    "bool": False,
    "char": False,
    "uchar": False,
    "short": False,
    "ushort": False,
    "int": False,
    "uint": False,
    "long": False,
    "ulong": False,
    "size_t": False,
    "ptrdiff_t": False,
    "float": True,
    "double": True,
}

#: Address spaces for pointer parameters and local declarations.
ADDRESS_SPACES = ("global", "local", "constant", "private")


@dataclass(frozen=True)
class CType:
    """A (possibly pointer) OpenCL-C type with an address space.

    ``name`` is the scalar base type (``float``, ``int``, ...); ``pointer``
    marks one level of indirection (the paper kernels never use multi-level
    pointers — multi-dimensional data is flattened, as is idiomatic in
    OpenCL).  ``address_space`` defaults to ``private`` for locals.
    """

    name: str
    pointer: bool = False
    address_space: str = "private"
    const: bool = False

    @property
    def is_float(self) -> bool:
        """True if the scalar base type is a floating-point type."""
        return bool(SCALAR_TYPES.get(self.name))

    @property
    def is_integer(self) -> bool:
        """True if the scalar base type is an integer type."""
        return SCALAR_TYPES.get(self.name) is False

    def __str__(self) -> str:
        parts = []
        if self.address_space != "private":
            parts.append(f"__{self.address_space}")
        if self.const:
            parts.append("const")
        parts.append(self.name)
        text = " ".join(parts)
        return text + "*" if self.pointer else text


# ---------------------------------------------------------------------------
# Base node
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation = field(repr=False)

    def children(self) -> Iterator["Node"]:
        """Yield child nodes in source order (generic, reflection-based)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal over ``node`` and all descendants."""
    yield node
    for child in node.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int
    text: str = ""


@dataclass
class FloatLiteral(Expr):
    value: float
    text: str = ""


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class BinaryOp(Expr):
    """A binary operation such as ``a + b`` or ``a && b``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """A prefix unary operation (``-x``, ``!x``, ``~x``, ``++x``, ``--x``)."""

    op: str
    operand: Expr


@dataclass
class PostfixOp(Expr):
    """A postfix increment/decrement (``x++``, ``x--``)."""

    op: str
    operand: Expr


@dataclass
class Assignment(Expr):
    """An assignment; ``op`` is ``=`` or a compound form such as ``+=``."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise`` operator."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    """A function call.  OpenCL builtins are ordinary calls at this level."""

    name: str
    args: list[Expr]


@dataclass
class Index(Expr):
    """An array subscript ``base[index]``; chains encode ``A[i][j]``."""

    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    """An explicit C-style cast ``(type) operand``."""

    type: CType
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Node):
    """A single declarator within a declaration statement.

    ``array_dims`` holds the constant sizes of ``__local`` or private array
    declarations such as ``__local int worklist[1];``.
    """

    type: CType
    name: str
    array_dims: list[Expr] = field(default_factory=list)
    init: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """A declaration statement (possibly with several declarators)."""

    decls: list[VarDecl]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    body: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """A C for-loop.  ``init`` may be a declaration or an expression statement."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    """A kernel/function parameter."""

    type: CType
    name: str


@dataclass
class FunctionDef(Node):
    """A function definition; ``is_kernel`` marks ``__kernel`` entry points."""

    name: str
    return_type: CType
    params: list[Param]
    body: Block
    is_kernel: bool = False


@dataclass
class TranslationUnit(Node):
    """A parsed source file: an ordered list of function definitions."""

    functions: list[FunctionDef]

    def kernels(self) -> list[FunctionDef]:
        """All ``__kernel`` entry points in the unit."""
        return [f for f in self.functions if f.is_kernel]

    def kernel(self, name: str) -> FunctionDef:
        """Look up a kernel by name; raises ``KeyError`` if absent."""
        for f in self.functions:
            if f.is_kernel and f.name == name:
                return f
        raise KeyError(f"no kernel named {name!r}")


# ---------------------------------------------------------------------------
# Visitor
# ---------------------------------------------------------------------------


class NodeVisitor:
    """Dispatches ``visit_<ClassName>`` methods; falls back to children."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)
