"""Semantic analysis for parsed kernels.

The pass builds a symbol table for a kernel (parameters, locals, ``__local``
arrays), infers an :class:`repro.frontend.ast.CType` for every expression,
and validates that only supported OpenCL builtins are called.  The results
feed both the static feature extraction (which needs to know whether an
arithmetic operation is integer or floating point — Table 1's
``#arith_int`` / ``#arith_float`` split) and the interpreter (which needs
to know buffer element types).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError

#: OpenCL work-item builtins: name -> (number of args, returns size_t).
WORK_ITEM_BUILTINS = {
    "get_global_id": 1,
    "get_local_id": 1,
    "get_group_id": 1,
    "get_global_size": 1,
    "get_local_size": 1,
    "get_num_groups": 1,
    "get_global_offset": 1,
    "get_work_dim": 0,
}

#: Synchronisation / atomic builtins: name -> number of args.
SYNC_BUILTINS = {
    "barrier": 1,
    "mem_fence": 1,
    "atomic_inc": 1,
    "atomic_dec": 1,
    "atomic_add": 2,
    "atomic_sub": 2,
    "atomic_xchg": 2,
    "atomic_min": 2,
    "atomic_max": 2,
    "atomic_cmpxchg": 3,
}

#: Math builtins treated as floating-point "special" operations by the
#: feature extractor (the paper counts special float ops in #arith_float).
MATH_BUILTINS = {
    "sqrt": 1, "rsqrt": 1, "exp": 1, "exp2": 1, "log": 1, "log2": 1,
    "sin": 1, "cos": 1, "tan": 1, "fabs": 1, "floor": 1, "ceil": 1,
    "pow": 2, "fmax": 2, "fmin": 2, "fmod": 2, "hypot": 2, "mad": 3,
    "fma": 3, "clamp": 3,
}

#: Integer builtins.
INT_BUILTINS = {"abs": 1, "min": 2, "max": 2, "mul24": 2, "mad24": 3}

ALL_BUILTINS = (
    set(WORK_ITEM_BUILTINS) | set(SYNC_BUILTINS) | set(MATH_BUILTINS) | set(INT_BUILTINS)
)

_SIZE_T = ast.CType("size_t")
_INT = ast.CType("int")
_FLOAT = ast.CType("float")
_BOOL = ast.CType("bool")


@dataclass
class Symbol:
    """A named entity visible inside the kernel body."""

    name: str
    type: ast.CType
    is_param: bool = False
    is_array: bool = False
    array_dims: tuple[int, ...] = ()


@dataclass
class SymbolTable:
    """A flat map of the kernel's visible names.

    OpenCL-C kernels in this subset use block scoping, but no paper kernel
    shadows a name, so a flat table with scope push/pop for duplicate
    detection is sufficient and keeps lookups O(1) for the interpreter.
    """

    symbols: dict[str, Symbol] = field(default_factory=dict)

    def define(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        return self.symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.symbols


@dataclass
class KernelInfo:
    """The result of semantic analysis for one kernel.

    ``user_functions`` maps names of non-kernel helper functions (from the
    same translation unit) that the kernel may call.

    Attributes
    ----------
    kernel:
        The analysed function definition.
    symbols:
        Symbol table covering parameters and every declaration in the body.
    buffer_params:
        Names of pointer parameters (the kernel's global buffers), in
        declaration order — this is the host-side argument interface.
    scalar_params:
        Names of value parameters, in declaration order.
    expr_types:
        Inferred type for every expression node (by ``id``).
    uses_barrier / uses_atomics:
        Whether the kernel body calls synchronisation builtins; the
        interpreter selects its (cheaper) barrier-free execution strategy
        when possible.
    """

    kernel: ast.FunctionDef
    symbols: SymbolTable
    buffer_params: list[str]
    scalar_params: list[str]
    expr_types: dict[int, ast.CType]
    uses_barrier: bool = False
    uses_atomics: bool = False
    user_functions: dict[str, "KernelInfo"] = field(default_factory=dict)

    def type_of(self, expr: ast.Expr) -> ast.CType:
        """The inferred type of ``expr`` (falls back to ``int``)."""
        return self.expr_types.get(id(expr), _INT)


class _Analyzer(ast.NodeVisitor):
    """Walks a kernel body, populating a :class:`KernelInfo`."""

    def __init__(self, kernel: ast.FunctionDef,
                 user_functions: dict[str, "KernelInfo"] | None = None):
        self.kernel = kernel
        self.symbols = SymbolTable()
        self.expr_types: dict[int, ast.CType] = {}
        self.uses_barrier = False
        self.uses_atomics = False
        self.user_functions = user_functions or {}

    def analyze(self) -> KernelInfo:
        buffer_params: list[str] = []
        scalar_params: list[str] = []
        for param in self.kernel.params:
            self.symbols.define(Symbol(param.name, param.type, is_param=True))
            (buffer_params if param.type.pointer else scalar_params).append(param.name)
        self.visit(self.kernel.body)
        return KernelInfo(
            kernel=self.kernel,
            symbols=self.symbols,
            buffer_params=buffer_params,
            scalar_params=scalar_params,
            expr_types=self.expr_types,
            uses_barrier=self.uses_barrier,
            uses_atomics=self.uses_atomics,
            user_functions=self.user_functions,
        )

    # -- statements -----------------------------------------------------------

    def visit_DeclStmt(self, node: ast.DeclStmt) -> None:
        for decl in node.decls:
            dims: list[int] = []
            for dim in decl.array_dims:
                if not isinstance(dim, ast.IntLiteral):
                    raise SemanticError(
                        f"array dimension of {decl.name!r} must be a constant",
                        decl.location,
                    )
                dims.append(dim.value)
            self.symbols.define(
                Symbol(
                    decl.name,
                    decl.type,
                    is_array=bool(dims) or decl.type.pointer,
                    array_dims=tuple(dims),
                )
            )
            if decl.init is not None:
                self.visit(decl.init)

    # -- expressions ------------------------------------------------------------

    def _set(self, node: ast.Expr, ctype: ast.CType) -> ast.CType:
        self.expr_types[id(node)] = ctype
        return ctype

    def visit_IntLiteral(self, node: ast.IntLiteral) -> ast.CType:
        return self._set(node, _INT)

    def visit_FloatLiteral(self, node: ast.FloatLiteral) -> ast.CType:
        return self._set(node, _FLOAT)

    def visit_Identifier(self, node: ast.Identifier) -> ast.CType:
        symbol = self.symbols.lookup(node.name)
        if symbol is None:
            raise SemanticError(f"use of undeclared identifier {node.name!r}", node.location)
        return self._set(node, symbol.type)

    def visit_BinaryOp(self, node: ast.BinaryOp) -> ast.CType:
        left = self.visit(node.left)
        right = self.visit(node.right)
        if node.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return self._set(node, _BOOL)
        if node.op == ",":
            return self._set(node, right)
        # usual arithmetic conversions, collapsed: float wins over int
        result = left if left.is_float else right if right.is_float else left
        if result.pointer:
            # pointer arithmetic yields a pointer of the same element type
            return self._set(node, result)
        return self._set(node, ast.CType(result.name))

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.CType:
        operand = self.visit(node.operand)
        if node.op == "!":
            return self._set(node, _BOOL)
        if node.op == "*":
            if not operand.pointer:
                raise SemanticError("dereference of non-pointer", node.location)
            return self._set(node, ast.CType(operand.name, address_space=operand.address_space))
        if node.op == "&":
            return self._set(
                node,
                ast.CType(operand.name, pointer=True, address_space=operand.address_space),
            )
        return self._set(node, operand)

    def visit_PostfixOp(self, node: ast.PostfixOp) -> ast.CType:
        return self._set(node, self.visit(node.operand))

    def visit_Assignment(self, node: ast.Assignment) -> ast.CType:
        target = self.visit(node.target)
        self.visit(node.value)
        if not isinstance(node.target, (ast.Identifier, ast.Index, ast.UnaryOp)):
            raise SemanticError("assignment target is not an lvalue", node.location)
        return self._set(node, target)

    def visit_Conditional(self, node: ast.Conditional) -> ast.CType:
        self.visit(node.cond)
        then = self.visit(node.then)
        otherwise = self.visit(node.otherwise)
        result = then if then.is_float else otherwise
        return self._set(node, result)

    def visit_Index(self, node: ast.Index) -> ast.CType:
        base = self.visit(node.base)
        self.visit(node.index)
        if not base.pointer and not self._is_array(node.base):
            raise SemanticError("subscript of non-array value", node.location)
        return self._set(node, ast.CType(base.name, address_space=base.address_space))

    def _is_array(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Identifier):
            symbol = self.symbols.lookup(expr.name)
            return symbol is not None and symbol.is_array
        return isinstance(expr, ast.Index)

    def visit_Cast(self, node: ast.Cast) -> ast.CType:
        self.visit(node.operand)
        return self._set(node, node.type)

    def visit_Call(self, node: ast.Call) -> ast.CType:
        for arg in node.args:
            self.visit(arg)
        name = node.name
        if name in WORK_ITEM_BUILTINS:
            expected = WORK_ITEM_BUILTINS[name]
            if len(node.args) != expected:
                raise SemanticError(
                    f"{name} expects {expected} argument(s), got {len(node.args)}",
                    node.location,
                )
            return self._set(node, _SIZE_T)
        if name in SYNC_BUILTINS:
            if name == "barrier":
                self.uses_barrier = True
            else:
                self.uses_atomics = True
            return self._set(node, _INT)
        if name in MATH_BUILTINS:
            return self._set(node, _FLOAT)
        if name in INT_BUILTINS:
            return self._set(node, _INT)
        if name in self.user_functions:
            callee = self.user_functions[name]
            expected = len(callee.kernel.params)
            if len(node.args) != expected:
                raise SemanticError(
                    f"{name} expects {expected} argument(s), got {len(node.args)}",
                    node.location,
                )
            if callee.uses_barrier:
                self.uses_barrier = True
            if callee.uses_atomics:
                self.uses_atomics = True
            return self._set(node, callee.kernel.return_type)
        raise SemanticError(f"call to unsupported function {name!r}", node.location)


def analyze_kernel(
    kernel: ast.FunctionDef,
    unit: ast.TranslationUnit | None = None,
) -> KernelInfo:
    """Run semantic analysis over ``kernel`` and return its :class:`KernelInfo`.

    If ``unit`` is given, its non-kernel functions become callable helpers;
    they are analysed first (in declaration order — forward references and
    recursion are not part of the supported subset).
    """
    helpers: dict[str, KernelInfo] = {}
    if unit is not None:
        for function in unit.functions:
            if function.is_kernel or function.name == kernel.name:
                continue
            helpers[function.name] = _Analyzer(function, dict(helpers)).analyze()
    return _Analyzer(kernel, helpers).analyze()
