"""Recursive-descent parser for the OpenCL-C subset.

The grammar covers everything the paper's workloads use: kernel function
definitions with address-space-qualified pointer parameters, declarations
(including ``__local`` arrays), the full C statement repertoire (``if``,
``for``, ``while``, ``do``, ``return``, ``break``, ``continue``, blocks),
and C expressions with standard precedence, including assignment operators,
the ternary operator, casts, calls, and chained subscripts.

The parser produces the AST of :mod:`repro.frontend.ast` and performs no
semantic checking; that is the job of :mod:`repro.frontend.semantics`.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import ParserError, SourceLocation
from .lexer import Token, TokenKind, tokenize

#: Binary operator precedence, higher binds tighter (C rules).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

#: Tokens that may begin a type specifier.
_TYPE_KEYWORDS = frozenset(ast.SCALAR_TYPES) | {"signed", "unsigned"}

_QUALIFIER_KEYWORDS = frozenset(
    {
        "__global", "global", "__local", "local", "__constant", "constant",
        "__private", "private", "const", "volatile", "restrict", "static",
        "inline",
    }
)

_ADDRESS_SPACE_MAP = {
    "__global": "global", "global": "global",
    "__local": "local", "local": "local",
    "__constant": "constant", "constant": "constant",
    "__private": "private", "private": "private",
}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.TranslationUnit`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token-stream helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, value: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and token.value == value

    def _accept(self, value: str) -> bool:
        if self._check(value):
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> Token:
        if not self._check(value):
            token = self._peek()
            raise ParserError(
                f"expected {value!r}, found {token.value!r}", token.location
            )
        return self._advance()

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # -- types ---------------------------------------------------------------

    def _at_type(self, offset: int = 0) -> bool:
        """True if the token at ``offset`` can begin a declaration."""
        token = self._peek(offset)
        if token.kind is not TokenKind.KEYWORD:
            return False
        return token.value in _TYPE_KEYWORDS or token.value in _QUALIFIER_KEYWORDS

    def _parse_type(self) -> ast.CType:
        """Parse qualifiers, a scalar type name, and an optional ``*``."""
        address_space = "private"
        const = False
        name: Optional[str] = None
        unsigned = False
        while True:
            token = self._peek()
            if token.kind is not TokenKind.KEYWORD:
                break
            value = token.value
            if value in _ADDRESS_SPACE_MAP:
                address_space = _ADDRESS_SPACE_MAP[value]
                self._advance()
            elif value == "const":
                const = True
                self._advance()
            elif value in ("volatile", "restrict", "static", "inline"):
                self._advance()
            elif value == "unsigned":
                unsigned = True
                self._advance()
            elif value == "signed":
                self._advance()
            elif value in ast.SCALAR_TYPES:
                name = value
                self._advance()
            else:
                break
        if name is None:
            if unsigned:
                name = "uint"
            else:
                token = self._peek()
                raise ParserError(f"expected type name, found {token.value!r}", token.location)
        elif unsigned and name in ("int", "char", "short", "long"):
            name = "u" + name
        pointer = False
        if self._accept("*"):
            pointer = True
            # allow trailing qualifiers after the star, e.g. `float * restrict A`
            while self._peek().kind is TokenKind.KEYWORD and self._peek().value in (
                "const", "volatile", "restrict",
            ):
                self._advance()
        return ast.CType(name=name, pointer=pointer, address_space=address_space, const=const)

    # -- top level -----------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        loc = self._loc()
        functions: list[ast.FunctionDef] = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self._parse_function())
        return ast.TranslationUnit(location=loc, functions=functions)

    def _parse_function(self) -> ast.FunctionDef:
        loc = self._loc()
        is_kernel = False
        while self._peek().kind is TokenKind.KEYWORD and self._peek().value in (
            "__kernel", "kernel",
        ):
            is_kernel = True
            self._advance()
        return_type = self._parse_type()
        name_token = self._advance()
        if name_token.kind not in (TokenKind.IDENT, TokenKind.INT_LITERAL):
            raise ParserError(
                f"expected function name, found {name_token.value!r}", name_token.location
            )
        name = name_token.value
        # Kernel names in the paper (e.g. `2mat3d`) start with a digit; allow
        # an INT followed immediately by an identifier-ish token to merge.
        if name_token.kind is TokenKind.INT_LITERAL and self._peek().kind is TokenKind.IDENT:
            name += self._advance().value
        self._expect("(")
        params: list[ast.Param] = []
        if not self._check(")"):
            while True:
                ploc = self._loc()
                ptype = self._parse_type()
                pname = self._expect_ident()
                params.append(ast.Param(location=ploc, type=ptype, name=pname))
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._parse_block()
        return ast.FunctionDef(
            location=loc,
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            is_kernel=is_kernel,
        )

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise ParserError(f"expected identifier, found {token.value!r}", token.location)
        return token.value

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        loc = self._loc()
        self._expect("{")
        body: list[ast.Stmt] = []
        while not self._check("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParserError("unterminated block", loc)
            body.append(self._parse_statement())
        self._expect("}")
        return ast.Block(location=loc, body=body)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value == "{":
            return self._parse_block()
        if token.kind is TokenKind.KEYWORD:
            if token.value == "if":
                return self._parse_if()
            if token.value == "for":
                return self._parse_for()
            if token.value == "while":
                return self._parse_while()
            if token.value == "do":
                return self._parse_do_while()
            if token.value == "return":
                loc = self._advance().location
                value = None if self._check(";") else self._parse_expression()
                self._expect(";")
                return ast.Return(location=loc, value=value)
            if token.value == "break":
                loc = self._advance().location
                self._expect(";")
                return ast.Break(location=loc)
            if token.value == "continue":
                loc = self._advance().location
                self._expect(";")
                return ast.Continue(location=loc)
            if self._at_type():
                return self._parse_declaration()
        if token.kind is TokenKind.PUNCT and token.value == ";":
            loc = self._advance().location
            return ast.Block(location=loc, body=[])
        loc = token.location
        expr = self._parse_expression()
        self._expect(";")
        return ast.ExprStmt(location=loc, expr=expr)

    def _parse_declaration(self) -> ast.DeclStmt:
        loc = self._loc()
        base = self._parse_type()
        decls: list[ast.VarDecl] = []
        while True:
            dloc = self._loc()
            dtype = base
            if self._accept("*"):
                dtype = ast.CType(
                    name=base.name, pointer=True,
                    address_space=base.address_space, const=base.const,
                )
            name = self._expect_ident()
            dims: list[ast.Expr] = []
            while self._accept("["):
                dims.append(self._parse_expression())
                self._expect("]")
            init = None
            if self._accept("="):
                init = self._parse_assignment()
            decls.append(
                ast.VarDecl(location=dloc, type=dtype, name=name, array_dims=dims, init=init)
            )
            if not self._accept(","):
                break
        self._expect(";")
        return ast.DeclStmt(location=loc, decls=decls)

    def _parse_if(self) -> ast.If:
        loc = self._expect("if").location
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then = self._parse_statement()
        otherwise = self._parse_statement() if self._accept("else") else None
        return ast.If(location=loc, cond=cond, then=then, otherwise=otherwise)

    def _parse_for(self) -> ast.For:
        loc = self._expect("for").location
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            if self._at_type():
                init = self._parse_declaration()  # consumes ';'
            else:
                iloc = self._loc()
                expr = self._parse_expression()
                self._expect(";")
                init = ast.ExprStmt(location=iloc, expr=expr)
        else:
            self._expect(";")
        cond = None if self._check(";") else self._parse_expression()
        self._expect(";")
        step = None if self._check(")") else self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.For(location=loc, init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        loc = self._expect("while").location
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.While(location=loc, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self._expect("do").location
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(location=loc, body=body, cond=cond)

    # -- expressions -----------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        """Full expression, including the comma operator (left-assoc)."""
        expr = self._parse_assignment()
        while self._check(","):
            loc = self._advance().location
            right = self._parse_assignment()
            expr = ast.BinaryOp(location=loc, op=",", left=expr, right=right)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assignment(location=token.location, op=token.value, target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._check("?"):
            loc = self._advance().location
            then = self._parse_assignment()
            self._expect(":")
            otherwise = self._parse_assignment()
            return ast.Conditional(location=loc, cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(location=token.location, op=token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT:
            if token.value in ("-", "+", "!", "~", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                if token.value == "+":
                    return operand
                return ast.UnaryOp(location=token.location, op=token.value, operand=operand)
            if token.value in ("++", "--"):
                self._advance()
                operand = self._parse_unary()
                return ast.UnaryOp(location=token.location, op=token.value, operand=operand)
            if token.value == "(" and self._at_type(1):
                # C-style cast: '(' type ')' unary
                loc = self._advance().location
                ctype = self._parse_type()
                self._expect(")")
                operand = self._parse_unary()
                return ast.Cast(location=loc, type=ctype, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return expr
            if token.value == "[":
                self._advance()
                index = self._parse_expression()
                self._expect("]")
                expr = ast.Index(location=token.location, base=expr, index=index)
            elif token.value == "(" and isinstance(expr, ast.Identifier):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(","):
                            break
                self._expect(")")
                expr = ast.Call(location=token.location, name=expr.name, args=args)
            elif token.value in ("++", "--"):
                self._advance()
                expr = ast.PostfixOp(location=token.location, op=token.value, operand=expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind is TokenKind.INT_LITERAL:
            text = token.value.rstrip("uUlL")
            value = int(text, 0)
            return ast.IntLiteral(location=token.location, value=value, text=token.value)
        if token.kind is TokenKind.FLOAT_LITERAL:
            text = token.value.rstrip("fF")
            return ast.FloatLiteral(location=token.location, value=float(text), text=token.value)
        if token.kind is TokenKind.IDENT:
            return ast.Identifier(location=token.location, name=token.value)
        if token.kind is TokenKind.KEYWORD and token.value in ("true", "false"):
            return ast.IntLiteral(
                location=token.location, value=1 if token.value == "true" else 0,
                text=token.value,
            )
        if token.kind is TokenKind.PUNCT and token.value == "(":
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise ParserError(f"unexpected token {token.value!r}", token.location)


def parse(source: str) -> ast.TranslationUnit:
    """Parse OpenCL-C ``source`` into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()


def parse_kernel(source: str, name: str | None = None) -> ast.FunctionDef:
    """Parse ``source`` and return one kernel (by ``name``, or the only one)."""
    unit = parse(source)
    kernels = unit.kernels()
    if name is not None:
        return unit.kernel(name)
    if len(kernels) != 1:
        raise ParserError(
            f"expected exactly one kernel, found {len(kernels)}", unit.location
        )
    return kernels[0]
