"""Diagnostics for the OpenCL-C frontend.

The frontend mirrors the role the Eigen Compiler Suite plays in the paper:
a small, self-contained toolchain whose only job is to turn kernel source
text into an AST that the analysis and transformation passes can walk.
All errors raised while doing so carry a source location so that failing
kernels in the test suite and the workload generators are easy to debug.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position inside a kernel source string.

    Lines and columns are 1-based, matching how compilers conventionally
    report positions.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FrontendError(Exception):
    """Base class for all frontend diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexerError(FrontendError):
    """Raised when the tokenizer encounters an invalid character sequence."""


class ParserError(FrontendError):
    """Raised when the token stream does not match the OpenCL-C grammar subset."""


class SemanticError(FrontendError):
    """Raised for violations detected after parsing (unknown names, bad types)."""
