"""OpenCL-C compiler frontend (lexer, parser, AST, semantic analysis).

This package replaces the Eigen Compiler Suite frontend the paper uses: it
turns OpenCL-C kernel source into an AST that the feature-extraction and
malleable-code-generation passes operate on.
"""

from .ast import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    Cast,
    Conditional,
    Continue,
    CType,
    DeclStmt,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FunctionDef,
    Identifier,
    If,
    Index,
    IntLiteral,
    Node,
    NodeVisitor,
    Param,
    PostfixOp,
    Return,
    Stmt,
    TranslationUnit,
    UnaryOp,
    VarDecl,
    walk,
    While,
)
from .errors import FrontendError, LexerError, ParserError, SemanticError, SourceLocation
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse, parse_kernel
from .semantics import KernelInfo, Symbol, SymbolTable, analyze_kernel

__all__ = [
    "Assignment", "BinaryOp", "Block", "Break", "Call", "Cast", "Conditional",
    "Continue", "CType", "DeclStmt", "DoWhile", "Expr", "ExprStmt",
    "FloatLiteral", "For", "FunctionDef", "Identifier", "If", "Index",
    "IntLiteral", "Node", "NodeVisitor", "Param", "PostfixOp", "Return",
    "Stmt", "TranslationUnit", "UnaryOp", "VarDecl", "walk", "While",
    "FrontendError", "LexerError", "ParserError", "SemanticError",
    "SourceLocation", "Lexer", "Token", "TokenKind", "tokenize", "Parser",
    "parse", "parse_kernel", "KernelInfo", "Symbol", "SymbolTable",
    "analyze_kernel",
]
