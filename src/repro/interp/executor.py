"""Functional OpenCL-C kernel interpreter.

Executes parsed kernels over NumPy buffers with full OpenCL work-group
semantics: per-work-item private variables, per-work-group ``__local``
memory, ``barrier(CLK_LOCAL_MEM_FENCE)`` synchronisation, and atomic
operations on local and global memory.

The interpreter exists to demonstrate *correctness* of Dopia's malleable
code transformation (paper §6): the transformed kernel must compute the
same buffers as the original for every throttle setting
``(dop_gpu_mod, dop_gpu_alloc)``.  Performance numbers come from
:mod:`repro.sim`, not from here.

Work-items that may block on a barrier are run as Python generators and
scheduled cooperatively: every item in a work-group runs until it either
finishes or yields at a barrier; once all unfinished items have reached the
barrier, execution resumes.  Kernels without barriers take a fast path
running each item to completion in turn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from ..frontend import ast
from ..frontend.semantics import KernelInfo, analyze_kernel
from .builtins import INT_IMPLS, MATH_IMPLS, c_div, c_mod
from .ndrange import NDRange
from .stats import execution_stats


class KernelRuntimeError(Exception):
    """Raised when kernel execution hits an unsupported or invalid operation."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    """Unwinds a function body; ``value`` carries the return expression."""

    def __init__(self, value=None):
        self.value = value
        super().__init__()


@dataclass
class ArrayRef:
    """A pointer value: a NumPy array plus an element offset."""

    array: np.ndarray
    offset: int = 0


class _BarrierDesync(KernelRuntimeError):
    """Raised when work-items of a group disagree on barrier arrival."""


class WorkGroupContext:
    """Shared per-work-group state: local memory and the group's identity."""

    def __init__(self, executor: "KernelExecutor", group_id: tuple[int, ...]):
        self.executor = executor
        self.group_id = group_id
        self.local_arrays: dict[str, np.ndarray] = {}
        for name, (dtype, size) in executor.local_array_specs.items():
            self.local_arrays[name] = np.zeros(size, dtype=dtype)


class WorkItemContext:
    """Per-work-item identity and private variable environment."""

    __slots__ = ("group", "local_id", "env")

    def __init__(self, group: WorkGroupContext, local_id: tuple[int, ...]):
        self.group = group
        self.local_id = local_id
        self.env: dict[str, Any] = {}

    # -- id queries (the OpenCL work-item functions) -------------------------

    def global_id(self, dim: int) -> int:
        nd = self.group.executor.ndrange
        if dim >= nd.work_dim:
            return 0
        return (
            nd.offset[dim]
            + self.group.group_id[dim] * nd.local_size[dim]
            + self.local_id[dim]
        )

    def query(self, name: str, dim: int) -> int:
        nd = self.group.executor.ndrange
        if name == "get_global_id":
            return self.global_id(dim)
        if name == "get_local_id":
            return self.local_id[dim] if dim < nd.work_dim else 0
        if name == "get_group_id":
            return self.group.group_id[dim] if dim < nd.work_dim else 0
        if name == "get_global_size":
            return nd.global_size[dim] if dim < nd.work_dim else 1
        if name == "get_local_size":
            return nd.local_size[dim] if dim < nd.work_dim else 1
        if name == "get_num_groups":
            return nd.num_groups[dim] if dim < nd.work_dim else 1
        if name == "get_global_offset":
            return nd.offset[dim] if dim < nd.work_dim else 0
        if name == "get_work_dim":
            return nd.work_dim
        raise KernelRuntimeError(f"unknown work-item query {name}")


_INT_TYPE_NAMES = frozenset(
    {"int", "uint", "long", "ulong", "short", "ushort", "char", "uchar",
     "size_t", "ptrdiff_t", "bool"}
)


class KernelExecutor:
    """Executes one kernel over an ND-range.

    Parameters
    ----------
    info:
        Semantic analysis result for the kernel.
    args:
        Maps parameter names to values: NumPy 1-D arrays for pointer
        parameters, Python scalars for value parameters.
    ndrange:
        The launch geometry.
    """

    def __init__(self, info: KernelInfo, args: dict[str, Any], ndrange: NDRange):
        self.info = info
        self.ndrange = ndrange
        self.args: dict[str, Any] = {}
        for param in info.kernel.params:
            if param.name not in args:
                raise KernelRuntimeError(f"missing kernel argument {param.name!r}")
            value = args[param.name]
            if param.type.pointer:
                if not isinstance(value, np.ndarray):
                    raise KernelRuntimeError(
                        f"argument {param.name!r} must be a NumPy array"
                    )
                self.args[param.name] = value
            else:
                self.args[param.name] = (
                    int(value) if param.type.name in _INT_TYPE_NAMES else float(value)
                )
        self.local_array_specs = self._collect_local_arrays()

    # -- local (__local) array discovery ------------------------------------

    def _collect_local_arrays(self) -> dict[str, tuple[np.dtype, int]]:
        specs: dict[str, tuple[np.dtype, int]] = {}
        for node in ast.walk(self.info.kernel.body):
            if isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    if decl.type.address_space == "local" and decl.array_dims:
                        size = 1
                        for dim in decl.array_dims:
                            if not isinstance(dim, ast.IntLiteral):
                                raise KernelRuntimeError(
                                    "local array sizes must be literals"
                                )
                            size *= dim.value
                        dtype = (
                            np.float32 if decl.type.is_float else np.int64
                        )
                        specs[decl.name] = (np.dtype(dtype), size)
        return specs

    # -- group scheduling ------------------------------------------------------

    def run(self, group_ids: Optional[Iterable[tuple[int, ...]]] = None) -> None:
        """Execute the kernel for all (or the given) work-groups."""
        if group_ids is None:
            group_ids = self.ndrange.group_ids()
        for group_id in group_ids:
            self.run_group(group_id)

    def run_group(self, group_id: tuple[int, ...]) -> None:
        """Execute one work-group, honouring barriers if present."""
        started = time.perf_counter()
        self._run_group(group_id)
        execution_stats.record_run(
            self.info.kernel.name, "scalar",
            self.ndrange.work_items_per_group,
            time.perf_counter() - started,
        )

    def _run_group(self, group_id: tuple[int, ...]) -> None:
        group = WorkGroupContext(self, group_id)
        items = [
            WorkItemContext(group, local_id) for local_id in self.ndrange.local_ids()
        ]
        if not self.info.uses_barrier:
            for item in items:
                self._run_item_to_completion(item)
            return
        # Cooperative scheduling: each item is a generator yielding at
        # barriers.  All non-finished items must reach the same barrier.
        runners = [self._item_generator(item) for item in items]
        active = list(range(len(runners)))
        while active:
            arrived: list[int] = []
            finished: list[int] = []
            for index in active:
                try:
                    next(runners[index])
                    arrived.append(index)
                except StopIteration:
                    finished.append(index)
            if arrived and finished:
                # OpenCL requires barriers to be encountered uniformly by
                # all work-items of the group that are still executing; a
                # mix of finished and blocked items is how real code hangs.
                raise _BarrierDesync(
                    "work-items of a group diverged at a barrier"
                )
            active = arrived

    def _run_item_to_completion(self, item: WorkItemContext) -> None:
        for _ in self._item_generator(item):
            raise _BarrierDesync("barrier in kernel marked barrier-free")

    def _item_generator(self, item: WorkItemContext):
        for param in self.info.kernel.params:
            item.env[param.name] = self.args[param.name]
        for name, array in item.group.local_arrays.items():
            item.env[name] = array
        try:
            yield from self._exec_stmt(self.info.kernel.body, item)
        except _Return:
            pass

    # -- statements -------------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, item: WorkItemContext):
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                yield from self._exec_stmt(inner, item)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.type.address_space == "local":
                    continue  # already bound to the shared group array
                if decl.array_dims:
                    size = 1
                    for dim in decl.array_dims:
                        size *= int(self._eval(dim, item))
                    dtype = np.float64 if decl.type.is_float else np.int64
                    item.env[decl.name] = np.zeros(size, dtype=dtype)
                elif decl.init is not None:
                    value = self._eval(decl.init, item)
                    item.env[decl.name] = self._coerce(value, decl.type)
                else:
                    item.env[decl.name] = 0.0 if decl.type.is_float else 0
        elif isinstance(stmt, ast.ExprStmt):
            if self._is_barrier(stmt.expr):
                yield "barrier"
            else:
                self._eval(stmt.expr, item)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, item)):
                yield from self._exec_stmt(stmt.then, item)
            elif stmt.otherwise is not None:
                yield from self._exec_stmt(stmt.otherwise, item)
        elif isinstance(stmt, ast.For):
            yield from self._exec_for(stmt, item)
        elif isinstance(stmt, ast.While):
            while self._truthy(self._eval(stmt.cond, item)):
                try:
                    yield from self._exec_stmt(stmt.body, item)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    yield from self._exec_stmt(stmt.body, item)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self._eval(stmt.cond, item)):
                    break
        elif isinstance(stmt, ast.Return):
            raise _Return(
                self._eval(stmt.value, item) if stmt.value is not None else None
            )
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover - parser cannot produce other nodes
            raise KernelRuntimeError(f"unsupported statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.For, item: WorkItemContext):
        if stmt.init is not None:
            if isinstance(stmt.init, ast.DeclStmt):
                for _ in self._exec_stmt(stmt.init, item):
                    pass  # declarations cannot yield
            elif isinstance(stmt.init, ast.ExprStmt):
                self._eval(stmt.init.expr, item)
        while stmt.cond is None or self._truthy(self._eval(stmt.cond, item)):
            try:
                yield from self._exec_stmt(stmt.body, item)
            except _Break:
                break
            except _Continue:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, item)

    @staticmethod
    def _is_barrier(expr: ast.Expr) -> bool:
        return isinstance(expr, ast.Call) and expr.name in ("barrier", "mem_fence")

    # -- expressions -------------------------------------------------------------

    def _truthy(self, value: Any) -> bool:
        return bool(value)

    def _coerce(self, value: Any, ctype: ast.CType) -> Any:
        if ctype.pointer:
            return value
        if ctype.is_float:
            return float(value)
        return int(value)

    def _eval(self, expr: ast.Expr, item: WorkItemContext) -> Any:
        kind = type(expr)
        if kind is ast.IntLiteral:
            return expr.value
        if kind is ast.FloatLiteral:
            return expr.value
        if kind is ast.Identifier:
            try:
                return item.env[expr.name]
            except KeyError:
                raise KernelRuntimeError(
                    f"unbound identifier {expr.name!r}"
                ) from None
        if kind is ast.BinaryOp:
            return self._eval_binary(expr, item)
        if kind is ast.UnaryOp:
            return self._eval_unary(expr, item)
        if kind is ast.PostfixOp:
            old = self._eval(expr.operand, item)
            delta = 1 if expr.op == "++" else -1
            self._store(expr.operand, old + delta, item)
            return old
        if kind is ast.Assignment:
            return self._eval_assignment(expr, item)
        if kind is ast.Conditional:
            if self._truthy(self._eval(expr.cond, item)):
                return self._eval(expr.then, item)
            return self._eval(expr.otherwise, item)
        if kind is ast.Index:
            ref = self._resolve_ref(expr, item)
            value = ref.array[ref.offset]
            return value.item() if isinstance(value, np.generic) else value
        if kind is ast.Cast:
            return self._coerce(self._eval(expr.operand, item), expr.type)
        if kind is ast.Call:
            return self._eval_call(expr, item)
        raise KernelRuntimeError(f"unsupported expression {kind.__name__}")

    def _eval_binary(self, expr: ast.BinaryOp, item: WorkItemContext) -> Any:
        op = expr.op
        if op == "&&":
            return int(
                self._truthy(self._eval(expr.left, item))
                and self._truthy(self._eval(expr.right, item))
            )
        if op == "||":
            return int(
                self._truthy(self._eval(expr.left, item))
                or self._truthy(self._eval(expr.right, item))
            )
        left = self._eval(expr.left, item)
        right = self._eval(expr.right, item)
        if op == "+" or op == "-":
            # Pointer arithmetic lands here: adding to a NumPy buffer would
            # silently produce an *element-wise* result, and ArrayRef has no
            # ``+`` at all, so both pointer shapes are detected after the
            # fact — keeping the scalar fast path free of isinstance checks.
            try:
                value = left + right if op == "+" else left - right
            except TypeError:
                return self._pointer_arith(op, left, right)
            if value.__class__ is np.ndarray:
                return self._pointer_arith(op, left, right)
            return value
        if op == "*":
            return left * right
        if op == "/":
            return c_div(left, right)
        if op == "%":
            return c_mod(left, right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == ",":
            return right
        raise KernelRuntimeError(f"unsupported binary operator {op!r}")

    def _pointer_arith(self, op: str, left: Any, right: Any) -> Any:
        """C pointer arithmetic: ``ptr ± int`` offsets the pointer (the
        resulting :class:`ArrayRef` is bounds-checked when dereferenced, as
        in C, where merely *forming* a past-the-end pointer is allowed);
        ``ptr - ptr`` is an element difference within one buffer.  Anything
        else — and notably what NumPy would silently turn into element-wise
        arithmetic — is a kernel error.
        """

        def as_ref(value: Any) -> ArrayRef:
            return value if isinstance(value, ArrayRef) else ArrayRef(value, 0)

        left_ptr = isinstance(left, (np.ndarray, ArrayRef))
        right_ptr = isinstance(right, (np.ndarray, ArrayRef))
        if op == "-" and left_ptr and right_ptr:
            lref, rref = as_ref(left), as_ref(right)
            if lref.array is not rref.array:
                raise KernelRuntimeError(
                    "subtraction of pointers into different buffers"
                )
            return lref.offset - rref.offset
        if op in ("+", "-") and left_ptr and not right_ptr:
            ref = as_ref(left)
            delta = int(right)
            return ArrayRef(ref.array, ref.offset + (delta if op == "+" else -delta))
        if op == "+" and right_ptr and not left_ptr:
            ref = as_ref(right)
            return ArrayRef(ref.array, ref.offset + int(left))
        raise KernelRuntimeError(
            f"invalid pointer operand to binary {op!r}"
        )

    def _deref(self, ref: ArrayRef) -> ArrayRef:
        """Bounds-check a pointer before it is read or written through."""
        if not 0 <= ref.offset < ref.array.shape[0]:
            raise KernelRuntimeError(
                f"out-of-bounds pointer access: offset {ref.offset} into "
                f"buffer of {ref.array.shape[0]} elements"
            )
        return ref

    def _eval_unary(self, expr: ast.UnaryOp, item: WorkItemContext) -> Any:
        if expr.op in ("++", "--"):
            old = self._eval(expr.operand, item)
            new = old + (1 if expr.op == "++" else -1)
            self._store(expr.operand, new, item)
            return new
        operand = self._eval(expr.operand, item)
        if expr.op == "-":
            return -operand
        if expr.op == "!":
            return int(not self._truthy(operand))
        if expr.op == "~":
            return ~int(operand)
        if expr.op == "*":
            if isinstance(operand, np.ndarray):
                operand = ArrayRef(operand, 0)
            if isinstance(operand, ArrayRef):
                ref = self._deref(operand)
                value = ref.array[ref.offset]
                return value.item() if isinstance(value, np.generic) else value
            raise KernelRuntimeError("dereference of non-pointer value")
        if expr.op == "&":
            return self._resolve_ref(expr.operand, item)
        raise KernelRuntimeError(f"unsupported unary operator {expr.op!r}")

    _COMPOUND = {
        "+=": lambda a, b: a + b,
        "-=": lambda a, b: a - b,
        "*=": lambda a, b: a * b,
        "/=": c_div,
        "%=": c_mod,
        "&=": lambda a, b: int(a) & int(b),
        "|=": lambda a, b: int(a) | int(b),
        "^=": lambda a, b: int(a) ^ int(b),
        "<<=": lambda a, b: int(a) << int(b),
        ">>=": lambda a, b: int(a) >> int(b),
    }

    def _eval_assignment(self, expr: ast.Assignment, item: WorkItemContext) -> Any:
        value = self._eval(expr.value, item)
        if expr.op != "=":
            old = self._eval(expr.target, item)
            value = self._COMPOUND[expr.op](old, value)
        self._store(expr.target, value, item)
        return value

    def _store(self, target: ast.Expr, value: Any, item: WorkItemContext) -> None:
        if isinstance(target, ast.Identifier):
            current = item.env.get(target.name)
            if isinstance(current, float):
                value = float(value)
            elif isinstance(current, int) and not isinstance(value, (ArrayRef, np.ndarray)):
                ctype = self._ident_type(target.name)
                if ctype is not None and not ctype.is_float and not ctype.pointer:
                    value = int(value)
            item.env[target.name] = value
            return
        if isinstance(target, ast.Index):
            ref = self._resolve_ref(target, item)
            ref.array[ref.offset] = value
            return
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer = self._eval(target.operand, item)
            if isinstance(pointer, np.ndarray):
                pointer = ArrayRef(pointer, 0)
            if isinstance(pointer, ArrayRef):
                ref = self._deref(pointer)
                ref.array[ref.offset] = value
                return
        raise KernelRuntimeError("invalid assignment target")

    def _ident_type(self, name: str) -> Optional[ast.CType]:
        symbol = self.info.symbols.lookup(name)
        return symbol.type if symbol is not None else None

    def _resolve_ref(self, expr: ast.Index, item: WorkItemContext) -> ArrayRef:
        base = self._eval(expr.base, item)
        index = int(self._eval(expr.index, item))
        if isinstance(base, np.ndarray):
            if not 0 <= index < base.shape[0]:
                raise KernelRuntimeError(
                    f"out-of-bounds access: index {index} into buffer of "
                    f"{base.shape[0]} elements"
                )
            return ArrayRef(base, index)
        if isinstance(base, ArrayRef):
            offset = base.offset + index
            if not 0 <= offset < base.array.shape[0]:
                raise KernelRuntimeError("out-of-bounds pointer access")
            return ArrayRef(base.array, offset)
        raise KernelRuntimeError("subscript of non-array value")

    def _eval_call(self, expr: ast.Call, item: WorkItemContext) -> Any:
        name = expr.name
        if name in (
            "get_global_id", "get_local_id", "get_group_id", "get_global_size",
            "get_local_size", "get_num_groups", "get_global_offset",
        ):
            dim = int(self._eval(expr.args[0], item)) if expr.args else 0
            return item.query(name, dim)
        if name == "get_work_dim":
            return self.ndrange.work_dim
        if name in ("barrier", "mem_fence"):
            raise KernelRuntimeError(
                "barrier used in expression position; barriers must be "
                "standalone statements"
            )
        if name.startswith("atomic_"):
            return self._eval_atomic(name, expr, item)
        if name in MATH_IMPLS:
            args = [float(self._eval(a, item)) for a in expr.args]
            return MATH_IMPLS[name](*args)
        if name in INT_IMPLS:
            args = [self._eval(a, item) for a in expr.args]
            return INT_IMPLS[name](*args)
        if name in self.info.user_functions:
            return self._call_user_function(name, expr, item)
        raise KernelRuntimeError(f"call to unsupported function {name!r}")

    def _call_user_function(self, name: str, expr: ast.Call,
                            item: WorkItemContext) -> Any:
        """Execute a helper function in a fresh scope (no barriers inside)."""
        callee = self.info.user_functions[name]
        if callee.uses_barrier:
            raise KernelRuntimeError(
                f"helper function {name!r} contains a barrier; barriers are "
                "only supported at kernel scope"
            )
        values = [self._eval(a, item) for a in expr.args]
        saved_env = item.env
        saved_info = self.info
        item.env = {}
        for param, value in zip(callee.kernel.params, values):
            item.env[param.name] = (
                value if param.type.pointer
                else self._coerce(value, param.type)
            )
        self.info = callee
        try:
            for _ in self._exec_stmt(callee.kernel.body, item):
                raise KernelRuntimeError("barrier inside helper function")
            result = None
        except _Return as ret:
            result = ret.value
        finally:
            item.env = saved_env
            self.info = saved_info
        if result is None and callee.kernel.return_type.name != "void":
            raise KernelRuntimeError(
                f"helper function {name!r} ended without returning a value"
            )
        return result

    def _eval_atomic(self, name: str, expr: ast.Call, item: WorkItemContext) -> int:
        pointer = self._eval(expr.args[0], item)
        if isinstance(pointer, np.ndarray):
            pointer = ArrayRef(pointer, 0)
        if not isinstance(pointer, ArrayRef):
            raise KernelRuntimeError(f"{name} requires a pointer argument")
        pointer = self._deref(pointer)
        old = int(pointer.array[pointer.offset])
        if name == "atomic_inc":
            new = old + 1
        elif name == "atomic_dec":
            new = old - 1
        elif name == "atomic_add":
            new = old + int(self._eval(expr.args[1], item))
        elif name == "atomic_sub":
            new = old - int(self._eval(expr.args[1], item))
        elif name == "atomic_xchg":
            new = int(self._eval(expr.args[1], item))
        elif name == "atomic_min":
            new = min(old, int(self._eval(expr.args[1], item)))
        elif name == "atomic_max":
            new = max(old, int(self._eval(expr.args[1], item)))
        elif name == "atomic_cmpxchg":
            cmp = int(self._eval(expr.args[1], item))
            val = int(self._eval(expr.args[2], item))
            new = val if old == cmp else old
        else:
            raise KernelRuntimeError(f"unsupported atomic {name!r}")
        pointer.array[pointer.offset] = new
        return old


def execute_kernel(
    info_or_source: KernelInfo | str,
    args: dict[str, Any],
    ndrange: NDRange,
    group_ids: Optional[Iterable[tuple[int, ...]]] = None,
    kernel_name: str | None = None,
    backend: str | None = None,
) -> None:
    """Execute a kernel (from source text or a :class:`KernelInfo`).

    Buffers in ``args`` are mutated in place, like real OpenCL global
    memory.  ``group_ids`` restricts execution to a subset of work-groups
    — the primitive Dopia's dynamic scheduler (Algorithm 1) is built on.
    ``backend`` picks the execution strategy
    (``auto``/``jit``/``vector``/``scalar``, default from
    ``DOPIA_BACKEND``); see :func:`repro.interp.make_executor`.
    """
    if isinstance(info_or_source, str):
        from ..frontend.parser import parse

        unit = parse(info_or_source)
        kernels = unit.kernels()
        if kernel_name is not None:
            kernel = unit.kernel(kernel_name)
        elif len(kernels) == 1:
            kernel = kernels[0]
        else:
            raise KernelRuntimeError(
                f"source defines {len(kernels)} kernels; pass kernel_name"
            )
        info = analyze_kernel(kernel, unit)
    else:
        info = info_or_source
    from .vectorize import make_executor

    make_executor(info, args, ndrange, backend=backend).run(group_ids)
