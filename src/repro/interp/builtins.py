"""Builtin function implementations for the kernel interpreter."""

from __future__ import annotations

import math

#: Math builtins usable from kernels, applied to Python floats.
MATH_IMPLS = {
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "exp": math.exp,
    "exp2": lambda x: 2.0 ** x,
    "log": math.log,
    "log2": math.log2,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "fabs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": math.pow,
    "fmax": max,
    "fmin": min,
    "fmod": math.fmod,
    "hypot": math.hypot,
    "mad": lambda a, b, c: a * b + c,
    "fma": lambda a, b, c: a * b + c,
    "clamp": lambda x, lo, hi: min(max(x, lo), hi),
}

#: Integer builtins.
INT_IMPLS = {
    "abs": abs,
    "min": min,
    "max": max,
    "mul24": lambda a, b: a * b,
    "mad24": lambda a, b, c: a * b + c,
}


def c_div(a, b):
    """C semantics: integer division truncates toward zero."""
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def c_mod(a, b):
    """C semantics: remainder has the sign of the dividend."""
    if isinstance(a, int) and isinstance(b, int):
        return a - c_div(a, b) * b
    return math.fmod(a, b)
