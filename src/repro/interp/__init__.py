"""Functional kernel interpreter: the correctness substrate."""

from .builtins import c_div, c_mod
from .executor import (
    ArrayRef,
    KernelExecutor,
    KernelRuntimeError,
    WorkGroupContext,
    WorkItemContext,
    execute_kernel,
)
from .ndrange import NDRange

__all__ = [
    "ArrayRef", "KernelExecutor", "KernelRuntimeError", "WorkGroupContext",
    "WorkItemContext", "execute_kernel", "NDRange", "c_div", "c_mod",
]
