"""Functional kernel interpreter: the correctness substrate.

Three backends execute the same OpenCL-C AST:

* :class:`KernelExecutor` — the scalar oracle, one work-item at a time,
  with full barrier/atomic semantics.
* :class:`VectorizedExecutor` — batched NumPy execution for eligible
  kernels, bit-identical to the oracle (and differential-tested against
  it), roughly an order of magnitude faster.
* :class:`JitExecutor` — trace-compiled straight-line NumPy programs for
  kernels inside the JIT subset, specialized and cached per launch
  shape, with the vectorized backend as its transparent fallback.

:func:`make_executor` picks between them
(``auto``/``jit``/``vector``/``scalar``, environment default
``DOPIA_BACKEND``).
"""

from .builtins import c_div, c_mod
from .codegen import (
    CompiledKernel,
    JitExecutor,
    JitUnsupported,
    compile_cached,
    compile_kernel,
    jit_cache_stats,
)
from .executor import (
    ArrayRef,
    KernelExecutor,
    KernelRuntimeError,
    WorkGroupContext,
    WorkItemContext,
    execute_kernel,
)
from .ndrange import NDRange
from .stats import ExecutionStats, execution_stats
from .vectorize import (
    AUTO_MIN_WORK_ITEMS,
    BACKENDS,
    Eligibility,
    VectorizedExecutor,
    check_vectorizable,
    make_executor,
    resolve_backend,
)

__all__ = [
    "ArrayRef", "KernelExecutor", "KernelRuntimeError", "WorkGroupContext",
    "WorkItemContext", "execute_kernel", "NDRange", "c_div", "c_mod",
    "AUTO_MIN_WORK_ITEMS", "BACKENDS", "CompiledKernel", "Eligibility",
    "ExecutionStats", "JitExecutor", "JitUnsupported", "VectorizedExecutor",
    "check_vectorizable", "compile_cached", "compile_kernel",
    "execution_stats", "jit_cache_stats", "make_executor", "resolve_backend",
]
