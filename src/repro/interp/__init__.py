"""Functional kernel interpreter: the correctness substrate.

Two backends execute the same OpenCL-C AST:

* :class:`KernelExecutor` — the scalar oracle, one work-item at a time,
  with full barrier/atomic semantics.
* :class:`VectorizedExecutor` — batched NumPy execution for eligible
  kernels, bit-identical to the oracle (and differential-tested against
  it), roughly an order of magnitude faster.

:func:`make_executor` picks between them (``auto``/``vector``/``scalar``,
environment default ``DOPIA_BACKEND``).
"""

from .builtins import c_div, c_mod
from .executor import (
    ArrayRef,
    KernelExecutor,
    KernelRuntimeError,
    WorkGroupContext,
    WorkItemContext,
    execute_kernel,
)
from .ndrange import NDRange
from .stats import ExecutionStats, execution_stats
from .vectorize import (
    AUTO_MIN_WORK_ITEMS,
    BACKENDS,
    Eligibility,
    VectorizedExecutor,
    check_vectorizable,
    make_executor,
    resolve_backend,
)

__all__ = [
    "ArrayRef", "KernelExecutor", "KernelRuntimeError", "WorkGroupContext",
    "WorkItemContext", "execute_kernel", "NDRange", "c_div", "c_mod",
    "AUTO_MIN_WORK_ITEMS", "BACKENDS", "Eligibility", "ExecutionStats",
    "VectorizedExecutor", "check_vectorizable", "execution_stats",
    "make_executor", "resolve_backend",
]
