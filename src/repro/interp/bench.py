"""Backend micro-benchmark: scalar oracle vs vector batches vs jit programs.

Times representative registry kernels on each execution tier, verifies the
fast tiers stay bit-identical to the scalar oracle, and emits the JSON
payload committed as ``BENCH_backend.json`` — the baseline the CI ``perf``
lane replays against (``dopia bench --check``).

The regression guard compares *speedup ratios* (jit over vector, vector
over scalar) rather than absolute wall-clock, so the committed baseline
stays meaningful across machines of different absolute speed: a 10%
relative slowdown of one tier against another is a code regression, a
uniformly slower runner is not.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from .executor import KernelExecutor
from .vectorize import VectorizedExecutor

#: Report schema; bump when the payload shape changes incompatibly.
SCHEMA_VERSION = 1

#: name -> zero-arg factory producing a Workload.  Mid-sized instances:
#: large enough that per-launch overhead does not dominate, small enough
#: that the scalar oracle finishes in a couple of seconds.  GESUMMV /
#: ATAX1 / MVT1 take the uniform-control fast path (whole-array jit
#: program, no masks); SpMV's irregular row loop declines to vector and
#: pins down the fallback half of the lattice.
def _default_subjects() -> dict[str, Callable]:
    from ..workloads import make_atax1, make_gesummv, make_mvt1, make_spmv

    return {
        "GESUMMV": lambda: make_gesummv(n=512, wg=64),
        "ATAX1": lambda: make_atax1(n=512, wg=64),
        "MVT1": lambda: make_mvt1(n=512, wg=64),
        "SpMV": lambda: make_spmv(n=2048, wg=64, nnz_per_row=32),
    }


def _copy_args(args: dict) -> dict:
    return {
        name: value.copy() if isinstance(value, np.ndarray) else value
        for name, value in args.items()
    }


def _buffers_identical(info, reference: dict, candidate: dict) -> bool:
    return all(
        np.asarray(reference[name]).tobytes()
        == np.asarray(candidate[name]).tobytes()
        for name in info.buffer_params
        if isinstance(reference.get(name), np.ndarray)
    )


def _best_of(run: Callable[[], None], repeats: int,
             min_seconds: float = 0.3, max_repeats: int = 100) -> float:
    """Best single-run time, repeating until both ``repeats`` runs and
    ``min_seconds`` of total measurement have accumulated.

    The compiled tiers finish in milliseconds, where two or three samples
    leave >10% run-to-run noise — enough to trip a 0.9x regression floor
    spuriously.  Accumulating a minimum measurement window keeps the
    reported best stable without inflating the cost of second-scale runs
    (they already exceed the window on their first repetition).
    """
    best = math.inf
    total = 0.0
    runs = 0
    while runs < repeats or (total < min_seconds and runs < max_repeats):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        total += elapsed
        runs += 1
    return best


def backend_bench(
    subjects: dict[str, Callable] | None = None,
    repeats: int = 3,
    rng: int = 0,
) -> dict:
    """Measure every backend on every subject and build the JSON payload.

    Scalar and vector are timed best-of-``repeats`` on fresh buffers each
    repetition.  The jit tier is compiled once up front (the compile is
    reported separately as ``jit_compile_s``) and then timed with a warm
    program cache — the steady state a server or repeated launch sees.
    Kernels whose compile declines run the vector tier under the jit
    entry point instead and are marked ``jit_path: "vector"``; they are
    excluded from the jit-over-vector geomean.
    """
    from .codegen import JitExecutor, JitUnsupported, compile_cached

    if subjects is None:
        subjects = _default_subjects()

    kernels: dict[str, dict] = {}
    fast_path_ratios: list[float] = []
    for name, factory in subjects.items():
        workload = factory()
        info = workload.kernel_info()
        ndrange = workload.ndrange()
        base = workload.full_args(rng=rng)

        # The scalar oracle is 2-3 orders of magnitude slower than the
        # compiled tiers — a single timing is already noise-free, and
        # best-of-repeats would multiply the bench's wall time for nothing.
        scalar_args = _copy_args(base)
        scalar_s = _best_of(
            lambda: KernelExecutor(info, scalar_args, ndrange).run(), 1,
            min_seconds=0.0)

        vector_args = _copy_args(base)
        vector_s = _best_of(
            lambda: VectorizedExecutor(
                info, _copy_args(base), ndrange).run(), repeats)
        VectorizedExecutor(info, vector_args, ndrange).run()

        jit_path = "jit"
        jit_compile_s = 0.0
        compiled = None
        try:
            compiled = compile_cached(info, _copy_args(base), ndrange)
        except JitUnsupported:
            jit_path = "vector"
        else:
            jit_compile_s = compiled.compile_seconds

        jit_args = _copy_args(base)
        if compiled is not None:
            jit_s = _best_of(
                lambda: JitExecutor(
                    info, _copy_args(base), ndrange, compiled).run(), repeats)
            JitExecutor(info, jit_args, ndrange, compiled).run()
        else:
            jit_s = _best_of(
                lambda: VectorizedExecutor(
                    info, _copy_args(base), ndrange).run(), repeats)
            VectorizedExecutor(info, jit_args, ndrange).run()

        identical = (_buffers_identical(info, scalar_args, vector_args)
                     and _buffers_identical(info, scalar_args, jit_args))
        row = {
            "work_items": workload.total_work_items,
            "scalar_s": round(scalar_s, 6),
            "vector_s": round(vector_s, 6),
            "jit_s": round(jit_s, 6),
            "jit_compile_s": round(jit_compile_s, 6),
            "jit_path": jit_path,
            "vector_speedup": round(scalar_s / vector_s, 3),
            "jit_speedup": round(scalar_s / jit_s, 3),
            "jit_over_vector": round(vector_s / jit_s, 3),
            "identical": identical,
        }
        if jit_path == "jit" and compiled is not None and not compiled.masked:
            fast_path_ratios.append(vector_s / jit_s)
        kernels[name] = row

    payload = {
        "schema": SCHEMA_VERSION,
        "repeats": repeats,
        "kernels": kernels,
    }
    if fast_path_ratios:
        payload["geomean_jit_over_vector"] = round(
            math.exp(sum(math.log(r) for r in fast_path_ratios)
                     / len(fast_path_ratios)), 3)
    return payload


#: Extra slack below ``ratio`` before a single kernel's metric becomes
#: fatal on its own (see :func:`compare_reports`).
PER_KERNEL_SLACK = 0.15


def compare_reports(current: dict, baseline: dict,
                    ratio: float = 0.9) -> tuple[list[str], list[str]]:
    """Regression guard against a committed baseline report.

    Returns ``(failures, warnings)``.  Single-kernel millisecond timings
    carry ~±10% run-to-run noise on shared CI runners, so a per-kernel
    0.9x gate would flake; the gate is therefore layered:

    * **fatal** — buffers not bit-identical to scalar; a kernel's
      ``jit_path`` changing (e.g. the compiler silently declining a
      kernel it used to take); the fast-path geomean below ``ratio``
      times the baseline's; or any per-kernel speedup collapsing below
      ``ratio - PER_KERNEL_SLACK`` of its baseline.
    * **warning** — a per-kernel speedup between the hard floor and
      ``ratio`` times its baseline: reported, but one noisy kernel does
      not fail the lane when the aggregate is healthy.
    """
    failures: list[str] = []
    warnings: list[str] = []
    hard = max(0.0, ratio - PER_KERNEL_SLACK)
    baseline_kernels = baseline.get("kernels", {})
    for name, row in current.get("kernels", {}).items():
        reference = baseline_kernels.get(name)
        if reference is None:
            continue
        if not row.get("identical", False):
            failures.append(f"{name}: fast-tier buffers diverged from scalar")
        if row.get("jit_path") != reference.get("jit_path"):
            failures.append(
                f"{name}: jit path changed "
                f"{reference.get('jit_path')!r} -> {row.get('jit_path')!r}")
        for metric in ("vector_speedup", "jit_speedup", "jit_over_vector"):
            ref = reference.get(metric)
            cur = row.get(metric)
            if not ref or cur is None:
                continue
            if cur < hard * ref:
                failures.append(
                    f"{name}: {metric} {cur:.2f}x < {hard:.0%} of "
                    f"baseline {ref:.2f}x")
            elif cur < ratio * ref:
                warnings.append(
                    f"{name}: {metric} {cur:.2f}x < {ratio:.0%} of "
                    f"baseline {ref:.2f}x (within noise floor)")
    ref_geomean = baseline.get("geomean_jit_over_vector")
    cur_geomean = current.get("geomean_jit_over_vector")
    if ref_geomean and cur_geomean is not None:
        if cur_geomean < ratio * ref_geomean:
            failures.append(
                f"geomean jit-over-vector {cur_geomean:.2f}x < {ratio:.0%} "
                f"of baseline {ref_geomean:.2f}x")
    elif ref_geomean and cur_geomean is None:
        failures.append("geomean jit-over-vector missing from this run "
                        "(every fast-path kernel declined?)")
    return failures, warnings
