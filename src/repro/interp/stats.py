"""Instrumentation for kernel-execution backend selection.

Mirrors :class:`repro.core.collect.CollectionStats`: a process-global,
reset-able counter that records which backend (``vector`` or ``scalar``)
executed each kernel, how much work it processed, and how long it took —
so the speedup of the vectorized NumPy backend over the scalar oracle is
observable from the CLI and from tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class _BackendCounter:
    """Accumulated work for one (kernel, backend) pair."""

    calls: int = 0
    work_items: int = 0
    seconds: float = 0.0

    @property
    def items_per_second(self) -> float | None:
        if self.seconds <= 0.0 or self.work_items == 0:
            return None
        return self.work_items / self.seconds


@dataclass
class ExecutionStats:
    """Per-kernel execution counters for the interpreter backends.

    ``choices`` keeps the most recent backend-selection decision per kernel
    (and why it was made); ``runs`` accumulates executed work per
    ``(kernel, backend)``; ``fallbacks`` counts transparent mid-run
    reversions from the vectorized path to the scalar oracle.
    """

    runs: dict[tuple[str, str], _BackendCounter] = field(default_factory=dict)
    choices: dict[str, tuple[str, str]] = field(default_factory=dict)
    fallbacks: dict[str, int] = field(default_factory=dict)
    fallback_reasons: dict[str, str] = field(default_factory=dict)
    #: kernel -> "line:column" of the construct that forced the most recent
    #: fallback ("" when the fallback site carried no source location)
    fallback_locations: dict[str, str] = field(default_factory=dict)
    #: guards every read-modify-write; concurrent launches from the serving
    #: layer record into this process-global object from many threads
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    # -- recording -----------------------------------------------------------

    def record_choice(self, kernel: str, backend: str, reason: str = "") -> None:
        with self._lock:
            self.choices[kernel] = (backend, reason)

    def record_run(self, kernel: str, backend: str, work_items: int,
                   seconds: float) -> None:
        with self._lock:
            counter = self.runs.setdefault((kernel, backend), _BackendCounter())
            counter.calls += 1
            counter.work_items += work_items
            counter.seconds += seconds

    def record_fallback(self, kernel: str, reason: str,
                        location: object = None) -> None:
        with self._lock:
            self.fallbacks[kernel] = self.fallbacks.get(kernel, 0) + 1
            self.fallback_reasons[kernel] = reason
            line = getattr(location, "line", None)
            if line:
                column = getattr(location, "column", 0)
                self.fallback_locations[kernel] = f"{line}:{column}"
            else:
                self.fallback_locations[kernel] = ""

    # -- queries -------------------------------------------------------------

    def kernels(self) -> list[str]:
        names = {kernel for kernel, _ in self.runs}
        names.update(self.choices)
        return sorted(names)

    def backend_for(self, kernel: str) -> str | None:
        choice = self.choices.get(kernel)
        return choice[0] if choice is not None else None

    def speedup(self, kernel: str) -> float | None:
        """Vector throughput over scalar throughput, when both were timed."""
        vector = self.runs.get((kernel, "vector"))
        scalar = self.runs.get((kernel, "scalar"))
        if vector is None or scalar is None:
            return None
        v_rate = vector.items_per_second
        s_rate = scalar.items_per_second
        if v_rate is None or s_rate is None:
            return None
        return v_rate / s_rate

    def total_calls(self) -> int:
        return sum(counter.calls for counter in self.runs.values())

    def summary(self) -> str:
        """One paragraph per kernel, suitable for stderr reporting."""
        if not self.kernels():
            return "execution: no kernels run"
        lines = []
        for kernel in self.kernels():
            parts = []
            choice = self.choices.get(kernel)
            if choice is not None:
                backend, reason = choice
                parts.append(f"backend={backend}" + (f" ({reason})" if reason else ""))
            for backend in ("vector", "scalar"):
                counter = self.runs.get((kernel, backend))
                if counter is None:
                    continue
                parts.append(
                    f"{backend}: {counter.calls} call(s), "
                    f"{counter.work_items} item(s), {counter.seconds:.3f}s"
                )
            ratio = self.speedup(kernel)
            if ratio is not None:
                parts.append(f"speedup={ratio:.1f}x")
            if kernel in self.fallbacks:
                where = self.fallback_locations.get(kernel, "")
                at = f" at {where}" if where else ""
                parts.append(
                    f"fallbacks={self.fallbacks[kernel]} "
                    f"({self.fallback_reasons.get(kernel, '')}{at})"
                )
            lines.append(f"execution[{kernel}]: " + "; ".join(parts))
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self.runs.clear()
            self.choices.clear()
            self.fallbacks.clear()
            self.fallback_reasons.clear()
            self.fallback_locations.clear()


#: Process-global counter, like ``repro.core.collect.collection_stats``.
execution_stats = ExecutionStats()
