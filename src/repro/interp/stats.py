"""Instrumentation for kernel-execution backend selection.

Mirrors :class:`repro.core.collect.CollectionStats`: a process-global,
reset-able counter that records which backend (``jit``, ``vector`` or
``scalar``) executed each kernel, how much work it processed, and how
long it took — so the speedup of the compiled tiers over the scalar
oracle is observable from the CLI and from tests.

Fallback counters are keyed per ``(kernel, tier)``: a jit-compile
refusal and a mid-run vectorize reversion are different events with
different remedies, and ``dopia backends`` reports them separately.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class _BackendCounter:
    """Accumulated work for one (kernel, backend) pair."""

    calls: int = 0
    work_items: int = 0
    seconds: float = 0.0

    @property
    def items_per_second(self) -> float | None:
        if self.seconds <= 0.0 or self.work_items == 0:
            return None
        return self.work_items / self.seconds


@dataclass
class ExecutionStats:
    """Per-kernel execution counters for the interpreter backends.

    ``choices`` keeps the most recent backend-selection decision per kernel
    (and why it was made); ``runs`` accumulates executed work per
    ``(kernel, backend)``; ``fallbacks`` counts transparent reversions to a
    slower tier, keyed per ``(kernel, tier)`` where ``tier`` names the
    backend that *declined* the work (``"jit"``: compile refusal or
    runtime guard, ``"vector"``: mid-run reversion to the scalar oracle).
    """

    runs: dict[tuple[str, str], _BackendCounter] = field(default_factory=dict)
    choices: dict[str, tuple[str, str]] = field(default_factory=dict)
    fallbacks: dict[tuple[str, str], int] = field(default_factory=dict)
    fallback_reasons: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (kernel, tier) -> "line:column" of the construct that forced the most
    #: recent fallback ("" when the fallback site carried no source location)
    fallback_locations: dict[tuple[str, str], str] = field(default_factory=dict)
    #: kernel -> number of jit compilations (cache misses, including
    #: negative results) and the time they took
    jit_compiles: dict[str, int] = field(default_factory=dict)
    jit_compile_seconds: dict[str, float] = field(default_factory=dict)
    #: kernel -> number of jit program-cache hits (positive or negative)
    jit_cache_hits: dict[str, int] = field(default_factory=dict)
    #: guards every read-modify-write; concurrent launches from the serving
    #: layer record into this process-global object from many threads
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    # -- recording -----------------------------------------------------------

    def record_choice(self, kernel: str, backend: str, reason: str = "") -> None:
        with self._lock:
            self.choices[kernel] = (backend, reason)

    def record_run(self, kernel: str, backend: str, work_items: int,
                   seconds: float) -> None:
        with self._lock:
            counter = self.runs.setdefault((kernel, backend), _BackendCounter())
            counter.calls += 1
            counter.work_items += work_items
            counter.seconds += seconds

    def record_fallback(self, kernel: str, reason: str,
                        location: object = None, tier: str = "vector") -> None:
        key = (kernel, tier)
        with self._lock:
            self.fallbacks[key] = self.fallbacks.get(key, 0) + 1
            self.fallback_reasons[key] = reason
            line = getattr(location, "line", None)
            if line:
                column = getattr(location, "column", 0)
                self.fallback_locations[key] = f"{line}:{column}"
            else:
                self.fallback_locations[key] = ""

    def record_jit_compile(self, kernel: str, seconds: float) -> None:
        with self._lock:
            self.jit_compiles[kernel] = self.jit_compiles.get(kernel, 0) + 1
            self.jit_compile_seconds[kernel] = (
                self.jit_compile_seconds.get(kernel, 0.0) + seconds)

    def record_jit_cache_hit(self, kernel: str) -> None:
        with self._lock:
            self.jit_cache_hits[kernel] = self.jit_cache_hits.get(kernel, 0) + 1

    # -- queries -------------------------------------------------------------

    def kernels(self) -> list[str]:
        names = {kernel for kernel, _ in self.runs}
        names.update(self.choices)
        names.update(kernel for kernel, _ in self.fallbacks)
        return sorted(names)

    def backend_for(self, kernel: str) -> str | None:
        choice = self.choices.get(kernel)
        return choice[0] if choice is not None else None

    def fallback_count(self, kernel: str, tier: str | None = None) -> int:
        """Fallbacks recorded for ``kernel`` — one tier, or all summed."""
        if tier is not None:
            return self.fallbacks.get((kernel, tier), 0)
        return sum(count for (name, _t), count in self.fallbacks.items()
                   if name == kernel)

    def fallback_tiers(self, kernel: str) -> list[str]:
        return sorted(t for (name, t) in self.fallbacks if name == kernel)

    def speedup(self, kernel: str, backend: str = "vector") -> float | None:
        """``backend`` throughput over scalar throughput, when both ran."""
        fast = self.runs.get((kernel, backend))
        scalar = self.runs.get((kernel, "scalar"))
        if fast is None or scalar is None:
            return None
        f_rate = fast.items_per_second
        s_rate = scalar.items_per_second
        if f_rate is None or s_rate is None:
            return None
        return f_rate / s_rate

    def total_calls(self) -> int:
        return sum(counter.calls for counter in self.runs.values())

    def summary(self) -> str:
        """One paragraph per kernel, suitable for stderr reporting."""
        if not self.kernels():
            return "execution: no kernels run"
        lines = []
        for kernel in self.kernels():
            parts = []
            choice = self.choices.get(kernel)
            if choice is not None:
                backend, reason = choice
                parts.append(f"backend={backend}" + (f" ({reason})" if reason else ""))
            for backend in ("jit", "vector", "scalar"):
                counter = self.runs.get((kernel, backend))
                if counter is None:
                    continue
                parts.append(
                    f"{backend}: {counter.calls} call(s), "
                    f"{counter.work_items} item(s), {counter.seconds:.3f}s"
                )
            if kernel in self.jit_compiles:
                parts.append(
                    f"jit-compiles={self.jit_compiles[kernel]} "
                    f"({self.jit_compile_seconds.get(kernel, 0.0):.3f}s), "
                    f"cache-hits={self.jit_cache_hits.get(kernel, 0)}"
                )
            ratio = self.speedup(kernel)
            if ratio is not None:
                parts.append(f"speedup={ratio:.1f}x")
            for tier in self.fallback_tiers(kernel):
                key = (kernel, tier)
                where = self.fallback_locations.get(key, "")
                at = f" at {where}" if where else ""
                parts.append(
                    f"{tier}-fallbacks={self.fallbacks[key]} "
                    f"({self.fallback_reasons.get(key, '')}{at})"
                )
            lines.append(f"execution[{kernel}]: " + "; ".join(parts))
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self.runs.clear()
            self.choices.clear()
            self.fallbacks.clear()
            self.fallback_reasons.clear()
            self.fallback_locations.clear()
            self.jit_compiles.clear()
            self.jit_compile_seconds.clear()
            self.jit_cache_hits.clear()


#: Process-global counter, like ``repro.core.collect.collection_stats``.
execution_stats = ExecutionStats()
