"""Vectorized NumPy kernel-execution backend.

Executes all work-items of a batch of work-groups *at once*: every private
variable becomes a NumPy array over the active work-items ("lanes"),
``get_global_id``/``get_local_id`` evaluate to index arrays, straight-line
arithmetic maps onto ufuncs, and divergent control flow runs masked —
each statement receives the boolean array of lanes that reach it, and
``if``/``while``/``break``/``continue``/``return`` only narrow that mask.

The scalar interpreter (:mod:`repro.interp.executor`) stays the semantic
oracle.  Three rules keep the two backends bit-identical:

* Arithmetic happens in the same precision: lanes hold ``int64``/``float64``
  arrays, loads from narrower buffers are widened exactly like the scalar
  interpreter's ``.item()`` conversion, and integer division/modulo use the
  same truncate-toward-zero semantics as :func:`repro.interp.builtins.c_div`.
* Transcendental builtins (``exp``, ``log``, ``sin``, ``pow``, ...) are
  routed element-wise through the *same* ``math``-module implementations the
  scalar backend uses (via ``np.frompyfunc``), because NumPy's own float64
  loops may differ from libm by an ULP.  Only operations that are exact or
  correctly rounded by IEEE-754 (``+ - * / sqrt fabs floor ceil fmod ...``)
  use native NumPy kernels.
* Lanes are ordered exactly like the scalar schedule (work-groups in
  submission order, dimension-0-fastest within a group), so duplicate
  stores to one location resolve to the same "last writer".

Eligibility is decided per kernel by :func:`check_vectorizable`: barriers,
atomics, ``__local``/private arrays, and pointer indirection keep a kernel
on the scalar path (this includes every malleable-transformed kernel, whose
local atomic worklist has real ordering semantics).  At run time, any
construct the vectorizer cannot prove equivalent raises the internal
:class:`VectorizeFallback`; the executor then restores the output buffers
from a pre-run snapshot and transparently re-runs on the scalar backend, so
behaviour never regresses.

Known, documented divergence: a statement whose lanes *race* — one lane
reading a location another lane writes in the same statement — sees all
reads before all writes here, while the scalar interpreter interleaves
lanes.  Such intra-statement cross-lane races are undefined behaviour in
real OpenCL; no repository kernel contains one, and the differential suite
(`tests/interp/test_differential.py`) would flag any that appeared.

A second documented limit: lane integer arithmetic runs in ``int64``
(overflow wraps silently under ``np.errstate``), while the scalar oracle
uses unbounded Python ints.  Because two's-complement wrapping is exact
modulo 2**64 and buffer stores truncate, ``+ - * << & | ^`` chains still
agree with the oracle at every store; the backends can only diverge when
an intermediate wider than 64 bits feeds an operation that is *not* a
ring homomorphism modulo 2**64 — division, remainder, a comparison, a
right shift, or a float conversion (e.g. the product of three values near
2**40, then compared).  Shift counts outside ``[0, 64)`` are detected at
run time and fall back to the scalar path; wider intermediates are not,
so kernels relying on >64-bit integer precision must run with
``backend=scalar``.  No registry kernel does, and the differential suite
guards that envelope.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

import numpy as np

from ..frontend import ast
from ..frontend.semantics import KernelInfo, WORK_ITEM_BUILTINS
from ..obs import tracer
from .builtins import INT_IMPLS, MATH_IMPLS, c_div, c_mod
from .executor import KernelExecutor, KernelRuntimeError
from .ndrange import NDRange
from .stats import execution_stats

#: Recognised backend names, in precedence order for documentation.
#: ``auto`` tries jit -> vector -> scalar, stopping at the first tier
#: that accepts the kernel and launch.
BACKENDS = ("auto", "jit", "vector", "scalar")

#: ``auto`` keeps tiny launches on the scalar path: below this many total
#: work-items the per-batch NumPy dispatch overhead eats the win.
AUTO_MIN_WORK_ITEMS = 64

#: Upper bound on lanes per batch, so private variables stay cache-sized.
MAX_LANES_PER_BATCH = 1 << 16


class VectorizeFallback(Exception):
    """Internal signal: revert this launch to the scalar interpreter.

    ``location`` points at the construct that forced the fallback (when
    known), so stats and diagnostics can show *where*, not just *why*.
    """

    def __init__(self, why: str, location=None):
        super().__init__(why)
        self.location = location


@dataclass(frozen=True)
class Eligibility:
    """Whether a kernel can run on the vectorized backend, and why not.

    ``location`` is the source span of the disqualifying construct (None
    for whole-kernel reasons such as barrier/atomic usage).
    """

    eligible: bool
    reason: str = ""
    location: "ast.SourceLocation | None" = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.eligible


# ---------------------------------------------------------------------------
# Eligibility pass
# ---------------------------------------------------------------------------

_ELIGIBILITY_CACHE_ATTR = "_vector_eligibility"

#: Serialises eligibility *computation* across threads.  The memo is
#: published as an attribute on the :class:`KernelInfo` (an atomic store
#: under the GIL); without the lock, N threads first-touching the same
#: kernel concurrently would all run the AST walk and interleave their
#: publishes — double-checked locking makes first-touch compute-once.
_eligibility_lock = threading.Lock()


def check_vectorizable(info: KernelInfo) -> Eligibility:
    """Static applicability test for the vectorized backend.

    The result is memoized on the :class:`KernelInfo` so repeated launches
    (the dynamic scheduler enqueues the same kernel hundreds of times) pay
    for the AST walk once.  Thread-safe: concurrent first-touch from the
    serving layer's workers computes the walk exactly once.
    """
    cached = getattr(info, _ELIGIBILITY_CACHE_ATTR, None)
    if cached is not None:
        return cached
    with _eligibility_lock:
        cached = getattr(info, _ELIGIBILITY_CACHE_ATTR, None)
        if cached is not None:
            return cached
        result = _check_vectorizable(info)
        try:
            setattr(info, _ELIGIBILITY_CACHE_ATTR, result)
        except AttributeError:  # pragma: no cover - slotted KernelInfo variant
            pass
    return result


def _check_vectorizable(info: KernelInfo) -> Eligibility:
    if info.uses_barrier:
        return Eligibility(False, "work-group barriers need the cooperative "
                                  "scalar scheduler", info.kernel.location)
    if info.uses_atomics:
        return Eligibility(False, "atomics have ordering semantics the "
                                  "batched backend cannot reproduce",
                           info.kernel.location)
    functions = [(info.kernel.name, info)]
    functions += [(name, callee) for name, callee in info.user_functions.items()]
    known_calls = (
        set(WORK_ITEM_BUILTINS) | set(MATH_IMPLS) | set(INT_IMPLS)
        | set(info.user_functions)
    )
    for fn_name, fn_info in functions:
        where = "" if fn_info is info else f" (in helper {fn_name!r})"
        for node in ast.walk(fn_info.kernel.body):
            if isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    at = node.location
                    if decl.type.address_space == "local":
                        return Eligibility(
                            False, f"__local variable {decl.name!r}{where}", at)
                    if decl.array_dims:
                        return Eligibility(
                            False, f"private array {decl.name!r}{where}", at)
                    if decl.type.pointer:
                        return Eligibility(
                            False, f"pointer variable {decl.name!r}{where}", at)
            elif isinstance(node, ast.UnaryOp) and node.op in ("*", "&"):
                return Eligibility(False, f"pointer indirection{where}",
                                   node.location)
            elif (isinstance(node, (ast.UnaryOp, ast.PostfixOp))
                  and node.op in ("++", "--")
                  and fn_info.type_of(node.operand).pointer):
                return Eligibility(False, f"pointer increment{where}",
                                   node.location)
            elif (isinstance(node, ast.Assignment)
                  and fn_info.type_of(node.target).pointer):
                return Eligibility(False, f"pointer reassignment{where}",
                                   node.location)
            elif isinstance(node, ast.Cast) and node.type.pointer:
                return Eligibility(False, f"pointer cast{where}",
                                   node.location)
            elif isinstance(node, ast.BinaryOp):
                if (fn_info.type_of(node).pointer
                        or fn_info.type_of(node.left).pointer
                        or fn_info.type_of(node.right).pointer):
                    return Eligibility(False, f"pointer arithmetic{where}",
                                       node.location)
            elif isinstance(node, ast.Index):
                if not isinstance(node.base, ast.Identifier):
                    return Eligibility(
                        False, f"subscript of a computed pointer{where}",
                        node.location)
            elif isinstance(node, ast.Call) and node.name not in known_calls:
                return Eligibility(
                    False, f"unsupported builtin {node.name!r}{where}",
                    node.location)
    return Eligibility(True)


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


def resolve_backend(backend: str | None = None) -> str:
    """Normalise a backend request: explicit > ``DOPIA_BACKEND`` > ``auto``."""
    if backend is None:
        backend = os.environ.get("DOPIA_BACKEND") or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    return backend


def make_executor(
    info: KernelInfo,
    args: dict[str, Any],
    ndrange: NDRange,
    backend: str | None = None,
) -> "KernelExecutor | VectorizedExecutor":
    """Pick the execution backend for one launch.

    ``scalar`` forces the oracle; ``vector`` uses the batched backend for
    every eligible kernel (ineligible kernels still run — scalar — so the
    flag never breaks a program); ``jit`` additionally trace-compiles the
    launch to a straight-line NumPy program when the kernel is inside the
    JIT subset (reverting to ``vector`` when not); ``auto`` behaves like
    ``jit`` but keeps launches below :data:`AUTO_MIN_WORK_ITEMS` on the
    scalar path.
    """
    choice = resolve_backend(backend)
    name = info.kernel.name
    if choice == "scalar":
        _record_choice(name, "scalar", "forced by backend=scalar")
        return KernelExecutor(info, args, ndrange)
    eligibility = check_vectorizable(info)
    if not eligibility.eligible:
        _record_choice(name, "scalar", eligibility.reason)
        return KernelExecutor(info, args, ndrange)
    if choice == "auto" and ndrange.total_work_items < AUTO_MIN_WORK_ITEMS:
        _record_choice(
            name, "scalar",
            f"launch of {ndrange.total_work_items} work-items is below the "
            f"vectorization threshold ({AUTO_MIN_WORK_ITEMS})")
        return KernelExecutor(info, args, ndrange)
    if choice in ("auto", "jit"):
        from .codegen import JitExecutor, JitUnsupported, compile_cached

        try:
            compiled = compile_cached(info, args, ndrange)
        except JitUnsupported as exc:
            execution_stats.record_fallback(name, str(exc), exc.location,
                                            tier="jit")
            if tracer.enabled:
                tracer.instant("backend.fallback", "backend", kernel=name,
                               tier="jit", reason=str(exc))
                tracer.counter("backend.jit_fallbacks")
            _record_choice(name, "vector", f"jit declined: {exc}")
            return VectorizedExecutor(info, args, ndrange)
        _record_choice(name, "jit", "compiled")
        return JitExecutor(info, args, ndrange, compiled)
    _record_choice(name, "vector", "eligible")
    return VectorizedExecutor(info, args, ndrange)


def _record_choice(name: str, backend: str, reason: str) -> None:
    """Record a backend decision in the stats and (when on) the tracer."""
    execution_stats.record_choice(name, backend, reason)
    if tracer.enabled:
        tracer.instant("backend.choice", "backend",
                       kernel=name, backend=backend, reason=reason)
        tracer.counter(f"backend.{backend}_launches")


# ---------------------------------------------------------------------------
# Exact element-wise builtins
# ---------------------------------------------------------------------------

def _pyfunc(fn: Callable) -> Callable:
    """Element-wise float64 map through a Python ``math`` implementation."""
    ufunc = np.frompyfunc(fn, _arity(fn), 1)

    def apply(*arrays):
        return ufunc(*arrays).astype(np.float64)

    return apply


def _arity(fn: Callable) -> int:
    try:
        import inspect

        return len(inspect.signature(fn).parameters)
    except (TypeError, ValueError):  # pragma: no cover - C-implemented libm
        return 1


#: Math builtins whose NumPy float64 kernels are exact or correctly rounded
#: (IEEE-754 requires it for these), hence bit-identical to ``math``.
_NATIVE_MATH: dict[str, Callable] = {
    "sqrt": np.sqrt,
    "rsqrt": lambda x: np.divide(1.0, np.sqrt(x)),
    "fabs": np.abs,
    "fmax": np.maximum,
    "fmin": np.minimum,
    "fmod": np.fmod,
    "mad": lambda a, b, c: a * b + c,
    "fma": lambda a, b, c: a * b + c,
    "clamp": lambda x, lo, hi: np.minimum(np.maximum(x, lo), hi),
}

#: ``math.floor``/``math.ceil`` return Python ints — mirror that exactly
#: (the integer-ness matters: ``floor(x) / 2`` is *integer* division).
_INT_RESULT_MATH = {
    "floor": np.floor,
    "ceil": np.ceil,
}

#: Everything else (transcendentals) goes through the scalar backend's own
#: ``math`` implementations, element-wise, to stay bit-identical.
_WRAPPED_MATH: dict[str, Callable] = {
    name: _pyfunc(impl)
    for name, impl in MATH_IMPLS.items()
    if name not in _NATIVE_MATH and name not in _INT_RESULT_MATH
}

#: Inputs on which the scalar backend's ``math`` implementation raises
#: (ValueError / OverflowError / ZeroDivisionError) but the NumPy kernel
#: would silently produce a NaN/inf under ``np.errstate``.  Each predicate
#: flags the offending lanes; any *active* hit reverts the launch to the
#: scalar path so the oracle's exception (and partial stores) are exact.
_MATH_DOMAIN_CHECKS: dict[str, Callable] = {
    "sqrt": lambda x: np.less(x, 0),
    "rsqrt": lambda x: np.less_equal(x, 0),
    "fmod": lambda x, y: np.isinf(x) | np.equal(y, 0),
    "floor": lambda x: ~np.isfinite(x),
    "ceil": lambda x: ~np.isfinite(x),
}

#: Exceptions the scalar ``math`` implementations raise on domain/overflow
#: errors; under the vector backend they trigger the transparent fallback.
_MATH_ERRORS = (ValueError, OverflowError, ZeroDivisionError)

_VEC_INT: dict[str, Callable] = {
    "abs": np.abs,
    "min": np.minimum,
    "max": np.maximum,
    "mul24": lambda a, b: a * b,
    "mad24": lambda a, b, c: a * b + c,
}

_WORK_ITEM_QUERIES = frozenset(WORK_ITEM_BUILTINS) - {"get_work_dim"}


def _is_arr(value: Any) -> bool:
    return isinstance(value, np.ndarray)


def _as_int(value: Any) -> Any:
    """Truncate-toward-zero conversion matching Python's ``int()``."""
    if _is_arr(value):
        if value.dtype == np.int64:
            return value
        return value.astype(np.int64)
    return int(value)


def _as_float(value: Any) -> Any:
    if _is_arr(value):
        if value.dtype == np.float64:
            return value
        return value.astype(np.float64)
    return float(value)


def _is_float_kind(value: Any) -> bool:
    if _is_arr(value):
        return value.dtype.kind == "f"
    return isinstance(value, float)


# ---------------------------------------------------------------------------
# Lane geometry
# ---------------------------------------------------------------------------


class _Lanes:
    """Identity arrays for a batch of work-groups.

    Lane order is (groups in submission order) × (local ids,
    dimension 0 fastest) — i.e. exactly the scalar interpreter's execution
    order, so "last writer wins" resolves identically.
    """

    def __init__(self, ndrange: NDRange, group_ids: list[tuple[int, ...]]):
        per_group = ndrange.work_items_per_group
        self.count = per_group * len(group_ids)
        linear = np.tile(np.arange(per_group, dtype=np.int64), len(group_ids))
        self.local: list[np.ndarray] = []
        stride = 1
        for dim in range(ndrange.work_dim):
            size = ndrange.local_size[dim]
            self.local.append((linear // stride) % size)
            stride *= size
        groups = np.asarray(group_ids, dtype=np.int64).reshape(
            len(group_ids), ndrange.work_dim)
        self.group = [
            np.repeat(groups[:, dim], per_group)
            for dim in range(ndrange.work_dim)
        ]
        self.global_ = [
            ndrange.offset[dim]
            + self.group[dim] * ndrange.local_size[dim]
            + self.local[dim]
            for dim in range(ndrange.work_dim)
        ]


class _Frame:
    """Per-function-call state: return mask/value and the loop stack."""

    __slots__ = ("returned", "value", "loops")

    def __init__(self, count: int):
        self.returned = np.zeros(count, dtype=bool)
        self.value: Any = None
        self.loops: list["_LoopCtx"] = []


class _LoopCtx:
    __slots__ = ("broken", "continued")

    def __init__(self, count: int):
        self.broken = np.zeros(count, dtype=bool)
        self.continued = np.zeros(count, dtype=bool)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class VectorizedExecutor:
    """Drop-in replacement for :class:`KernelExecutor` on eligible kernels.

    Construction validates arguments with the same rules as the scalar
    executor (it builds one, which doubles as the fallback path).  ``run``
    snapshots the output buffers, executes batched, and on any
    :class:`VectorizeFallback` restores the snapshot and re-runs the whole
    launch on the scalar interpreter — callers cannot observe which backend
    did the work except through :data:`repro.interp.stats.execution_stats`.
    """

    def __init__(self, info: KernelInfo, args: dict[str, Any], ndrange: NDRange):
        self.info = info
        self.ndrange = ndrange
        self.scalar = KernelExecutor(info, args, ndrange)
        self.args = self.scalar.args
        self.used_fallback = False

    # -- public API (mirrors KernelExecutor) ---------------------------------

    def run(self, group_ids: Optional[Iterable[tuple[int, ...]]] = None) -> None:
        groups = list(group_ids if group_ids is not None else
                      self.ndrange.group_ids())
        if not groups:
            return
        buffers = {
            name: self.args[name]
            for name in self.info.buffer_params
            if isinstance(self.args.get(name), np.ndarray)
        }
        snapshot = {name: array.copy() for name, array in buffers.items()}
        started = time.perf_counter()
        try:
            per_group = self.ndrange.work_items_per_group
            batch = max(1, MAX_LANES_PER_BATCH // max(1, per_group))
            with np.errstate(all="ignore"):
                for start in range(0, len(groups), batch):
                    _BatchRun(self, groups[start:start + batch]).run()
        except VectorizeFallback as exc:
            for name, saved in snapshot.items():
                buffers[name][...] = saved
            self.used_fallback = True
            execution_stats.record_fallback(self.info.kernel.name, str(exc),
                                            getattr(exc, "location", None))
            if tracer.enabled:
                tracer.instant("backend.fallback", "backend",
                               kernel=self.info.kernel.name, reason=str(exc))
                tracer.counter("backend.fallbacks")
            self.scalar.run(groups)
            return
        execution_stats.record_run(
            self.info.kernel.name, "vector",
            len(groups) * self.ndrange.work_items_per_group,
            time.perf_counter() - started,
        )

    def run_group(self, group_id: tuple[int, ...]) -> None:
        self.run([group_id])


class _BatchRun:
    """One masked-SIMT pass over a batch of work-groups."""

    def __init__(self, executor: VectorizedExecutor,
                 group_ids: list[tuple[int, ...]]):
        self.ex = executor
        self.info = executor.info
        self.ndrange = executor.ndrange
        self.lanes = _Lanes(executor.ndrange, group_ids)
        self.count = self.lanes.count
        self.full = np.ones(self.count, dtype=bool)
        self.env: dict[str, Any] = dict(executor.args)
        #: Variables first bound under a divergent mask: name -> the lanes
        #: that actually executed a binding.  Reads check it (see ``_eval``);
        #: fully-bound variables are absent.
        self.partially_bound: dict[str, np.ndarray] = {}
        self.frames: list[_Frame] = [_Frame(self.count)]

    def run(self) -> None:
        self._exec_stmt(self.info.kernel.body, self.full)

    # -- helpers -------------------------------------------------------------

    def _fallback(self, why: str, node: Any = None) -> VectorizeFallback:
        return VectorizeFallback(why, getattr(node, "location", None))

    def _truth(self, value: Any) -> Any:
        """Branch condition: Python bool if uniform, bool array if varying."""
        if _is_arr(value):
            return value != 0
        return bool(value)

    def _coerce(self, value: Any, ctype: ast.CType) -> Any:
        if ctype.pointer:
            return value
        if ctype.is_float:
            return _as_float(value)
        return _as_int(value)

    def _blend(self, new: Any, old: Any, mask: np.ndarray) -> Any:
        """Lane-wise select: ``new`` where active, ``old`` elsewhere."""
        return np.where(mask, new, old)

    def _bind(self, name: str, value: Any, mask: np.ndarray) -> None:
        if mask is self.full or bool(mask.all()):
            self.env[name] = value
            self.partially_bound.pop(name, None)
            return
        old = self.env.get(name)
        if old is None:
            # First binding happens under divergence: the inactive lanes do
            # not have this variable (the scalar backend would raise
            # 'unbound identifier' if they read it).  Record which lanes are
            # live and give the rest an inert placeholder; reads validate
            # against the recorded mask.
            self.partially_bound[name] = mask.copy()
            old = 0.0 if _is_float_kind(value) else 0
        else:
            bound = self.partially_bound.get(name)
            if bound is not None:
                bound |= mask
                if bool(bound.all()):
                    del self.partially_bound[name]
        self.env[name] = self._blend(value, old, mask)

    def _ident_type(self, name: str) -> Optional[ast.CType]:
        symbol = self.info.symbols.lookup(name)
        return symbol.type if symbol is not None else None

    # -- statements ----------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, mask: np.ndarray) -> np.ndarray:
        """Execute ``stmt`` for the lanes in ``mask``; return the survivors
        (lanes that fall through to the next statement)."""
        kind = type(stmt)
        if kind is ast.Block:
            current = mask
            for inner in stmt.body:
                current = self._exec_stmt(inner, current)
                if not current.any():
                    break
            return current
        if kind is ast.DeclStmt:
            for decl in stmt.decls:
                if decl.init is not None:
                    value = self._coerce(self._eval(decl.init, mask), decl.type)
                else:
                    value = 0.0 if decl.type.is_float else 0
                self._bind(decl.name, value, mask)
            return mask
        if kind is ast.ExprStmt:
            self._eval(stmt.expr, mask)
            return mask
        if kind is ast.If:
            return self._exec_if(stmt, mask)
        if kind is ast.For:
            return self._exec_for(stmt, mask)
        if kind is ast.While:
            return self._exec_loop(stmt.cond, stmt.body, None, mask,
                                   test_first=True)
        if kind is ast.DoWhile:
            return self._exec_loop(stmt.cond, stmt.body, None, mask,
                                   test_first=False)
        if kind is ast.Return:
            frame = self.frames[-1]
            if stmt.value is not None:
                value = self._eval(stmt.value, mask)
                if frame.value is None:
                    frame.value = self._blend(value, 0, mask) \
                        if not bool(mask.all()) else value
                else:
                    if _is_float_kind(frame.value) != _is_float_kind(value):
                        # np.where would float-promote the earlier int
                        # returns; the oracle keeps each lane's own type.
                        raise self._fallback(
                            "return values with mixed int/float types", stmt)
                    frame.value = self._blend(value, frame.value, mask)
            frame.returned = frame.returned | mask
            return np.zeros(self.count, dtype=bool)
        if kind is ast.Break:
            if not self.frames[-1].loops:
                raise self._fallback("break outside of a loop", stmt)
            ctx = self.frames[-1].loops[-1]
            ctx.broken = ctx.broken | mask
            return np.zeros(self.count, dtype=bool)
        if kind is ast.Continue:
            if not self.frames[-1].loops:
                raise self._fallback("continue outside of a loop", stmt)
            ctx = self.frames[-1].loops[-1]
            ctx.continued = ctx.continued | mask
            return np.zeros(self.count, dtype=bool)
        raise self._fallback(f"unsupported statement {kind.__name__}", stmt)

    def _exec_if(self, stmt: ast.If, mask: np.ndarray) -> np.ndarray:
        taken = self._truth(self._eval(stmt.cond, mask))
        if not _is_arr(taken):
            if taken:
                return self._exec_stmt(stmt.then, mask)
            if stmt.otherwise is not None:
                return self._exec_stmt(stmt.otherwise, mask)
            return mask
        then_mask = mask & taken
        else_mask = mask & ~taken
        out_then = self._exec_stmt(stmt.then, then_mask) \
            if then_mask.any() else then_mask
        if stmt.otherwise is not None and else_mask.any():
            out_else = self._exec_stmt(stmt.otherwise, else_mask)
        else:
            out_else = else_mask
        return out_then | out_else

    def _exec_for(self, stmt: ast.For, mask: np.ndarray) -> np.ndarray:
        if stmt.init is not None:
            if isinstance(stmt.init, ast.DeclStmt):
                self._exec_stmt(stmt.init, mask)
            elif isinstance(stmt.init, ast.ExprStmt):
                self._eval(stmt.init.expr, mask)
        step = stmt.step

        def run_step(active: np.ndarray) -> None:
            if step is not None:
                self._eval(step, active)

        return self._exec_loop(stmt.cond, stmt.body,
                               run_step if step is not None else None,
                               mask, test_first=True)

    def _exec_loop(
        self,
        cond: Optional[ast.Expr],
        body: ast.Stmt,
        step: Optional[Callable[[np.ndarray], None]],
        mask: np.ndarray,
        test_first: bool,
    ) -> np.ndarray:
        """Shared engine for ``for``/``while``/``do-while``.

        ``active`` tracks lanes still iterating; lanes leave through the
        condition (collected in ``exited``), through ``break`` (the loop
        context), or through ``return`` (the frame).  The loop body runs as
        long as any lane remains.
        """
        active = mask.copy()
        exited = np.zeros(self.count, dtype=bool)
        ctx = _LoopCtx(self.count)
        frame = self.frames[-1]
        frame.loops.append(ctx)
        try:
            first = True
            while True:
                if cond is not None and (test_first or not first):
                    taken = self._truth(self._eval(cond, active))
                    if _is_arr(taken):
                        exited = exited | (active & ~taken)
                        active = active & taken
                    elif not taken:
                        exited = exited | active
                        active = np.zeros(self.count, dtype=bool)
                first = False
                if not active.any():
                    break
                active = self._exec_stmt(body, active)
                if ctx.continued.any():
                    active = active | ctx.continued
                    ctx.continued[:] = False
                if step is not None and active.any():
                    step(active)
        finally:
            frame.loops.pop()
        return exited | ctx.broken

    # -- expressions ---------------------------------------------------------

    def _eval(self, expr: ast.Expr, mask: np.ndarray) -> Any:
        kind = type(expr)
        if kind is ast.IntLiteral:
            return expr.value
        if kind is ast.FloatLiteral:
            return expr.value
        if kind is ast.Identifier:
            try:
                value = self.env[expr.name]
            except KeyError:
                raise KernelRuntimeError(
                    f"unbound identifier {expr.name!r}"
                ) from None
            bound = self.partially_bound.get(expr.name)
            if bound is not None and bool((mask & ~bound).any()):
                # An active lane reads a variable only ever assigned on
                # *other* lanes (e.g. in a divergent branch this lane never
                # took).  The scalar backend reports that kernel bug as
                # 'unbound identifier'; rerun there instead of silently
                # substituting the placeholder.
                raise self._fallback(
                    f"read of {expr.name!r} on a lane that never bound it",
                    expr)
            return value
        if kind is ast.BinaryOp:
            return self._eval_binary(expr, mask)
        if kind is ast.UnaryOp:
            return self._eval_unary(expr, mask)
        if kind is ast.PostfixOp:
            old = self._eval(expr.operand, mask)
            delta = 1 if expr.op == "++" else -1
            self._store(expr.operand, old + delta, mask)
            return old
        if kind is ast.Assignment:
            value = self._eval(expr.value, mask)
            if expr.op != "=":
                old = self._eval(expr.target, mask)
                value = self._binop(expr.op[:-1], old, value, mask, expr)
            self._store(expr.target, value, mask)
            return value
        if kind is ast.Conditional:
            return self._eval_conditional(expr, mask)
        if kind is ast.Index:
            return self._load(expr, mask)
        if kind is ast.Cast:
            return self._coerce(self._eval(expr.operand, mask), expr.type)
        if kind is ast.Call:
            return self._eval_call(expr, mask)
        raise self._fallback(f"unsupported expression {kind.__name__}", expr)

    def _eval_conditional(self, expr: ast.Conditional, mask: np.ndarray) -> Any:
        taken = self._truth(self._eval(expr.cond, mask))
        if not _is_arr(taken):
            branch = expr.then if taken else expr.otherwise
            return self._eval(branch, mask)
        then_mask = mask & taken
        else_mask = mask & ~taken
        then_val = self._eval(expr.then, then_mask) if then_mask.any() else None
        else_val = (self._eval(expr.otherwise, else_mask)
                    if else_mask.any() else None)
        if then_val is None and else_val is None:
            return 0
        if then_val is None:
            then_val = 0.0 if _is_float_kind(else_val) else 0
        elif else_val is None:
            else_val = 0.0 if _is_float_kind(then_val) else 0
        elif _is_float_kind(then_val) != _is_float_kind(else_val):
            # np.where would promote the int side to float64 on every lane;
            # the scalar oracle keeps each lane's own branch type (an int
            # lane then divides with C truncation).  Punt to the oracle.
            raise self._fallback("ternary with mixed int/float branch types",
                                 expr)
        return np.where(taken, then_val, else_val)

    def _eval_binary(self, expr: ast.BinaryOp, mask: np.ndarray) -> Any:
        op = expr.op
        if op in ("&&", "||"):
            return self._eval_logical(expr, mask, is_and=(op == "&&"))
        left = self._eval(expr.left, mask)
        right = self._eval(expr.right, mask)
        return self._binop(op, left, right, mask, expr)

    def _eval_logical(self, expr: ast.BinaryOp, mask: np.ndarray,
                      is_and: bool) -> Any:
        """Short-circuit semantics, per lane.

        The right operand is evaluated only under the lanes that need it
        (those where the left side did not already decide the result), which
        makes guard patterns like ``i < n && A[i] > 0`` safe: the clipped
        lanes never touch ``A`` out of bounds.
        """
        left = self._truth(self._eval(expr.left, mask))
        if not _is_arr(left):
            if bool(left) != is_and:
                # && with a false left / || with a true left: short circuit.
                return int(left)
            right = self._truth(self._eval(expr.right, mask))
            if _is_arr(right):
                return right.astype(np.int64)
            return int(right)
        need_right = mask & (left if is_and else ~left)
        if need_right.any():
            right = self._truth(self._eval(expr.right, need_right))
        else:
            right = False
        combined = (left & right) if is_and else (left | right)
        return combined.astype(np.int64)

    def _binop(self, op: str, left: Any, right: Any, mask: np.ndarray,
               node: Any = None) -> Any:
        if not _is_arr(left) and not _is_arr(right):
            return self._uniform_binop(op, left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return self._vec_div(left, right, mask)
        if op == "%":
            return self._vec_mod(left, right, mask)
        if op == "==":
            return (left == right).astype(np.int64)
        if op == "!=":
            return (left != right).astype(np.int64)
        if op == "<":
            return (left < right).astype(np.int64)
        if op == ">":
            return (left > right).astype(np.int64)
        if op == "<=":
            return (left <= right).astype(np.int64)
        if op == ">=":
            return (left >= right).astype(np.int64)
        if op == "<<" or op == ">>":
            # int64 lanes vs the oracle's unbounded Python ints: a count
            # outside [0, 64) is a ValueError (negative) or well-defined
            # (Python) where NumPy's C shift is undefined.  Rerun on the
            # scalar path, which gets both cases exactly right.
            amount = _as_int(right)
            if _is_arr(amount):
                if bool((mask & ((amount < 0) | (amount >= 64))).any()):
                    raise self._fallback(
                        "shift amount outside [0, 64) on an active lane",
                        node)
            elif not 0 <= amount < 64:
                raise self._fallback(
                    f"shift amount {amount} outside [0, 64)", node)
            shift = np.left_shift if op == "<<" else np.right_shift
            return shift(_as_int(left), amount)
        if op == "&":
            return np.bitwise_and(_as_int(left), _as_int(right))
        if op == "|":
            return np.bitwise_or(_as_int(left), _as_int(right))
        if op == "^":
            return np.bitwise_xor(_as_int(left), _as_int(right))
        if op == ",":
            return right
        raise self._fallback(f"unsupported binary operator {op!r}", node)

    @staticmethod
    def _uniform_binop(op: str, left: Any, right: Any) -> Any:
        """Uniform operands: the scalar interpreter's exact code path."""
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return c_div(left, right)
        if op == "%":
            return c_mod(left, right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == ",":
            return right
        raise VectorizeFallback(f"unsupported binary operator {op!r}")

    def _check_active_zero(self, right: Any, mask: np.ndarray) -> None:
        """Match the scalar backend: dividing by zero on an *active* lane
        raises; inactive lanes may hold anything."""
        if _is_arr(right):
            if bool((mask & (right == 0)).any()):
                raise ZeroDivisionError("division by zero")
        elif right == 0 and bool(mask.any()):
            raise ZeroDivisionError("division by zero")

    def _vec_div(self, left: Any, right: Any, mask: np.ndarray) -> Any:
        self._check_active_zero(right, mask)
        if _is_float_kind(left) or _is_float_kind(right):
            return np.divide(left, right)
        quotient = np.floor_divide(left, right)
        # floor -> truncate toward zero, as C requires.
        inexact = quotient * right != left
        negative = (np.less(left, 0)) != (np.less(right, 0))
        return quotient + (inexact & negative)

    def _vec_mod(self, left: Any, right: Any, mask: np.ndarray) -> Any:
        self._check_active_zero(right, mask)
        if _is_float_kind(left) or _is_float_kind(right):
            return np.fmod(left, right)
        return left - self._vec_div(left, right, mask) * right

    def _eval_unary(self, expr: ast.UnaryOp, mask: np.ndarray) -> Any:
        op = expr.op
        if op in ("++", "--"):
            old = self._eval(expr.operand, mask)
            new = old + (1 if op == "++" else -1)
            self._store(expr.operand, new, mask)
            return new
        operand = self._eval(expr.operand, mask)
        if op == "-":
            return -operand
        if op == "!":
            truth = self._truth(operand)
            if _is_arr(truth):
                return (~truth).astype(np.int64)
            return int(not truth)
        if op == "~":
            return ~_as_int(operand)
        raise self._fallback(f"unsupported unary operator {op!r}", expr)

    # -- memory --------------------------------------------------------------

    def _buffer(self, expr: ast.Expr, mask: np.ndarray) -> np.ndarray:
        base = self._eval(expr, mask)
        if not isinstance(base, np.ndarray):
            raise self._fallback("subscript of a non-buffer value", expr)
        return base

    def _check_bounds(self, index: Any, limit: int, mask: np.ndarray) -> None:
        if _is_arr(index):
            bad = mask & ((index < 0) | (index >= limit))
            if bool(bad.any()):
                offending = int(index[bad][0])
                raise KernelRuntimeError(
                    f"out-of-bounds access: index {offending} into buffer of "
                    f"{limit} elements"
                )
        elif not 0 <= index < limit:
            raise KernelRuntimeError(
                f"out-of-bounds access: index {index} into buffer of "
                f"{limit} elements"
            )

    def _load(self, expr: ast.Index, mask: np.ndarray) -> Any:
        base = self._buffer(expr.base, mask)
        index = _as_int(self._eval(expr.index, mask))
        limit = base.shape[0]
        if not bool(mask.any()):
            return 0.0 if base.dtype.kind == "f" else 0
        self._check_bounds(index, limit, mask)
        if not _is_arr(index):
            value = base[index]
            return value.item() if isinstance(value, np.generic) else value
        gathered = base[np.where(mask, index, 0)]
        # Widen to interpreter precision, as the scalar ``.item()`` does.
        if gathered.dtype.kind == "f":
            return _as_float(gathered)
        return _as_int(gathered)

    def _store(self, target: ast.Expr, value: Any, mask: np.ndarray) -> None:
        if isinstance(target, ast.Identifier):
            current = self.env.get(target.name)
            if _is_float_kind(current):
                value = _as_float(value)
            elif current is not None and not _is_float_kind(current):
                ctype = self._ident_type(target.name)
                if ctype is not None and not ctype.is_float and not ctype.pointer:
                    value = _as_int(value)
            self._bind(target.name, value, mask)
            return
        if isinstance(target, ast.Index):
            self._store_element(target, value, mask)
            return
        raise self._fallback("unsupported assignment target", target)

    def _store_element(self, target: ast.Index, value: Any,
                       mask: np.ndarray) -> None:
        base = self._buffer(target.base, mask)
        if not bool(mask.any()):
            return
        index = _as_int(self._eval(target.index, mask))
        self._check_bounds(index, base.shape[0], mask)
        if not _is_arr(index):
            # All active lanes hit one slot; the scalar schedule makes the
            # *last* active lane the winner.
            if _is_arr(value):
                base[index] = value[mask][-1]
            else:
                base[index] = value
            return
        if bool(mask.all()):
            base[index] = value
        elif _is_arr(value):
            base[index[mask]] = value[mask]
        else:
            base[index[mask]] = value

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, mask: np.ndarray) -> Any:
        name = expr.name
        if name in _WORK_ITEM_QUERIES:
            return self._work_item_query(name, expr, mask)
        if name == "get_work_dim":
            return self.ndrange.work_dim
        if name in MATH_IMPLS:
            return self._math_call(name, expr, mask)
        if name in INT_IMPLS:
            args = [self._eval(arg, mask) for arg in expr.args]
            if not any(_is_arr(arg) for arg in args):
                return INT_IMPLS[name](*args)
            return _VEC_INT[name](*args)
        if name in self.info.user_functions:
            return self._call_user_function(name, expr, mask)
        raise self._fallback(f"call to unsupported function {name!r}", expr)

    def _work_item_query(self, name: str, expr: ast.Call,
                         mask: np.ndarray) -> Any:
        dim_value = self._eval(expr.args[0], mask) if expr.args else 0
        if _is_arr(dim_value):
            raise self._fallback(f"{name} with a divergent dimension argument",
                                 expr)
        dim = int(dim_value)
        nd = self.ndrange
        if name == "get_global_id":
            return self.lanes.global_[dim] if dim < nd.work_dim else 0
        if name == "get_local_id":
            return self.lanes.local[dim] if dim < nd.work_dim else 0
        if name == "get_group_id":
            return self.lanes.group[dim] if dim < nd.work_dim else 0
        if name == "get_global_size":
            return nd.global_size[dim] if dim < nd.work_dim else 1
        if name == "get_local_size":
            return nd.local_size[dim] if dim < nd.work_dim else 1
        if name == "get_num_groups":
            return nd.num_groups[dim] if dim < nd.work_dim else 1
        if name == "get_global_offset":
            return nd.offset[dim] if dim < nd.work_dim else 0
        raise self._fallback(f"unknown work-item query {name}", expr)

    def _math_call(self, name: str, expr: ast.Call, mask: np.ndarray) -> Any:
        """Evaluate a math builtin on the *active* lanes only.

        Lanes masked off by divergent control flow never reach the builtin
        in the scalar schedule, so they must not be able to raise here
        (``log`` of a guarded-out negative, ``exp`` overflow, ...).  Array
        arguments are compressed to the active lanes before the call and
        the result is scattered back, with inactive lanes holding a zero
        placeholder that masked stores/blends never observe.  An error on
        an *active* lane — where the scalar backend would raise — reverts
        the launch to the scalar path so the oracle's exact exception and
        partial buffer state are reproduced.
        """
        args = [_as_float(self._eval(arg, mask)) for arg in expr.args]
        if not any(_is_arr(arg) for arg in args):
            if not bool(mask.any()):
                return 0.0
            try:
                return MATH_IMPLS[name](*args)
            except _MATH_ERRORS as exc:
                raise self._fallback(f"math builtin {name!r}: {exc}", expr) from exc
        if not bool(mask.any()):
            return np.zeros(self.count, dtype=np.float64)
        full = bool(mask.all())
        packed = args if full else \
            [arg[mask] if _is_arr(arg) else arg for arg in args]
        check = _MATH_DOMAIN_CHECKS.get(name)
        if check is not None and bool(np.any(check(*packed))):
            raise self._fallback(
                f"math builtin {name!r}: domain error on an active lane", expr)
        try:
            if name in _NATIVE_MATH:
                result = _NATIVE_MATH[name](*packed)
            elif name in _INT_RESULT_MATH:
                result = _as_int(_INT_RESULT_MATH[name](*packed))
            else:
                result = _WRAPPED_MATH[name](*packed)
        except _MATH_ERRORS as exc:
            raise self._fallback(f"math builtin {name!r}: {exc}", expr) from exc
        if full:
            return result
        out = np.zeros(self.count, dtype=result.dtype)
        out[mask] = result
        return out

    def _call_user_function(self, name: str, expr: ast.Call,
                            mask: np.ndarray) -> Any:
        callee = self.info.user_functions[name]
        values = [self._eval(arg, mask) for arg in expr.args]
        saved_env = self.env
        saved_partial = self.partially_bound
        saved_info = self.info
        self.env = {}
        self.partially_bound = {}
        for param, value in zip(callee.kernel.params, values):
            self.env[param.name] = (
                value if param.type.pointer else self._coerce(value, param.type)
            )
        self.info = callee
        frame = _Frame(self.count)
        self.frames.append(frame)
        try:
            self._exec_stmt(callee.kernel.body, mask)
        finally:
            self.frames.pop()
            self.env = saved_env
            self.partially_bound = saved_partial
            self.info = saved_info
        if callee.kernel.return_type.name == "void":
            return None
        missed = mask & ~frame.returned
        if bool(missed.any()) or frame.value is None:
            raise KernelRuntimeError(
                f"helper function {name!r} ended without returning a value"
            )
        return frame.value
