"""JIT tier: trace-compile eligible kernels to straight-line NumPy programs.

The vectorized backend (:mod:`repro.interp.vectorize`) interprets the
kernel AST per statement under lane masks.  This module removes the
interpretive overhead for the common case: it lowers an eligible kernel
AST plus one concrete launch (a :class:`repro.analysis.verify.LaunchSpec`)
to Python/NumPy *source*, ``exec``-compiles it once, and caches the
compiled function per (kernel, launch shape, buffer dtypes).

Specialization model (KLARAPTOR-style per-launch-shape programs):

* every scalar kernel argument and the full ND-range geometry are
  compile-time constants folded into the generated source;
* ``get_global_id``/``get_local_id``/``get_group_id`` become ``int64``
  index arrays passed in per batch (the same ``_Lanes`` arrays the
  vector backend uses, so lane order — and therefore "last writer
  wins" — is identical to the scalar schedule);
* uniform control flow (loops and branches whose conditions do not vary
  across lanes) compiles to plain Python ``while``/``if`` around
  whole-array expressions — **no per-lane masks**;
* a divergent branch compiles Triton-style: one boolean mask per branch
  nest, with gathers clamped and scatters compressed under it.  For the
  registry kernels the only divergence is the boundary guard, so the
  mask materializes exactly on the ragged edge of the launch.

An interval analysis over single-assignment integers proves guards like
``if (i < n)`` true at compile time whenever the launch is exact
(``get_global_id(0)`` ranges over ``[offset, offset+gsize)``), which
erases both the guard and its mask.  The same intervals prove most
affine accesses in bounds, eliding the bounds check per access; when
that local proof fails, a cached OOB-clean verdict from
:func:`repro.analysis.verify.verify_launch_cached` elides the check for
the whole kernel.  ``unknown``/dirty verdicts keep the checks, which on
failure revert the launch to the vector tier (which itself reverts to
the scalar oracle).

Exactness contract: generated code computes in the same precision and
through the same primitives as the vector backend (int64/float64 lanes,
``c_div`` truncation, ``math``-module transcendentals, loads widened
like ``.item()``), so it inherits the vectorize module's documented
bit-identity envelope against the scalar oracle.  Anything the compiler
cannot prove it refuses at compile time (:class:`JitUnsupported`); any
runtime surprise — a guard trip, a domain error, even a compiler bug —
restores the pre-run buffer snapshot and re-runs the launch on the
vector tier, so behaviour can never regress, only speed.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

import numpy as np

from ..frontend import ast
from ..frontend.semantics import KernelInfo, WORK_ITEM_BUILTINS
from ..obs import tracer
from .builtins import INT_IMPLS, MATH_IMPLS, c_div, c_mod
from .executor import _INT_TYPE_NAMES
from .ndrange import NDRange
from .stats import execution_stats
from .vectorize import (
    MAX_LANES_PER_BATCH,
    VectorizedExecutor,
    _INT_RESULT_MATH,
    _Lanes,
    _MATH_DOMAIN_CHECKS,
    _MATH_ERRORS,
    _NATIVE_MATH,
    _VEC_INT,
    _WRAPPED_MATH,
)

__all__ = [
    "CompiledKernel",
    "JitExecutor",
    "JitUnsupported",
    "compile_cached",
    "compile_kernel",
    "jit_cache_stats",
]


class JitUnsupported(Exception):
    """The kernel (or this launch of it) is outside the JIT subset.

    Raised — and negatively cached — at compile time; the caller reverts
    to the vector tier.  ``location`` points at the offending construct.
    """

    def __init__(self, why: str, location=None):
        super().__init__(why)
        self.location = location


class JitRuntimeGuard(Exception):
    """A runtime check in generated code tripped (OOB, shift range, ...).

    Never escapes :meth:`JitExecutor.run`: the executor restores the
    buffer snapshot and re-runs on the vector tier, which reproduces the
    oracle's exact behaviour (including its exception, if any).
    """


#: Interval bounds beyond this are dropped: lane arithmetic runs in
#: int64, so proofs must stay well inside its range to stay sound.
_RANGE_LIMIT = 1 << 62

_WORK_ITEM_QUERIES = frozenset(WORK_ITEM_BUILTINS) - {"get_work_dim"}

#: Maps get_* query name -> (_Lanes attribute, generated parameter prefix).
_ID_ATTRS = {
    "get_global_id": ("global_", "_g"),
    "get_local_id": ("local", "_l"),
    "get_group_id": ("group", "_grp"),
}


# ---------------------------------------------------------------------------
# Runtime support library for generated code
# ---------------------------------------------------------------------------


def _widen(value: np.ndarray) -> Any:
    if value.dtype.kind == "f":
        return value if value.dtype == np.float64 else value.astype(np.float64)
    return value if value.dtype == np.int64 else value.astype(np.int64)


class _Runtime:
    """Helpers the generated source calls as ``rt.<name>(...)``.

    Every guard raises :class:`JitRuntimeGuard` (or a natural Python
    error), which the executor converts into a transparent vector-tier
    re-run — so these helpers only need to *detect* divergence from the
    oracle, never to reproduce its exact exception.
    """

    JitRuntimeGuard = JitRuntimeGuard

    @staticmethod
    def as_int(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return value if value.dtype == np.int64 else value.astype(np.int64)
        return int(value)

    @staticmethod
    def as_float(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return value if value.dtype == np.float64 \
                else value.astype(np.float64)
        return float(value)

    # -- memory --------------------------------------------------------------

    @staticmethod
    def load_u(base: np.ndarray, idx: Any, mask: Any, limit: Any) -> Any:
        if mask is not None and not mask.any():
            return 0.0 if base.dtype.kind == "f" else 0
        if limit is not None and not 0 <= idx < limit:
            raise JitRuntimeGuard(f"uniform load index {idx} out of bounds")
        value = base[idx]
        return value.item() if isinstance(value, np.generic) else value

    @staticmethod
    def gather(base: np.ndarray, idx: Any, mask: Any, limit: Any) -> Any:
        if not isinstance(idx, np.ndarray):
            return _Runtime.load_u(base, idx, mask, limit)
        if limit is not None:
            bad = (idx < 0) | (idx >= limit)
            if mask is not None:
                bad = bad & mask
            if bad.any():
                raise JitRuntimeGuard("gather index out of bounds")
        if mask is not None:
            idx = np.where(mask, idx, 0)
        return _widen(base[idx])

    @staticmethod
    def store_u(base: np.ndarray, idx: Any, value: Any, mask: Any,
                limit: Any) -> None:
        if mask is not None and not mask.any():
            return
        if limit is not None and not 0 <= idx < limit:
            raise JitRuntimeGuard(f"uniform store index {idx} out of bounds")
        if isinstance(value, np.ndarray):
            selected = value if mask is None else value[mask]
            if selected.size:
                base[idx] = selected[-1]
        else:
            base[idx] = value

    @staticmethod
    def scatter(base: np.ndarray, idx: Any, value: Any, mask: Any,
                limit: Any) -> None:
        if not isinstance(idx, np.ndarray):
            _Runtime.store_u(base, idx, value, mask, limit)
            return
        if limit is not None:
            bad = (idx < 0) | (idx >= limit)
            if mask is not None:
                bad = bad & mask
            if bad.any():
                raise JitRuntimeGuard("scatter index out of bounds")
        if mask is None:
            base[idx] = value
        elif isinstance(value, np.ndarray):
            base[idx[mask]] = value[mask]
        else:
            base[idx[mask]] = value

    # -- arithmetic guards ---------------------------------------------------

    @staticmethod
    def div(left: Any, right: Any, mask: Any) -> Any:
        _Runtime._active_zero(right, mask)
        if _isf(left) or _isf(right):
            return np.divide(left, right)
        quotient = np.floor_divide(left, right)
        inexact = quotient * right != left
        negative = (np.less(left, 0)) != (np.less(right, 0))
        return quotient + (inexact & negative)

    @staticmethod
    def mod(left: Any, right: Any, mask: Any) -> Any:
        _Runtime._active_zero(right, mask)
        if _isf(left) or _isf(right):
            return np.fmod(left, right)
        quotient = np.floor_divide(left, right)
        inexact = quotient * right != left
        negative = (np.less(left, 0)) != (np.less(right, 0))
        return left - (quotient + (inexact & negative)) * right

    @staticmethod
    def _active_zero(right: Any, mask: Any) -> None:
        if isinstance(right, np.ndarray):
            zero = right == 0
            hit = zero if mask is None else (mask & zero)
            if hit.any():
                raise JitRuntimeGuard("division by zero on an active lane")
        elif right == 0:
            if mask is None or mask.any():
                raise JitRuntimeGuard("division by zero")

    @staticmethod
    def c_div(left: Any, right: Any, mask: Any) -> Any:
        if mask is not None and not mask.any():
            return 0
        try:
            return c_div(left, right)
        except ZeroDivisionError:
            raise JitRuntimeGuard("uniform division by zero") from None

    @staticmethod
    def c_mod(left: Any, right: Any, mask: Any) -> Any:
        if mask is not None and not mask.any():
            return 0
        try:
            return c_mod(left, right)
        except ZeroDivisionError:
            raise JitRuntimeGuard("uniform modulo by zero") from None

    @staticmethod
    def shift(op: str, left: Any, right: Any, mask: Any) -> Any:
        amount = _Runtime.as_int(right)
        if isinstance(amount, np.ndarray):
            bad = (amount < 0) | (amount >= 64)
            hit = bad if mask is None else (mask & bad)
            if hit.any():
                raise JitRuntimeGuard("shift amount outside [0, 64)")
            fn = np.left_shift if op == "<<" else np.right_shift
            return fn(_Runtime.as_int(left), amount)
        if mask is not None and not mask.any():
            return 0
        if not 0 <= amount < 64:
            raise JitRuntimeGuard(f"shift amount {amount} outside [0, 64)")
        left = _Runtime.as_int(left)
        if isinstance(left, np.ndarray):
            fn = np.left_shift if op == "<<" else np.right_shift
            return fn(left, amount)
        return left << amount if op == "<<" else left >> amount

    # -- math builtins -------------------------------------------------------

    @staticmethod
    def math_u(name: str, mask: Any, *args: Any) -> Any:
        if mask is not None and not mask.any():
            return 0.0
        try:
            return MATH_IMPLS[name](*args)
        except _MATH_ERRORS as exc:
            raise JitRuntimeGuard(f"math builtin {name!r}: {exc}") from exc

    @staticmethod
    def math(name: str, mask: Any, *args: Any) -> Any:
        args = tuple(_Runtime.as_float(a) for a in args)
        if mask is not None and not mask.any():
            width = next(
                (a.shape[0] for a in args if isinstance(a, np.ndarray)),
                mask.shape[0])
            dtype = np.int64 if name in _INT_RESULT_MATH else np.float64
            return np.zeros(width, dtype=dtype)
        full = mask is None or bool(mask.all())
        packed = args if full else \
            tuple(a[mask] if isinstance(a, np.ndarray) else a for a in args)
        check = _MATH_DOMAIN_CHECKS.get(name)
        if check is not None and bool(np.any(check(*packed))):
            raise JitRuntimeGuard(
                f"math builtin {name!r}: domain error on an active lane")
        try:
            if name in _NATIVE_MATH:
                result = _NATIVE_MATH[name](*packed)
            elif name in _INT_RESULT_MATH:
                result = _Runtime.as_int(_INT_RESULT_MATH[name](*packed))
            else:
                result = _WRAPPED_MATH[name](*packed)
        except _MATH_ERRORS as exc:
            raise JitRuntimeGuard(f"math builtin {name!r}: {exc}") from exc
        if not isinstance(result, np.ndarray):
            return result
        if full:
            return result
        out = np.zeros(mask.shape[0], dtype=result.dtype)
        out[mask] = result
        return out

    @staticmethod
    def int_u(name: str, mask: Any, *args: Any) -> Any:
        if mask is not None and not mask.any():
            return 0
        return INT_IMPLS[name](*args)

    @staticmethod
    def int_fn(name: str, *args: Any) -> Any:
        return _VEC_INT[name](*args)


def _isf(value: Any) -> bool:
    if isinstance(value, np.ndarray):
        return value.dtype.kind == "f"
    return isinstance(value, float)


# ---------------------------------------------------------------------------
# Compiler internals
# ---------------------------------------------------------------------------


@dataclass
class _Buf:
    """A buffer parameter specialized for this launch."""

    py: str
    extent: int
    kind: str            # 'i' or 'f'
    exact: bool          # dtype is already int64/float64: raw loads need no widen


@dataclass
class _Var:
    """A kernel variable bound in the compile-time environment."""

    py: str
    kind: str
    lane: bool
    depth: int                      # mask depth at declaration
    rng: Optional[tuple] = None     # trusted only for single-assignment ints
    const: Any = None
    buffer: Optional[_Buf] = None


@dataclass
class _V:
    """A compiled expression: code plus what we statically know about it."""

    code: str
    kind: str                       # 'i' or 'f'
    lane: bool
    const: Any = None               # compile-time Python value, when known
    rng: Optional[tuple] = None     # inclusive int interval, when provable
    buffer: Optional[_Buf] = None


@dataclass
class _CondV:
    """A compiled condition: bool-valued code, or a compile-time proof."""

    code: Optional[str]
    lane: bool
    proof: Optional[bool] = None


@dataclass
class _Ctx:
    """Divergence context: the current lane mask (a temp name) and depth."""

    mask: Optional[str]
    depth: int


class _Promote(Exception):
    """Restart signal: these variables must be treated as lane-valued."""

    def __init__(self, names: set):
        super().__init__("promote")
        self.names = names


@dataclass
class CompiledKernel:
    """One kernel specialized, lowered, and ``exec``-compiled for a launch."""

    kernel_name: str
    fn: Callable
    source: str
    key: tuple
    buffer_params: tuple           # kernel param names, call order
    id_spec: tuple                 # ((lanes attribute, dim, py name), ...)
    masked: bool                   # any per-lane mask in the generated code
    oob_elided_by_verdict: bool    # bounds checks dropped on the verifier's word
    verdicts: Optional[dict]       # verify verdicts consulted (None: not needed)
    compile_seconds: float = 0.0


_LOOP_FOR = "for"
_LOOP_WHILE = "while"
_LOOP_DO = "do"


class _Compiler:
    """Lowers one kernel AST + launch constants to Python source.

    One pass; if a variable assumed uniform turns out to receive a
    lane value, :class:`_Promote` restarts the compile with that
    variable pre-promoted (laneness is monotone, so this terminates).
    """

    def __init__(self, info: KernelInfo, ndrange: NDRange,
                 scalars: dict, buffers: dict, verdict_fn: Callable,
                 promoted: frozenset):
        self.info = info
        self.ndrange = ndrange
        self.scalars = scalars
        self.buffers = buffers          # name -> np.ndarray
        self._verdict_fn = verdict_fn   # lazy: () -> verdicts dict
        self.promoted = promoted
        self.lines: list[str] = []
        self.indent = 1
        self._tmp_n = 0
        self._var_n = 0
        self.env: dict[str, _Var] = {}
        self.used_ids: set = set()      # (lanes attr, dim, py name)
        self.masked = False
        self.oob_elided_by_verdict = False
        self.verdicts: Optional[dict] = None
        self.loops: list[tuple[str, int]] = []   # (loop kind, mask depth)
        self.reassigned = self._find_reassigned(info.kernel.body)

    # -- small helpers -------------------------------------------------------

    def _fail(self, why: str, node: Any = None) -> JitUnsupported:
        return JitUnsupported(why, getattr(node, "location", None))

    def _emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _tmp(self, prefix: str = "_t") -> str:
        self._tmp_n += 1
        return f"{prefix}{self._tmp_n}"

    @staticmethod
    def _find_reassigned(body: ast.Stmt) -> frozenset:
        names = set()
        for node in ast.walk(body):
            if isinstance(node, ast.Assignment) and \
                    isinstance(node.target, ast.Identifier):
                names.add(node.target.name)
            elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and \
                    node.op in ("++", "--") and \
                    isinstance(node.operand, ast.Identifier):
                names.add(node.operand.name)
        return frozenset(names)

    def _oob_clean(self) -> bool:
        if self.verdicts is None:
            self.verdicts = self._verdict_fn()
        return self.verdicts.get("oob") == "clean"

    # -- interval arithmetic -------------------------------------------------

    @staticmethod
    def _rng_ok(rng: Optional[tuple]) -> Optional[tuple]:
        if rng is None:
            return None
        lo, hi = rng
        if abs(lo) > _RANGE_LIMIT or abs(hi) > _RANGE_LIMIT:
            return None
        return rng

    def _rng_binop(self, op: str, left: _V, right: _V) -> Optional[tuple]:
        if left.kind != "i" or right.kind != "i":
            return None
        lr, rr = left.rng, right.rng
        if lr is None or rr is None:
            return None
        if op == "+":
            return self._rng_ok((lr[0] + rr[0], lr[1] + rr[1]))
        if op == "-":
            return self._rng_ok((lr[0] - rr[1], lr[1] - rr[0]))
        if op == "*":
            products = [a * b for a in lr for b in rr]
            return self._rng_ok((min(products), max(products)))
        if op == "%" and rr[0] == rr[1] and rr[0] > 0 and lr[0] >= 0:
            return (0, rr[0] - 1)
        if op == "/" and rr[0] == rr[1] and rr[0] > 0 and lr[0] >= 0:
            return (lr[0] // rr[0], lr[1] // rr[0])
        return None

    @staticmethod
    def _prove_cmp(op: str, left: _V, right: _V) -> Optional[bool]:
        lr, rr = left.rng, right.rng
        if lr is None or rr is None:
            return None
        l0, l1 = lr
        r0, r1 = rr
        if op == "<":
            return True if l1 < r0 else (False if l0 >= r1 else None)
        if op == "<=":
            return True if l1 <= r0 else (False if l0 > r1 else None)
        if op == ">":
            return True if l0 > r1 else (False if l1 <= r0 else None)
        if op == ">=":
            return True if l0 >= r1 else (False if l1 < r0 else None)
        if op == "==":
            if l0 == l1 == r0 == r1:
                return True
            return False if (l1 < r0 or l0 > r1) else None
        if op == "!=":
            if l1 < r0 or l0 > r1:
                return True
            return False if l0 == l1 == r0 == r1 else None
        return None

    # -- entry point ---------------------------------------------------------

    def compile(self) -> tuple[str, str]:
        """Return (function name, generated source)."""
        self._bind_params()
        ctx = _Ctx(mask=None, depth=0)
        before = len(self.lines)
        self._stmt(self.info.kernel.body, ctx)
        if len(self.lines) == before:
            self._emit("pass")
        fn_name = f"_dopia_jit_{self.info.kernel.name}"
        id_names = [py for (_a, _d, py) in sorted(self.used_ids)]
        buf_names = [self.env[n].py for n in self.info.buffer_params
                     if n in self.buffers]
        params = ["rt", "_np"] + buf_names + id_names
        header = [
            f"def {fn_name}({', '.join(params)}):",
        ]
        return fn_name, "\n".join(header + self.lines) + "\n"

    def _bind_params(self) -> None:
        for param in self.info.kernel.params:
            name = param.name
            if param.type.pointer:
                array = self.buffers.get(name)
                if array is None:
                    raise self._fail(f"buffer argument {name!r} is not an array")
                if array.ndim != 1:
                    raise self._fail(f"buffer {name!r} is not 1-D")
                if array.dtype.kind == "f":
                    kind, exact = "f", array.dtype == np.float64
                elif array.dtype.kind in "iu":
                    kind, exact = "i", array.dtype == np.int64
                else:
                    raise self._fail(
                        f"buffer {name!r} has unsupported dtype {array.dtype}")
                buf = _Buf(py=f"b_{name}", extent=int(array.shape[0]),
                           kind=kind, exact=exact)
                self.env[name] = _Var(py=buf.py, kind=kind, lane=True,
                                      depth=0, buffer=buf)
            else:
                value = self.scalars[name]
                kind = "i" if isinstance(value, int) else "f"
                rng = (value, value) if kind == "i" else None
                self.env[name] = _Var(py=f"s_{name}", kind=kind, lane=False,
                                      depth=0, rng=self._rng_ok(rng),
                                      const=value)

    # -- statements ----------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt, ctx: _Ctx) -> None:
        kind = type(stmt)
        if kind is ast.Block:
            saved = dict(self.env)
            try:
                for inner in stmt.body:
                    self._stmt(inner, ctx)
            finally:
                self.env = saved
            return
        if kind is ast.DeclStmt:
            self._stmt_decl(stmt, ctx)
            return
        if kind is ast.ExprStmt:
            self._expr_stmt(stmt.expr, ctx)
            return
        if kind is ast.If:
            self._stmt_if(stmt, ctx)
            return
        if kind is ast.For:
            self._stmt_for(stmt, ctx)
            return
        if kind is ast.While:
            self._stmt_while(stmt, ctx)
            return
        if kind is ast.DoWhile:
            self._stmt_dowhile(stmt, ctx)
            return
        if kind is ast.Return:
            if ctx.depth > 0:
                raise self._fail("return under divergent control flow", stmt)
            self._emit("return")
            return
        if kind is ast.Break:
            if not self.loops:
                raise self._fail("break outside of a loop", stmt)
            if ctx.depth != self.loops[-1][1]:
                raise self._fail("break under divergent control flow", stmt)
            self._emit("break")
            return
        if kind is ast.Continue:
            if not self.loops:
                raise self._fail("continue outside of a loop", stmt)
            loop_kind, loop_depth = self.loops[-1]
            if loop_kind != _LOOP_WHILE or ctx.depth != loop_depth:
                raise self._fail(
                    "continue only supported in uniform while loops", stmt)
            self._emit("continue")
            return
        raise self._fail(f"unsupported statement {kind.__name__}", stmt)

    def _stmt_decl(self, stmt: ast.DeclStmt, ctx: _Ctx) -> None:
        for decl in stmt.decls:
            if decl.type.pointer or decl.array_dims or \
                    decl.type.address_space == "local":
                raise self._fail(f"unsupported declaration {decl.name!r}", stmt)
            kind = "f" if decl.type.is_float else "i"
            self._var_n += 1
            py = f"v{self._var_n}_{decl.name}"
            if decl.init is not None:
                value = self._to_kind(self._expr(decl.init, ctx), kind)
            else:
                value = _V("0.0" if kind == "f" else "0", kind, lane=False,
                           const=0.0 if kind == "f" else 0,
                           rng=None if kind == "f" else (0, 0))
            lane = value.lane or (py in self.promoted)
            trusted = decl.name not in self.reassigned
            self._emit(f"{py} = {value.code}")
            self.env[decl.name] = _Var(
                py=py, kind=kind, lane=lane, depth=ctx.depth,
                rng=value.rng if (trusted and kind == "i") else None,
                const=value.const if (trusted and not lane) else None,
            )

    def _expr_stmt(self, expr: ast.Expr, ctx: _Ctx) -> None:
        kind = type(expr)
        if kind is ast.Assignment:
            self._assignment(expr, ctx)
            return
        if kind in (ast.UnaryOp, ast.PostfixOp) and expr.op in ("++", "--"):
            self._increment(expr, ctx)
            return
        # Anything else at statement level is evaluated for effect; the
        # JIT subset has no effectful pure expressions, so emitting the
        # value and discarding it preserves semantics (it can still trip
        # a runtime guard, exactly like the oracle would raise there).
        value = self._expr(expr, ctx)
        self._emit(f"{value.code}")

    # -- control flow --------------------------------------------------------

    def _suite(self, body: ast.Stmt, ctx: _Ctx) -> None:
        """Compile ``body`` as an indented Python suite (>= one line)."""
        self.indent += 1
        before = len(self.lines)
        try:
            self._stmt(body, ctx)
            if len(self.lines) == before:
                self._emit("pass")
        finally:
            self.indent -= 1

    def _stmt_if(self, stmt: ast.If, ctx: _Ctx) -> None:
        cond = self._cond(stmt.cond, ctx)
        if cond.proof is True:
            self._stmt(stmt.then, ctx)
            return
        if cond.proof is False:
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise, ctx)
            return
        if not cond.lane:
            self._emit(f"if {cond.code}:")
            self._suite(stmt.then, ctx)
            if stmt.otherwise is not None:
                self._emit("else:")
                self._suite(stmt.otherwise, ctx)
            return
        self.masked = True
        taken = self._tmp("_c")
        self._emit(f"{taken} = {cond.code}")
        then_mask = self._tmp("_m")
        if ctx.mask is None:
            self._emit(f"{then_mask} = {taken}")
        else:
            self._emit(f"{then_mask} = {ctx.mask} & {taken}")
        saved = dict(self.env)
        self._stmt(stmt.then, _Ctx(then_mask, ctx.depth + 1))
        self.env = saved
        if stmt.otherwise is not None:
            else_mask = self._tmp("_m")
            if ctx.mask is None:
                self._emit(f"{else_mask} = ~{taken}")
            else:
                self._emit(f"{else_mask} = {ctx.mask} & ~{taken}")
            saved = dict(self.env)
            self._stmt(stmt.otherwise, _Ctx(else_mask, ctx.depth + 1))
            self.env = saved

    def _loop_cond(self, cond: Optional[ast.Expr], ctx: _Ctx,
                   node: Any) -> Optional[_CondV]:
        if cond is None:
            return None
        compiled = self._cond(cond, ctx)
        if compiled.lane:
            raise self._fail("lane-varying loop condition", node)
        return compiled

    def _static_rng(self, expr: ast.Expr) -> Optional[tuple]:
        """Interval of an expression over loop-invariant integers only."""
        if isinstance(expr, ast.IntLiteral):
            value = int(expr.value)
            return self._rng_ok((value, value))
        if isinstance(expr, ast.Identifier):
            var = self.env.get(expr.name)
            if var is not None and var.kind == "i" and not var.lane:
                return var.rng
            return None
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*"):
            left = self._static_rng(expr.left)
            right = self._static_rng(expr.right)
            if left is None or right is None:
                return None
            return self._rng_binop(expr.op,
                                   _V("", "i", False, rng=left),
                                   _V("", "i", False, rng=right))
        return None

    def _induction_range(self, stmt: ast.For) -> Optional[tuple]:
        """``(name, [lo, hi])`` for a canonical up-counting for loop.

        The interval holds at the top of every iteration — the condition
        is re-checked before the body and the counter only moves through
        the (positive) step — so it is sound for proofs *inside* the
        body, where the bounds-elision decisions are made.
        """
        init = stmt.init
        if not (isinstance(init, ast.DeclStmt) and len(init.decls) == 1):
            return None
        decl = init.decls[0]
        if decl.type.is_float or decl.type.pointer or decl.init is None:
            return None
        name = decl.name
        step = stmt.step
        if isinstance(step, (ast.UnaryOp, ast.PostfixOp)) and \
                step.op == "++" and \
                isinstance(step.operand, ast.Identifier) and \
                step.operand.name == name:
            pass
        elif isinstance(step, ast.Assignment) and step.op == "+=" and \
                isinstance(step.target, ast.Identifier) and \
                step.target.name == name:
            stride = self._static_rng(step.value)
            if stride is None or stride[0] < 1:
                return None
        else:
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.BinaryOp) and cond.op in ("<", "<=")
                and isinstance(cond.left, ast.Identifier)
                and cond.left.name == name):
            return None
        lo = self._static_rng(decl.init)
        hi = self._static_rng(cond.right)
        if lo is None or hi is None:
            return None
        for node in ast.walk(stmt.body):
            if isinstance(node, ast.Assignment) and \
                    isinstance(node.target, ast.Identifier) and \
                    node.target.name == name:
                return None
            if isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and \
                    node.op in ("++", "--") and \
                    isinstance(node.operand, ast.Identifier) and \
                    node.operand.name == name:
                return None
        upper = hi[1] - 1 if cond.op == "<" else hi[1]
        return name, self._rng_ok((lo[0], upper))

    def _stmt_for(self, stmt: ast.For, ctx: _Ctx) -> None:
        saved = dict(self.env)
        try:
            if stmt.init is not None:
                if isinstance(stmt.init, ast.DeclStmt):
                    self._stmt_decl(stmt.init, ctx)
                elif isinstance(stmt.init, ast.ExprStmt):
                    self._expr_stmt(stmt.init.expr, ctx)
                else:
                    raise self._fail("unsupported for-loop initializer", stmt)
            cond = self._loop_cond(stmt.cond, ctx, stmt)
            # The condition is compiled *before* the counter interval is
            # installed, so the interval can never prove the loop's own
            # exit test away.
            induction = self._induction_range(stmt)
            if induction is not None:
                name, rng = induction
                var = self.env.get(name)
                if var is not None and var.kind == "i" and not var.lane \
                        and rng is not None:
                    self.env[name] = _Var(py=var.py, kind="i", lane=False,
                                          depth=var.depth, rng=rng)
            if cond is not None and cond.proof is False:
                return
            header = "while True:" if cond is None or cond.proof is True \
                else f"while {cond.code}:"
            self._emit(header)
            self.indent += 1
            before = len(self.lines)
            self.loops.append((_LOOP_FOR, ctx.depth))
            try:
                self._stmt(stmt.body, ctx)
                if stmt.step is not None:
                    self._expr_stmt(stmt.step, ctx)
                if len(self.lines) == before:
                    self._emit("pass")
            finally:
                self.loops.pop()
                self.indent -= 1
        finally:
            self.env = saved

    def _stmt_while(self, stmt: ast.While, ctx: _Ctx) -> None:
        cond = self._loop_cond(stmt.cond, ctx, stmt)
        if cond is not None and cond.proof is False:
            return
        header = "while True:" if cond is None or cond.proof is True \
            else f"while {cond.code}:"
        self._emit(header)
        self.loops.append((_LOOP_WHILE, ctx.depth))
        try:
            self._suite(stmt.body, ctx)
        finally:
            self.loops.pop()

    def _stmt_dowhile(self, stmt: ast.DoWhile, ctx: _Ctx) -> None:
        self._emit("while True:")
        self.indent += 1
        before = len(self.lines)
        self.loops.append((_LOOP_DO, ctx.depth))
        try:
            self._stmt(stmt.body, ctx)
            cond = self._loop_cond(stmt.cond, ctx, stmt)
            if cond is None or cond.proof is True:
                pass  # loop forever, like the oracle would
            elif cond.proof is False:
                self._emit("break")
            else:
                self._emit(f"if not ({cond.code}):")
                self._emit("    break")
            if len(self.lines) == before:
                self._emit("pass")
        finally:
            self.loops.pop()
            self.indent -= 1

    # -- assignments ---------------------------------------------------------

    def _assignment(self, node: ast.Assignment, ctx: _Ctx) -> None:
        target = node.target
        if isinstance(target, ast.Identifier):
            var = self._lookup(target)
            if var.buffer is not None:
                raise self._fail("pointer reassignment", node)
            value = self._expr(node.value, ctx)
            if node.op != "=":
                old = self._read_var(target.name, node)
                value = self._binop(node.op[:-1], old, value, ctx, node)
            self._assign_var(var, value, ctx)
            return
        if isinstance(target, ast.Index):
            idx = self._materialize(
                self._to_kind(self._expr(target.index, ctx), "i"))
            value = self._expr(node.value, ctx)
            if node.op != "=":
                old = self._load_indexed(target, idx, ctx)
                value = self._binop(node.op[:-1], old, value, ctx, node)
            self._store_indexed(target, idx, value, ctx)
            return
        raise self._fail("unsupported assignment target", node)

    def _increment(self, node: Any, ctx: _Ctx) -> None:
        delta = "1" if node.op == "++" else "-1"
        operand = node.operand
        if isinstance(operand, ast.Identifier):
            var = self._lookup(operand)
            old = self._read_var(operand.name, node)
            new = _V(f"({old.code} + {delta})", old.kind, old.lane)
            self._assign_var(var, new, ctx)
            return
        if isinstance(operand, ast.Index):
            idx = self._materialize(
                self._to_kind(self._expr(operand.index, ctx), "i"))
            old = self._load_indexed(operand, idx, ctx)
            new = _V(f"({old.code} + {delta})", old.kind, old.lane)
            self._store_indexed(operand, idx, new, ctx)
            return
        raise self._fail("unsupported increment target", node)

    def _assign_var(self, var: _Var, value: _V, ctx: _Ctx) -> None:
        value = self._to_kind(value, var.kind)
        if value.lane and not var.lane:
            raise _Promote({var.py})
        if ctx.depth > var.depth:
            if not var.lane:
                raise _Promote({var.py})
            self._emit(
                f"{var.py} = _np.where({ctx.mask}, {value.code}, {var.py})")
        else:
            self._emit(f"{var.py} = {value.code}")

    def _materialize(self, value: _V) -> _V:
        """Bind an expression to a temp so it can be used more than once."""
        if value.const is not None or value.code.isidentifier():
            return value
        tmp = self._tmp()
        self._emit(f"{tmp} = {value.code}")
        return _V(tmp, value.kind, value.lane, rng=value.rng)

    # -- memory --------------------------------------------------------------

    def _buffer_of(self, node: ast.Index) -> _Buf:
        if not isinstance(node.base, ast.Identifier):
            raise self._fail("subscript of a computed pointer", node)
        var = self._lookup(node.base)
        if var.buffer is None:
            raise self._fail("subscript of a non-buffer value", node)
        return var.buffer

    def _bounds_elided(self, idx: _V, buf: _Buf) -> bool:
        if idx.rng is not None and idx.rng[0] >= 0 and idx.rng[1] < buf.extent:
            return True
        if self._oob_clean():
            self.oob_elided_by_verdict = True
            return True
        return False

    def _load_expr(self, node: ast.Index, ctx: _Ctx) -> _V:
        idx = self._to_kind(self._expr(node.index, ctx), "i")
        return self._load_indexed(node, idx, ctx)

    def _load_indexed(self, node: ast.Index, idx: _V, ctx: _Ctx) -> _V:
        buf = self._buffer_of(node)
        elide = self._bounds_elided(idx, buf)
        limit = "None" if elide else str(buf.extent)
        mask = ctx.mask or "None"
        if not idx.lane:
            code = f"rt.load_u({buf.py}, {idx.code}, {mask}, {limit})"
            return _V(code, buf.kind, lane=False)
        if ctx.mask is None and elide:
            raw = f"{buf.py}[{idx.code}]"
            if buf.exact:
                code = raw
            elif buf.kind == "f":
                code = f"rt.as_float({raw})"
            else:
                code = f"rt.as_int({raw})"
        else:
            code = f"rt.gather({buf.py}, {idx.code}, {mask}, {limit})"
        return _V(code, buf.kind, lane=True)

    def _store_indexed(self, node: ast.Index, idx: _V, value: _V,
                       ctx: _Ctx) -> None:
        buf = self._buffer_of(node)
        elide = self._bounds_elided(idx, buf)
        limit = "None" if elide else str(buf.extent)
        mask = ctx.mask or "None"
        if not idx.lane:
            self._emit(f"rt.store_u({buf.py}, {idx.code}, {value.code}, "
                       f"{mask}, {limit})")
        elif ctx.mask is None and elide:
            # NumPy broadcasts a scalar value across the lane indices,
            # which matches the oracle (every lane stores the same value).
            self._emit(f"{buf.py}[{idx.code}] = {value.code}")
        else:
            self._emit(f"rt.scatter({buf.py}, {idx.code}, {value.code}, "
                       f"{mask}, {limit})")

    # -- expressions ---------------------------------------------------------

    def _lookup(self, node: ast.Identifier) -> _Var:
        var = self.env.get(node.name)
        if var is None:
            raise self._fail(f"unknown identifier {node.name!r}", node)
        return var

    def _read_var(self, name: str, node: Any = None) -> _V:
        var = self.env[name]
        if var.buffer is not None:
            return _V(var.py, var.kind, lane=True, buffer=var.buffer)
        if var.const is not None:
            return self._const_v(var.const)
        return _V(var.py, var.kind, var.lane, rng=var.rng)

    def _const_v(self, value: Any) -> _V:
        if isinstance(value, bool):
            value = int(value)
        kind = "i" if isinstance(value, int) else "f"
        rng = self._rng_ok((value, value)) if kind == "i" else None
        return _V(f"({value!r})", kind, lane=False, const=value, rng=rng)

    def _expr(self, expr: ast.Expr, ctx: _Ctx) -> _V:
        kind = type(expr)
        if kind is ast.IntLiteral:
            return self._const_v(int(expr.value))
        if kind is ast.FloatLiteral:
            return self._const_v(float(expr.value))
        if kind is ast.Identifier:
            self._lookup(expr)
            return self._read_var(expr.name, expr)
        if kind is ast.BinaryOp:
            if expr.op in ("&&", "||"):
                return self._cond_value(expr, ctx)
            left = self._expr(expr.left, ctx)
            right = self._expr(expr.right, ctx)
            return self._binop(expr.op, left, right, ctx, expr)
        if kind is ast.UnaryOp:
            return self._unary(expr, ctx)
        if kind is ast.Index:
            return self._load_expr(expr, ctx)
        if kind is ast.Cast:
            if expr.type.pointer:
                raise self._fail("pointer cast", expr)
            return self._to_kind(self._expr(expr.operand, ctx),
                                 "f" if expr.type.is_float else "i")
        if kind is ast.Conditional:
            return self._conditional(expr, ctx)
        if kind is ast.Call:
            return self._call(expr, ctx)
        if kind in (ast.Assignment, ast.PostfixOp):
            raise self._fail(
                f"{kind.__name__} inside an expression", expr)
        raise self._fail(f"unsupported expression {kind.__name__}", expr)

    def _unary(self, expr: ast.UnaryOp, ctx: _Ctx) -> _V:
        if expr.op in ("++", "--"):
            raise self._fail("pre-increment inside an expression", expr)
        if expr.op == "!":
            cond = self._cond(expr.operand, ctx)
            if cond.proof is not None:
                return self._const_v(int(not cond.proof))
            if cond.lane:
                return _V(f"(~{cond.code}).astype(_np.int64)", "i", True)
            return _V(f"(0 if {cond.code} else 1)", "i", False)
        operand = self._expr(expr.operand, ctx)
        if expr.op == "-":
            if operand.const is not None:
                return self._const_v(-operand.const)
            rng = None
            if operand.rng is not None:
                rng = self._rng_ok((-operand.rng[1], -operand.rng[0]))
            return _V(f"(-{operand.code})", operand.kind, operand.lane,
                      rng=rng)
        if expr.op == "~":
            operand = self._to_kind(operand, "i")
            if operand.const is not None:
                return self._const_v(~operand.const)
            return _V(f"(~{operand.code})", "i", operand.lane)
        raise self._fail(f"unsupported unary operator {expr.op!r}", expr)

    def _to_kind(self, value: _V, kind: str) -> _V:
        if value.kind == kind:
            return value
        if value.const is not None:
            return self._const_v(
                int(value.const) if kind == "i" else float(value.const))
        if kind == "i":
            code = f"rt.as_int({value.code})" if value.lane \
                else f"int({value.code})"
        else:
            code = f"rt.as_float({value.code})" if value.lane \
                else f"float({value.code})"
        return _V(code, kind, value.lane)

    # -- binary operators ----------------------------------------------------

    _FOLD_OPS: dict = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": c_div,
        "%": c_mod,
        "==": lambda a, b: int(a == b),
        "!=": lambda a, b: int(a != b),
        "<": lambda a, b: int(a < b),
        ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b),
        ">=": lambda a, b: int(a >= b),
        "<<": lambda a, b: int(a) << int(b),
        ">>": lambda a, b: int(a) >> int(b),
        "&": lambda a, b: int(a) & int(b),
        "|": lambda a, b: int(a) | int(b),
        "^": lambda a, b: int(a) ^ int(b),
    }

    def _binop(self, op: str, left: _V, right: _V, ctx: _Ctx,
               node: Any) -> _V:
        if left.const is not None and right.const is not None \
                and op in self._FOLD_OPS:
            try:
                return self._const_v(self._FOLD_OPS[op](left.const,
                                                        right.const))
            except Exception:
                pass  # fold would raise: emit the runtime form instead
        lane = left.lane or right.lane
        fkind = "f" if "f" in (left.kind, right.kind) else "i"
        mask = ctx.mask or "None"
        if op in ("+", "-", "*"):
            return _V(f"({left.code} {op} {right.code})", fkind, lane,
                      rng=self._rng_binop(op, left, right))
        if op == "/":
            if lane:
                return _V(f"rt.div({left.code}, {right.code}, {mask})",
                          fkind, True)
            if ctx.mask is None:
                code = f"({left.code} / {right.code})" if fkind == "f" \
                    else f"rt.c_div({left.code}, {right.code}, None)"
                # float path: plain Python division is exactly c_div's
                # float branch; int path keeps C truncation.
                return _V(code, fkind, False)
            return _V(f"rt.c_div({left.code}, {right.code}, {mask})",
                      fkind, False)
        if op == "%":
            if lane:
                return _V(f"rt.mod({left.code}, {right.code}, {mask})",
                          fkind, True)
            return _V(f"rt.c_mod({left.code}, {right.code}, {mask})",
                      fkind, False)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            cond = self._cmp_cond(op, left, right)
            return self._cond_to_value(cond)
        if op in ("<<", ">>"):
            if not lane and ctx.mask is None:
                return _V(f"rt.shift({op!r}, {left.code}, {right.code}, "
                          "None)", "i", False)
            return _V(f"rt.shift({op!r}, {left.code}, {right.code}, {mask})",
                      "i", lane)
        if op in ("&", "|", "^"):
            lefti = self._to_kind(left, "i")
            righti = self._to_kind(right, "i")
            if lane:
                return _V(f"({lefti.code} {op} {righti.code})", "i", True)
            return _V(f"(int({lefti.code}) {op} int({righti.code}))", "i",
                      False)
        raise self._fail(f"unsupported binary operator {op!r}", node)

    # -- conditions ----------------------------------------------------------

    def _cmp_cond(self, op: str, left: _V, right: _V) -> _CondV:
        if left.const is not None and right.const is not None:
            return _CondV(None, False,
                          proof=bool(self._FOLD_OPS[op](left.const,
                                                        right.const)))
        proof = None
        if left.kind == "i" and right.kind == "i":
            proof = self._prove_cmp(op, left, right)
        if proof is not None:
            return _CondV(None, False, proof=proof)
        lane = left.lane or right.lane
        return _CondV(f"({left.code} {op} {right.code})", lane)

    def _cond(self, expr: ast.Expr, ctx: _Ctx) -> _CondV:
        kind = type(expr)
        if kind is ast.BinaryOp and expr.op in \
                ("==", "!=", "<", ">", "<=", ">="):
            left = self._expr(expr.left, ctx)
            right = self._expr(expr.right, ctx)
            return self._cmp_cond(expr.op, left, right)
        if kind is ast.BinaryOp and expr.op in ("&&", "||"):
            return self._logical_cond(expr, ctx)
        if kind is ast.UnaryOp and expr.op == "!":
            inner = self._cond(expr.operand, ctx)
            if inner.proof is not None:
                return _CondV(None, False, proof=not inner.proof)
            if inner.lane:
                return _CondV(f"(~{inner.code})", True)
            return _CondV(f"(not {inner.code})", False)
        value = self._expr(expr, ctx)
        if value.const is not None:
            return _CondV(None, False, proof=bool(value.const))
        if value.kind == "i" and value.rng is not None:
            proof = self._prove_cmp("!=", value, self._const_v(0))
            if proof is not None:
                return _CondV(None, False, proof=proof)
        if value.lane:
            return _CondV(f"({value.code} != 0)", True)
        return _CondV(f"({value.code} != 0)", False)

    def _logical_cond(self, expr: ast.BinaryOp, ctx: _Ctx) -> _CondV:
        is_and = expr.op == "&&"
        left = self._cond(expr.left, ctx)
        if left.proof is not None:
            if left.proof != is_and:
                # && with proven-false left, || with proven-true left.
                return _CondV(None, False, proof=left.proof)
            return self._cond(expr.right, ctx)
        if not left.lane:
            # A uniform runtime left with a possibly-lane right needs
            # runtime short-circuit across the uniform/lane boundary;
            # the vector tier handles that case.
            right = self._cond(expr.right, ctx)
            if right.lane:
                raise self._fail(
                    "logical operator mixing a uniform runtime condition "
                    "with lane operands", expr)
            if right.proof is not None:
                if right.proof != is_and:
                    # Right side decides, but the left must still be
                    # evaluated (it is pure in the JIT subset): safe to
                    # reduce to the constant.
                    return _CondV(None, False, proof=right.proof)
                return left
            joiner = "and" if is_and else "or"
            return _CondV(f"({left.code} {joiner} {right.code})", False)
        taken = self._tmp("_c")
        self._emit(f"{taken} = {left.code}")
        sub = self._tmp("_m")
        self.masked = True
        base = ctx.mask
        lead = taken if is_and else f"~{taken}"
        if base is None:
            self._emit(f"{sub} = {lead}")
        else:
            self._emit(f"{sub} = {base} & {lead}")
        right = self._cond(expr.right, _Ctx(sub, ctx.depth + 1))
        if right.proof is not None:
            if right.proof == is_and:
                # && with proven-true right / || with proven-false right:
                # the left side alone decides.
                return _CondV(taken, True)
            return _CondV(None, False, proof=right.proof)
        joiner = "&" if is_and else "|"
        return _CondV(f"({taken} {joiner} {right.code})", True)

    def _cond_to_value(self, cond: _CondV) -> _V:
        if cond.proof is not None:
            return self._const_v(int(cond.proof))
        if cond.lane:
            return _V(f"({cond.code}).astype(_np.int64)", "i", True,
                      rng=(0, 1))
        return _V(f"(1 if {cond.code} else 0)", "i", False, rng=(0, 1))

    def _cond_value(self, expr: ast.Expr, ctx: _Ctx) -> _V:
        return self._cond_to_value(self._cond(expr, ctx))

    def _conditional(self, expr: ast.Conditional, ctx: _Ctx) -> _V:
        cond = self._cond(expr.cond, ctx)
        if cond.proof is not None:
            branch = expr.then if cond.proof else expr.otherwise
            return self._expr(branch, ctx)
        if not cond.lane:
            then_v = self._expr(expr.then, ctx)
            else_v = self._expr(expr.otherwise, ctx)
            if then_v.kind != else_v.kind:
                raise self._fail(
                    "ternary with mixed int/float branch types", expr)
            return _V(f"(({then_v.code}) if {cond.code} else "
                      f"({else_v.code}))", then_v.kind,
                      then_v.lane or else_v.lane)
        self.masked = True
        taken = self._tmp("_c")
        self._emit(f"{taken} = {cond.code}")
        then_mask = self._tmp("_m")
        else_mask = self._tmp("_m")
        if ctx.mask is None:
            self._emit(f"{then_mask} = {taken}")
            self._emit(f"{else_mask} = ~{taken}")
        else:
            self._emit(f"{then_mask} = {ctx.mask} & {taken}")
            self._emit(f"{else_mask} = {ctx.mask} & ~{taken}")
        then_v = self._expr(expr.then, _Ctx(then_mask, ctx.depth + 1))
        else_v = self._expr(expr.otherwise, _Ctx(else_mask, ctx.depth + 1))
        if then_v.kind != else_v.kind:
            raise self._fail("ternary with mixed int/float branch types",
                             expr)
        return _V(f"_np.where({taken}, {then_v.code}, {else_v.code})",
                  then_v.kind, True)

    # -- calls ---------------------------------------------------------------

    def _call(self, expr: ast.Call, ctx: _Ctx) -> _V:
        name = expr.name
        if name == "get_work_dim":
            return self._const_v(self.ndrange.work_dim)
        if name in _WORK_ITEM_QUERIES:
            return self._work_item_query(name, expr, ctx)
        if name in MATH_IMPLS:
            return self._math_call(name, expr, ctx)
        if name in INT_IMPLS:
            return self._int_call(name, expr, ctx)
        if name in self.info.user_functions:
            raise self._fail(f"call to helper function {name!r}", expr)
        raise self._fail(f"call to unsupported function {name!r}", expr)

    def _work_item_query(self, name: str, expr: ast.Call, ctx: _Ctx) -> _V:
        if expr.args:
            dim_v = self._expr(expr.args[0], ctx)
            if dim_v.const is None:
                raise self._fail(
                    f"{name} with a non-constant dimension argument", expr)
            dim = int(dim_v.const)
        else:
            dim = 0
        nd = self.ndrange
        if name in _ID_ATTRS:
            if dim >= nd.work_dim:
                return self._const_v(0)
            attr, prefix = _ID_ATTRS[name]
            py = f"{prefix}{dim}"
            self.used_ids.add((attr, dim, py))
            if name == "get_global_id":
                lo = nd.offset[dim]
                hi = lo + nd.global_size[dim] - 1
            elif name == "get_local_id":
                lo, hi = 0, nd.local_size[dim] - 1
            else:
                lo, hi = 0, nd.num_groups[dim] - 1
            return _V(py, "i", True, rng=self._rng_ok((lo, hi)))
        if name == "get_global_size":
            return self._const_v(
                nd.global_size[dim] if dim < nd.work_dim else 1)
        if name == "get_local_size":
            return self._const_v(
                nd.local_size[dim] if dim < nd.work_dim else 1)
        if name == "get_num_groups":
            return self._const_v(
                nd.num_groups[dim] if dim < nd.work_dim else 1)
        if name == "get_global_offset":
            return self._const_v(nd.offset[dim] if dim < nd.work_dim else 0)
        raise self._fail(f"unknown work-item query {name}", expr)

    def _math_call(self, name: str, expr: ast.Call, ctx: _Ctx) -> _V:
        args = [self._to_kind(self._expr(a, ctx), "f") for a in expr.args]
        kind = "i" if name in _INT_RESULT_MATH else "f"
        if all(a.const is not None for a in args) and ctx.mask is None:
            try:
                return self._const_v(MATH_IMPLS[name](
                    *[a.const for a in args]))
            except Exception:
                pass  # would raise at runtime: emit the guarded form
        codes = ", ".join(a.code for a in args)
        mask = ctx.mask or "None"
        if any(a.lane for a in args):
            return _V(f"rt.math({name!r}, {mask}, {codes})", kind, True)
        return _V(f"rt.math_u({name!r}, {mask}, {codes})", kind, False)

    def _int_call(self, name: str, expr: ast.Call, ctx: _Ctx) -> _V:
        args = [self._expr(a, ctx) for a in expr.args]
        kind = "f" if any(a.kind == "f" for a in args) else "i"
        if all(a.const is not None for a in args) and ctx.mask is None:
            try:
                return self._const_v(INT_IMPLS[name](
                    *[a.const for a in args]))
            except Exception:
                pass
        codes = ", ".join(a.code for a in args)
        if any(a.lane for a in args):
            return _V(f"rt.int_fn({name!r}, {codes})", kind, True)
        mask = ctx.mask or "None"
        return _V(f"rt.int_u({name!r}, {mask}, {codes})", kind, False)


# ---------------------------------------------------------------------------
# Compilation entry points and the launch-keyed cache
# ---------------------------------------------------------------------------


_MAX_RESTARTS = 64


def compile_kernel(info: KernelInfo, args: dict[str, Any],
                   ndrange: NDRange) -> CompiledKernel:
    """Lower + ``exec``-compile one kernel for one launch (uncached).

    Raises :class:`JitUnsupported` when the kernel or launch is outside
    the JIT subset; the caller should use the vector tier.
    """
    scalars, buffers, key = _specialize(info, args, ndrange)
    verdict_state: dict = {}

    def verdicts() -> dict:
        if "v" not in verdict_state:
            from ..analysis.verify import LaunchSpec, verify_launch_cached

            launch = LaunchSpec.from_args(
                ndrange, {**scalars,
                          **{n: b for n, b in buffers.items()}})
            report = verify_launch_cached(info, launch)
            verdict_state["v"] = dict(report.verdicts)
        return verdict_state["v"]

    promoted: frozenset = frozenset()
    for _ in range(_MAX_RESTARTS):
        compiler = _Compiler(info, ndrange, scalars, buffers, verdicts,
                             promoted)
        try:
            fn_name, source = compiler.compile()
        except _Promote as signal:
            promoted = promoted | signal.names
            continue
        break
    else:  # pragma: no cover - monotone promotion cannot cycle this long
        raise JitUnsupported("laneness analysis did not converge")

    namespace: dict = {}
    exec(compile(source, f"<dopia-jit:{info.kernel.name}>", "exec"),
         namespace)
    id_spec = tuple(sorted(compiler.used_ids))
    buffer_params = tuple(n for n in info.buffer_params if n in buffers)
    return CompiledKernel(
        kernel_name=info.kernel.name,
        fn=namespace[fn_name],
        source=source,
        key=key,
        buffer_params=buffer_params,
        id_spec=id_spec,
        masked=compiler.masked,
        oob_elided_by_verdict=compiler.oob_elided_by_verdict,
        verdicts=compiler.verdicts,
    )


def _specialize(info: KernelInfo, args: dict[str, Any],
                ndrange: NDRange) -> tuple[dict, dict, tuple]:
    """Split args into folded scalars and buffers; build the cache key."""
    scalars: dict[str, Any] = {}
    buffers: dict[str, np.ndarray] = {}
    for param in info.kernel.params:
        name = param.name
        if name not in args:
            raise JitUnsupported(f"missing kernel argument {name!r}")
        value = args[name]
        if param.type.pointer:
            if not isinstance(value, np.ndarray):
                raise JitUnsupported(
                    f"buffer argument {name!r} is not an ndarray")
            buffers[name] = value
        else:
            try:
                scalars[name] = int(value) \
                    if param.type.name in _INT_TYPE_NAMES else float(value)
            except (TypeError, ValueError) as exc:
                raise JitUnsupported(
                    f"scalar argument {name!r} is not numeric") from exc
    nd = ndrange
    key = (
        tuple(nd.global_size), tuple(nd.local_size), tuple(nd.offset),
        tuple(sorted(scalars.items())),
        tuple((name, int(arr.shape[0]) if arr.ndim else 0, arr.dtype.str)
              for name, arr in sorted(buffers.items())),
    )
    return scalars, buffers, key


#: Per-KernelInfo program cache, mirroring ``verify._LAUNCH_CACHE``:
#: ``id(info) -> (weakref to the info, {launch key -> program or error})``.
#: The weakref finalizer evicts entries when the info is collected, and a
#: stale id (a new object reusing a dead id) is detected by the ref check.
_JIT_CACHE: dict[int, tuple] = {}
_jit_cache_lock = threading.Lock()

#: Per-kernel cap on cached programs (distinct launch shapes).
_MAX_CACHED_PROGRAMS = 128


def compile_cached(info: KernelInfo, args: dict[str, Any],
                   ndrange: NDRange) -> CompiledKernel:
    """Cached :func:`compile_kernel`, keyed on (launch shape, dtypes).

    Scalar arguments are folded into the generated code, so they are part
    of the key; so are buffer extents and dtypes, because lowering
    specializes widening and bounds constants on both.  Negative results
    (:class:`JitUnsupported`) are cached too, so repeated launches of an
    ineligible kernel pay for the analysis once.
    """
    name = info.kernel.name
    _scalars, _buffers, key = _specialize(info, args, ndrange)
    ident = id(info)
    with _jit_cache_lock:
        entry = _JIT_CACHE.get(ident)
        if entry is not None and entry[0]() is info:
            hit = entry[1].get(key)
            if hit is not None:
                execution_stats.record_jit_cache_hit(name)
                if isinstance(hit, JitUnsupported):
                    raise hit
                return hit
    started = time.perf_counter()
    try:
        result: Any = compile_kernel(info, args, ndrange)
    except JitUnsupported as exc:
        result = exc
    except Exception as exc:  # defensive: a compiler bug must never
        # break a launch — degrade to the vector tier instead.
        result = JitUnsupported(f"internal jit-compiler error: {exc!r}")
    elapsed = time.perf_counter() - started
    execution_stats.record_jit_compile(name, elapsed)
    if isinstance(result, CompiledKernel):
        result.compile_seconds = elapsed
    with _jit_cache_lock:
        entry = _JIT_CACHE.get(ident)
        if entry is None or entry[0]() is not info:
            programs: dict = {}
            try:
                ref = weakref.ref(
                    info, lambda _r, i=ident: _JIT_CACHE.pop(i, None))
            except TypeError:  # pragma: no cover - non-weakrefable info
                ref = lambda: info  # noqa: E731
            entry = (ref, programs)
            _JIT_CACHE[ident] = entry
        programs = entry[1]
        if len(programs) >= _MAX_CACHED_PROGRAMS:
            programs.pop(next(iter(programs)))
        programs[key] = result
    if isinstance(result, JitUnsupported):
        raise result
    return result


def jit_cache_stats() -> dict:
    """Introspection for tests and ``dopia backends``: cache occupancy."""
    with _jit_cache_lock:
        kernels = 0
        programs = 0
        for entry in _JIT_CACHE.values():
            if entry[0]() is not None:
                kernels += 1
                programs += len(entry[1])
        return {"kernels": kernels, "programs": programs}


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class JitExecutor:
    """Drop-in executor running a :class:`CompiledKernel`.

    Construction builds a :class:`VectorizedExecutor` (which validates
    arguments exactly like the scalar oracle and doubles as the fallback
    chain: jit -> vector -> scalar).  ``run`` snapshots the output
    buffers and executes the compiled program per batch; *any* runtime
    exception restores the snapshot and re-runs the launch on the vector
    tier, so even a compiler bug can only cost speed, never correctness
    — a genuine kernel error is then re-raised by the oracle path with
    its exact message and partial-store semantics.
    """

    def __init__(self, info: KernelInfo, args: dict[str, Any],
                 ndrange: NDRange, compiled: CompiledKernel):
        self.info = info
        self.ndrange = ndrange
        self.compiled = compiled
        self.vector = VectorizedExecutor(info, args, ndrange)
        self.args = self.vector.args
        self.used_fallback = False

    def run(self, group_ids: Optional[Iterable[tuple[int, ...]]] = None) -> None:
        groups = list(group_ids if group_ids is not None else
                      self.ndrange.group_ids())
        if not groups:
            return
        ck = self.compiled
        buffers = {
            name: self.args[name]
            for name in self.info.buffer_params
            if isinstance(self.args.get(name), np.ndarray)
        }
        snapshot = {name: array.copy() for name, array in buffers.items()}
        buffer_args = [self.args[name] for name in ck.buffer_params]
        started = time.perf_counter()
        try:
            per_group = self.ndrange.work_items_per_group
            batch = max(1, MAX_LANES_PER_BATCH // max(1, per_group))
            with np.errstate(all="ignore"):
                for start in range(0, len(groups), batch):
                    lanes = _Lanes(self.ndrange, groups[start:start + batch])
                    ids = [getattr(lanes, attr)[dim]
                           for (attr, dim, _py) in ck.id_spec]
                    ck.fn(_Runtime, np, *buffer_args, *ids)
        except Exception as exc:
            for name, saved in snapshot.items():
                buffers[name][...] = saved
            self.used_fallback = True
            execution_stats.record_fallback(
                self.info.kernel.name, f"jit runtime: {exc}", None,
                tier="jit")
            if tracer.enabled:
                tracer.instant("backend.fallback", "backend",
                               kernel=self.info.kernel.name, tier="jit",
                               reason=str(exc))
                tracer.counter("backend.jit_fallbacks")
            self.vector.run(groups)
            return
        execution_stats.record_run(
            self.info.kernel.name, "jit",
            len(groups) * self.ndrange.work_items_per_group,
            time.perf_counter() - started,
        )

    def run_group(self, group_id: tuple[int, ...]) -> None:
        self.run([group_id])
