"""ND-range geometry: work-items, work-groups, and their decomposition.

Mirrors the OpenCL execution model of paper Figure 2: an n-dimensional
index space is split into work-groups (the minimal unit of assignment) of
work-items (the atomic unit of work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _as_tuple(value: int | tuple[int, ...] | list[int]) -> tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class NDRange:
    """An OpenCL ND-range: global size, work-group size, global offset.

    All three are per-dimension tuples; ``local_size`` must divide
    ``global_size`` element-wise (the paper's workloads always pad to a
    multiple and guard with ``if (i < n)`` inside the kernel).
    """

    global_size: tuple[int, ...]
    local_size: tuple[int, ...]
    offset: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "global_size", _as_tuple(self.global_size))
        object.__setattr__(self, "local_size", _as_tuple(self.local_size))
        offset = _as_tuple(self.offset) if self.offset else (0,) * self.work_dim
        object.__setattr__(self, "offset", offset)
        if len(self.local_size) != len(self.global_size):
            raise ValueError("global_size and local_size dimensionality differ")
        if len(self.offset) != len(self.global_size):
            raise ValueError("offset dimensionality differs from global_size")
        for g, l in zip(self.global_size, self.local_size):
            if l <= 0 or g <= 0:
                raise ValueError("sizes must be positive")
            if g % l != 0:
                raise ValueError(f"local size {l} does not divide global size {g}")

    @property
    def work_dim(self) -> int:
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        return math.prod(self.global_size)

    @property
    def work_items_per_group(self) -> int:
        return math.prod(self.local_size)

    @property
    def num_groups(self) -> tuple[int, ...]:
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))

    @property
    def total_groups(self) -> int:
        return math.prod(self.num_groups)

    def group_ids(self):
        """Iterate all work-group id tuples in linear (row-major) order."""
        counts = self.num_groups
        if self.work_dim == 1:
            for i in range(counts[0]):
                yield (i,)
        elif self.work_dim == 2:
            for j in range(counts[1]):
                for i in range(counts[0]):
                    yield (i, j)
        else:
            for k in range(counts[2]):
                for j in range(counts[1]):
                    for i in range(counts[0]):
                        yield (i, j, k)

    def linear_group_id(self, group_id: tuple[int, ...]) -> int:
        """Row-major linearisation of a group id (dimension 0 fastest)."""
        counts = self.num_groups
        linear = 0
        for dim in reversed(range(self.work_dim)):
            linear = linear * counts[dim] + group_id[dim]
        return linear

    def group_from_linear(self, linear: int) -> tuple[int, ...]:
        """Inverse of :meth:`linear_group_id`."""
        counts = self.num_groups
        out = []
        for dim in range(self.work_dim):
            out.append(linear % counts[dim])
            linear //= counts[dim]
        return tuple(out)

    def local_ids(self):
        """Iterate all local work-item ids within one group (dim 0 fastest)."""
        sizes = self.local_size
        if self.work_dim == 1:
            for i in range(sizes[0]):
                yield (i,)
        elif self.work_dim == 2:
            for j in range(sizes[1]):
                for i in range(sizes[0]):
                    yield (i, j)
        else:
            for k in range(sizes[2]):
                for j in range(sizes[1]):
                    for i in range(sizes[0]):
                        yield (i, j, k)

    def linear_local_id(self, local_id: tuple[int, ...]) -> int:
        """Row-major linearisation of a local id (dimension 0 fastest).

        This is the order in which work-items map to the PEs of a compute
        unit, which the malleable-kernel throttling test in Figure 5 line 13
        relies on.
        """
        sizes = self.local_size
        linear = 0
        for dim in reversed(range(self.work_dim)):
            linear = linear * sizes[dim] + local_id[dim]
        return linear
