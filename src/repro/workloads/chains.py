"""Registered multi-kernel chains: applications as submittable task graphs.

:mod:`repro.workloads.applications` drives multi-kernel applications
through the ``repro.cl`` API with host control flow between launches.
This module packages the same applications as *data*: a
:class:`KernelChain` is a list of :class:`ChainTask`\\ s (workload +
bound argument dict + named dependencies) over one shared buffer set,
ready to hand to ``DopiaServer.submit_chain`` — the whole chain goes to
the server in one shot and pipelines worker-to-worker — or to
:func:`repro.core.runtime.execute_chain_serial` for the serial oracle.

Each chain carries its NumPy-reference final buffer values, so
correctness is checked the same way the application drivers do.

Dependency shape per chain (what the graph scheduler should discover
from buffer hazards alone; the explicit ``deps`` make it self-describing):

``FDTD``
    per timestep ``t``: ``s1@t`` (ey) and ``s2@t`` (ex) are independent,
    ``s3@t`` (hz) needs both; ``s1/s2@t+1`` need ``s3@t`` — critical
    path 2 kernels per step vs 3 serial.
``ATAX``
    ``a1`` (tmp = A x) then ``a2`` (y = Aᵀ tmp), strictly serial.
``BICG``
    ``s = Aᵀ r`` and ``q = A p`` share only reads — width 2, no edges.
``MVT``
    two independent accumulation chains (``x1 += A y1`` repeated, and
    ``x2 += Aᵀ y2`` repeated) — each rep depends on the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .applications import _fdtd_reference
from .polybench import (
    make_atax1,
    make_atax2,
    make_bicg1,
    make_bicg2,
    make_fdtd1,
    make_fdtd2,
    make_fdtd3,
    make_mvt1,
    make_mvt2,
)
from .registry import Workload


@dataclass(frozen=True)
class ChainTask:
    """One launch of a chain: workload, bound args, named dependencies."""

    key: str
    workload: Workload
    args: dict
    deps: tuple[str, ...] = ()


@dataclass
class KernelChain:
    """A submittable multi-kernel application over shared buffers.

    ``buffers`` are the live arrays the tasks mutate; ``expected`` holds
    the NumPy-reference final values for the buffers the application
    verifies (computed at construction from the initial state).
    """

    name: str
    tasks: list[ChainTask]
    buffers: dict[str, np.ndarray]
    expected: dict[str, np.ndarray] = field(default_factory=dict)

    def verify(self, rtol: float = 1e-6, atol: float = 1e-9) -> bool:
        """Do the live buffers match the NumPy reference?"""
        return all(
            np.allclose(self.buffers[name], value, rtol=rtol, atol=atol)
            for name, value in self.expected.items()
        )

    def buffer_bytes(self) -> dict[str, bytes]:
        """Raw bytes of every buffer — the bit-identity comparison unit."""
        return {name: arr.tobytes() for name, arr in self.buffers.items()}

    def __len__(self) -> int:
        return len(self.tasks)


def _pad(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def make_fdtd_chain(steps: int = 2, grid: int = 8,
                    wg: tuple[int, int] = (4, 4), seed: int = 0) -> KernelChain:
    """FDTD-2D: ``steps`` timesteps of the three field updates as one graph."""
    rng = np.random.default_rng(seed)
    nx = ny = grid
    buffers = {
        "ex": rng.uniform(-1, 1, nx * (ny + 1)),
        "ey": rng.uniform(-1, 1, (nx + 1) * ny),
        "hz": rng.uniform(-1, 1, nx * ny),
        "_fict_": rng.uniform(-1, 1, steps + 1),
    }
    ref = _fdtd_reference(
        buffers["ex"].copy(), buffers["ey"].copy(), buffers["hz"].copy(),
        buffers["_fict_"], nx, ny, steps,
    )
    size = (_pad(grid, wg[0]), _pad(grid, wg[1]))
    geometry = dict(global_size=size, local_size=wg)
    step2 = make_fdtd2().scaled(
        key=f"FDTD2/chain{grid}", scalar_args={"nx": nx, "ny": ny}, **geometry)
    step3 = make_fdtd3().scaled(
        key=f"FDTD3/chain{grid}", scalar_args={"nx": nx, "ny": ny}, **geometry)
    fields = {name: buffers[name] for name in ("ex", "ey", "hz")}
    tasks: list[ChainTask] = []
    for t in range(steps):
        step1 = make_fdtd1().scaled(
            key=f"FDTD1/chain{grid}/t{t}",
            scalar_args={"t": t, "nx": nx, "ny": ny}, **geometry)
        prev = (f"s3@{t - 1}",) if t > 0 else ()
        tasks.append(ChainTask(
            key=f"s1@{t}", workload=step1,
            args={"_fict_": buffers["_fict_"], **fields, **step1.scalar_args},
            deps=prev))
        tasks.append(ChainTask(
            key=f"s2@{t}", workload=step2,
            args={**fields, **step2.scalar_args}, deps=prev))
        tasks.append(ChainTask(
            key=f"s3@{t}", workload=step3,
            args={**fields, **step3.scalar_args},
            deps=(f"s1@{t}", f"s2@{t}")))
    return KernelChain(
        name=f"fdtd{grid}x{steps}", tasks=tasks, buffers=buffers,
        expected={"ex": ref[0], "ey": ref[1], "hz": ref[2]},
    )


def make_atax_chain(n: int = 24, wg: int = 8, reps: int = 1,
                    seed: int = 0) -> KernelChain:
    """ATAX: ``tmp = A x`` then ``y = Aᵀ tmp``, repeated ``reps`` times."""
    rng = np.random.default_rng(seed)
    buffers = {
        "A": rng.uniform(-1, 1, n * n),
        "x": rng.uniform(-1, 1, n),
        "tmp": np.zeros(n),
        "y": np.zeros(n),
    }
    kernel1 = make_atax1(n=n, wg=wg).scaled(key=f"ATAX1/chain{n}")
    kernel2 = make_atax2(n=n, wg=wg).scaled(key=f"ATAX2/chain{n}")
    args1 = {"A": buffers["A"], "x": buffers["x"], "tmp": buffers["tmp"],
             **kernel1.scalar_args}
    args2 = {"A": buffers["A"], "y": buffers["y"], "tmp": buffers["tmp"],
             **kernel2.scalar_args}
    tasks: list[ChainTask] = []
    for rep in range(reps):
        prev = (f"a2@{rep - 1}",) if rep > 0 else ()
        tasks.append(ChainTask(key=f"a1@{rep}", workload=kernel1, args=args1,
                               deps=prev))
        tasks.append(ChainTask(key=f"a2@{rep}", workload=kernel2, args=args2,
                               deps=(f"a1@{rep}",)))
    M = buffers["A"].reshape(n, n)
    return KernelChain(
        name=f"atax{n}x{reps}", tasks=tasks, buffers=buffers,
        expected={"tmp": M @ buffers["x"], "y": M.T @ (M @ buffers["x"])},
    )


def make_bicg_chain(n: int = 24, wg: int = 8, seed: int = 0) -> KernelChain:
    """BiCG sub-step: ``s = Aᵀ r`` ∥ ``q = A p`` — a width-2 graph."""
    rng = np.random.default_rng(seed)
    buffers = {
        "A": rng.uniform(-1, 1, n * n),
        "r": rng.uniform(-1, 1, n),
        "p": rng.uniform(-1, 1, n),
        "s": np.zeros(n),
        "q": np.zeros(n),
    }
    kernel1 = make_bicg1(n=n, wg=wg).scaled(key=f"BICG1/chain{n}")
    kernel2 = make_bicg2(n=n, wg=wg).scaled(key=f"BICG2/chain{n}")
    tasks = [
        ChainTask(key="b1", workload=kernel1,
                  args={"A": buffers["A"], "r": buffers["r"],
                        "s": buffers["s"], **kernel1.scalar_args}),
        ChainTask(key="b2", workload=kernel2,
                  args={"A": buffers["A"], "p": buffers["p"],
                        "q": buffers["q"], **kernel2.scalar_args}),
    ]
    M = buffers["A"].reshape(n, n)
    return KernelChain(
        name=f"bicg{n}", tasks=tasks, buffers=buffers,
        expected={"s": M.T @ buffers["r"], "q": M @ buffers["p"]},
    )


def make_mvt_chain(n: int = 24, wg: int = 8, reps: int = 2,
                   seed: int = 0) -> KernelChain:
    """MVT: two independent accumulation chains, ``reps`` launches each."""
    rng = np.random.default_rng(seed)
    buffers = {
        "A": rng.uniform(-1, 1, n * n),
        "x1": rng.uniform(-1, 1, n),
        "x2": rng.uniform(-1, 1, n),
        "y1": rng.uniform(-1, 1, n),
        "y2": rng.uniform(-1, 1, n),
    }
    kernel1 = make_mvt1(n=n, wg=wg).scaled(key=f"MVT1/chain{n}")
    kernel2 = make_mvt2(n=n, wg=wg).scaled(key=f"MVT2/chain{n}")
    args1 = {"A": buffers["A"], "x1": buffers["x1"], "y1": buffers["y1"],
             **kernel1.scalar_args}
    args2 = {"A": buffers["A"], "x2": buffers["x2"], "y2": buffers["y2"],
             **kernel2.scalar_args}
    tasks: list[ChainTask] = []
    for rep in range(reps):
        tasks.append(ChainTask(
            key=f"m1@{rep}", workload=kernel1, args=args1,
            deps=(f"m1@{rep - 1}",) if rep > 0 else ()))
        tasks.append(ChainTask(
            key=f"m2@{rep}", workload=kernel2, args=args2,
            deps=(f"m2@{rep - 1}",) if rep > 0 else ()))
    M = buffers["A"].reshape(n, n)
    x1_ref = buffers["x1"].copy()
    x2_ref = buffers["x2"].copy()
    for _ in range(reps):
        x1_ref = x1_ref + M @ buffers["y1"]
        x2_ref = x2_ref + M.T @ buffers["y2"]
    return KernelChain(
        name=f"mvt{n}x{reps}", tasks=tasks, buffers=buffers,
        expected={"x1": x1_ref, "x2": x2_ref},
    )


#: Chain factories by application name, for the CLI and the chained bench.
CHAIN_FACTORIES = {
    "FDTD": make_fdtd_chain,
    "ATAX": make_atax_chain,
    "BICG": make_bicg_chain,
    "MVT": make_mvt_chain,
}
