"""Workloads: Table-4 kernels, Table-2 generator, multi-kernel applications."""

from .applications import (
    APPLICATIONS,
    AppResult,
    Application,
    AtaxApplication,
    BicgApplication,
    FdtdApplication,
    MvtApplication,
    PageRankApplication,
)
from .chains import (
    CHAIN_FACTORIES,
    ChainTask,
    KernelChain,
    make_atax_chain,
    make_bicg_chain,
    make_fdtd_chain,
    make_mvt_chain,
)
from .pagerank import PAGERANK_SRC, make_pagerank, pagerank_reference
from .polybench import (
    make_atax1,
    make_atax2,
    make_bicg1,
    make_bicg2,
    make_conv2d,
    make_fdtd1,
    make_fdtd2,
    make_fdtd3,
    make_gemm,
    make_gesummv,
    make_mvt1,
    make_mvt2,
    make_syr2k,
)
from .registry import Workload
from .spmv import SPMV_SRC, make_csr_matrix, make_spmv, spmv_reference
from .synthetic import (
    LOOP_EXTENT,
    TABLE4_DIMS,
    TABLE4_DTYPES,
    TABLE4_GAMMAS,
    TABLE4_PATTERNS,
    TABLE4_SIZES,
    TABLE4_WG_SIZES,
    SyntheticSpec,
    generate_source,
    make_synthetic,
    reference_result,
    training_specs,
    training_workloads,
)

#: Factories for the 14 real-world kernels of Table 4 / Figure 13, in the
#: paper's presentation order, at their paper configurations.
REAL_WORKLOAD_FACTORIES = {
    "2DCONV": make_conv2d,
    "ATAX1": make_atax1,
    "ATAX2": make_atax2,
    "BICG1": make_bicg1,
    "BICG2": make_bicg2,
    "FDTD1": make_fdtd1,
    "FDTD2": make_fdtd2,
    "FDTD3": make_fdtd3,
    "GESUMMV": make_gesummv,
    "MVT1": make_mvt1,
    "MVT2": make_mvt2,
    "SYR2K": make_syr2k,
    "PageRank": make_pagerank,
    "SpMV": make_spmv,
}


def real_workloads() -> list[Workload]:
    """The 14 Table-4 real-world workloads at their paper configurations."""
    return [factory() for factory in REAL_WORKLOAD_FACTORIES.values()]


#: Every Table-4 registry kernel at a size small enough for the scalar
#: oracle — keys deliberately mirror ``REAL_WORKLOAD_FACTORIES``.  The
#: differential suite and ``dopia trace`` both drive launches from here.
SCALED_REAL_FACTORIES = {
    "2DCONV": lambda: make_conv2d(n=12, wg=(4, 4)),
    "ATAX1": lambda: make_atax1(n=24, wg=8),
    "ATAX2": lambda: make_atax2(n=24, wg=8),
    "BICG1": lambda: make_bicg1(n=24, wg=8),
    "BICG2": lambda: make_bicg2(n=24, wg=8),
    "FDTD1": lambda: make_fdtd1(n=1, wg=(4, 4)),
    "FDTD2": lambda: make_fdtd2(n=1, wg=(4, 4)),
    "FDTD3": lambda: make_fdtd3(n=1, wg=(4, 4)),
    "GESUMMV": lambda: make_gesummv(n=24, wg=8),
    "MVT1": lambda: make_mvt1(n=24, wg=8),
    "MVT2": lambda: make_mvt2(n=24, wg=8),
    "SYR2K": lambda: make_syr2k(n=8, wg=(4, 4)),
    "PageRank": lambda: make_pagerank(n=32, wg=8, avg_in_degree=4),
    "SpMV": lambda: make_spmv(n=32, wg=8, nnz_per_row=4),
}


def scaled_real_workloads() -> list[Workload]:
    """The Table-4 registry at interpreter-friendly sizes."""
    return [factory() for factory in SCALED_REAL_FACTORIES.values()]


__all__ = [
    "CHAIN_FACTORIES", "ChainTask", "KernelChain", "make_atax_chain",
    "make_bicg_chain", "make_fdtd_chain", "make_mvt_chain",
    "APPLICATIONS", "AppResult", "Application", "AtaxApplication",
    "BicgApplication", "FdtdApplication", "MvtApplication",
    "PageRankApplication",
    "PAGERANK_SRC", "make_pagerank", "pagerank_reference", "make_atax1",
    "make_atax2", "make_bicg1", "make_bicg2", "make_conv2d", "make_fdtd1",
    "make_fdtd2", "make_fdtd3", "make_gemm", "make_gesummv", "make_mvt1", "make_mvt2",
    "make_syr2k", "Workload", "SPMV_SRC", "make_csr_matrix", "make_spmv",
    "spmv_reference", "LOOP_EXTENT", "TABLE4_DIMS", "TABLE4_DTYPES",
    "TABLE4_GAMMAS", "TABLE4_PATTERNS", "TABLE4_SIZES", "TABLE4_WG_SIZES",
    "SyntheticSpec", "generate_source", "make_synthetic", "reference_result",
    "training_specs", "training_workloads", "REAL_WORKLOAD_FACTORIES",
    "real_workloads", "SCALED_REAL_FACTORIES", "scaled_real_workloads",
]
