"""The workload abstraction shared by benchmarks, tests, and the runtime.

A :class:`Workload` bundles everything needed to launch one kernel:
source text, launch geometry, scalar arguments, and a recipe for building
host buffers.  Workloads can be *profiled* (static analysis + runtime
instantiation → a :class:`repro.analysis.profile.KernelProfile` for the
simulator) and *materialised* (NumPy buffers for functional execution by
the interpreter, optionally scaled down so correctness tests stay fast).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from ..analysis.profile import KernelProfile, profile_kernel
from ..frontend.parser import parse
from ..frontend.semantics import KernelInfo, analyze_kernel
from ..interp.ndrange import NDRange

#: Builds the host buffers of a workload: (workload, rng) -> {name: ndarray}.
BufferBuilder = Callable[["Workload", np.random.Generator], dict[str, np.ndarray]]


@dataclass(frozen=True)
class Workload:
    """One launchable kernel with its inputs.

    ``key`` uniquely identifies the workload (used for dataset grouping,
    noise seeding, and result tables).  ``scalar_args`` holds the value
    parameters passed at launch; ``buffer_builder`` constructs the pointer
    arguments on demand.
    """

    key: str
    source: str
    kernel_name: str
    global_size: tuple[int, ...]
    local_size: tuple[int, ...]
    scalar_args: dict[str, float] = field(default_factory=dict)
    buffer_builder: Optional[BufferBuilder] = None
    irregular_trip_hint: Optional[float] = None
    description: str = ""

    # -- geometry ---------------------------------------------------------------

    @property
    def work_dim(self) -> int:
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        return math.prod(self.global_size)

    @property
    def work_group_items(self) -> int:
        return math.prod(self.local_size)

    @property
    def num_work_groups(self) -> int:
        return self.total_work_items // self.work_group_items

    def ndrange(self) -> NDRange:
        return NDRange(self.global_size, self.local_size)

    # -- analysis ---------------------------------------------------------------

    def kernel_info(self) -> KernelInfo:
        """Parse + semantically analyse the kernel (helpers included)."""
        unit = parse(self.source)
        kernels = unit.kernels()
        if self.kernel_name:
            kernel = unit.kernel(self.kernel_name)
        else:
            kernel = kernels[0]
        return analyze_kernel(kernel, unit)

    def profile(self) -> KernelProfile:
        """The simulator-facing profile of this launch."""
        return profile_kernel(
            self.kernel_info(),
            self.scalar_args,
            self.total_work_items,
            self.work_group_items,
            work_dim=self.work_dim,
            irregular_trip_hint=self.irregular_trip_hint,
        )

    # -- materialisation ------------------------------------------------------

    def build_buffers(self, rng: np.random.Generator | int = 0) -> dict[str, np.ndarray]:
        """Construct the kernel's pointer arguments as NumPy arrays."""
        if self.buffer_builder is None:
            raise ValueError(f"workload {self.key!r} has no buffer builder")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return self.buffer_builder(self, rng)

    def full_args(self, rng: np.random.Generator | int = 0) -> dict:
        """Buffers plus scalar arguments — the complete launch argument set."""
        args: dict = dict(self.build_buffers(rng))
        args.update(self.scalar_args)
        return args

    def scaled(self, **overrides) -> "Workload":
        """A copy with some fields replaced (used for small test variants)."""
        return replace(self, **overrides)
