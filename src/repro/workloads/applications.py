"""Multi-kernel applications: the host programs behind Table 4's kernels.

The paper evaluates individual kernels, but ATAX/BICG/MVT/FDTD/PageRank are
*applications* — sequences of kernel launches sharing buffers, with host
control flow between them (FDTD's time loop, PageRank's convergence loop).
This module provides runnable host drivers over the :mod:`repro.cl` API so
Dopia can be exercised the way a real OpenCL application would use it:
one program build (analysis happens once per kernel), many enqueues (DoP
selection happens per launch).

Every application verifies its final buffers against a NumPy reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import cl
from .pagerank import PAGERANK_SRC
from .polybench import (
    ATAX1_SRC,
    ATAX2_SRC,
    BICG1_SRC,
    BICG2_SRC,
    FDTD1_SRC,
    FDTD2_SRC,
    FDTD3_SRC,
    MVT1_SRC,
    MVT2_SRC,
)
from .spmv import make_csr_matrix


@dataclass
class AppResult:
    """Outcome of one application run."""

    name: str
    simulated_time_s: float
    launches: int
    selections: list = field(default_factory=list)  #: DoP per launch (if Dopia ran)
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    verified: bool = False


class Application:
    """Base class: one context, several kernels, shared buffers."""

    name = "app"
    sources: dict[str, str] = {}

    def __init__(self, platform_name: str = "kaveri", wg: int = 64):
        self.ctx = cl.create_context(platform_name)
        self.queue = cl.create_command_queue(self.ctx)
        self.wg = wg
        self.kernels: dict[str, cl.Kernel] = {}
        self._time = 0.0
        self._launches = 0
        self._selections: list = []

    # -- plumbing ---------------------------------------------------------------

    def build(self) -> None:
        for name, source in self.sources.items():
            program = self.ctx.create_program_with_source(source).build()
            self.kernels[name] = program.create_kernel(name)

    def launch(self, kernel_name: str, global_size: int, args: dict,
               hint: float | None = None) -> None:
        """Bind ``args`` and enqueue a 1-D launch of ``kernel_name``."""
        kernel = self.kernels[kernel_name]
        for name, value in args.items():
            kernel.set_arg(name, value)
        event = self.queue.enqueue_nd_range_kernel(
            kernel, (global_size,), (self.wg,), irregular_trip_hint=hint,
        )
        self._time += event.simulated_time_s
        self._launches += 1
        prediction = event.details.get("prediction")
        if prediction is not None:
            self._selections.append(prediction.config.utils)

    def _pad(self, n: int) -> int:
        return (n + self.wg - 1) // self.wg * self.wg

    def result(self, outputs: dict[str, np.ndarray], verified: bool) -> AppResult:
        return AppResult(
            name=self.name,
            simulated_time_s=self._time,
            launches=self._launches,
            selections=self._selections,
            outputs=outputs,
            verified=verified,
        )


class AtaxApplication(Application):
    """ATAX: y = Aᵀ (A x) — two dependent kernels sharing ``tmp``."""

    name = "atax"
    sources = {"atax_kernel1": ATAX1_SRC, "atax_kernel2": ATAX2_SRC}

    def run(self, n: int = 256, seed: int = 0) -> AppResult:
        rng = np.random.default_rng(seed)
        A = rng.uniform(-1, 1, n * n)
        x = rng.uniform(-1, 1, n)
        tmp = np.zeros(n)
        y = np.zeros(n)
        buffers = {name: self.ctx.create_buffer(arr)
                   for name, arr in (("A", A), ("x", x), ("tmp", tmp), ("y", y))}
        self.build()
        self.launch("atax_kernel1", self._pad(n),
                    {"A": buffers["A"], "x": buffers["x"], "tmp": buffers["tmp"],
                     "nx": n, "ny": n})
        self.launch("atax_kernel2", self._pad(n),
                    {"A": buffers["A"], "y": buffers["y"], "tmp": buffers["tmp"],
                     "nx": n, "ny": n})
        expected = A.reshape(n, n).T @ (A.reshape(n, n) @ x)
        return self.result({"y": y}, bool(np.allclose(y, expected)))


class BicgApplication(Application):
    """BiCG sub-step: s = Aᵀ r and q = A p (independent kernels)."""

    name = "bicg"
    sources = {"bicg_kernel1": BICG1_SRC, "bicg_kernel2": BICG2_SRC}

    def run(self, n: int = 256, seed: int = 0) -> AppResult:
        rng = np.random.default_rng(seed)
        A = rng.uniform(-1, 1, n * n)
        r = rng.uniform(-1, 1, n)
        p = rng.uniform(-1, 1, n)
        s = np.zeros(n)
        q = np.zeros(n)
        buf = {k: self.ctx.create_buffer(v)
               for k, v in (("A", A), ("r", r), ("p", p), ("s", s), ("q", q))}
        self.build()
        self.launch("bicg_kernel1", self._pad(n),
                    {"A": buf["A"], "r": buf["r"], "s": buf["s"], "nx": n, "ny": n})
        self.launch("bicg_kernel2", self._pad(n),
                    {"A": buf["A"], "p": buf["p"], "q": buf["q"], "nx": n, "ny": n})
        M = A.reshape(n, n)
        ok = np.allclose(s, M.T @ r) and np.allclose(q, M @ p)
        return self.result({"s": s, "q": q}, bool(ok))


class MvtApplication(Application):
    """MVT: x1 += A y1 and x2 += Aᵀ y2."""

    name = "mvt"
    sources = {"mvt_kernel1": MVT1_SRC, "mvt_kernel2": MVT2_SRC}

    def run(self, n: int = 256, seed: int = 0) -> AppResult:
        rng = np.random.default_rng(seed)
        A = rng.uniform(-1, 1, n * n)
        x1 = rng.uniform(-1, 1, n)
        x2 = rng.uniform(-1, 1, n)
        y1 = rng.uniform(-1, 1, n)
        y2 = rng.uniform(-1, 1, n)
        x1_0, x2_0 = x1.copy(), x2.copy()
        buf = {k: self.ctx.create_buffer(v) for k, v in
               (("A", A), ("x1", x1), ("x2", x2), ("y1", y1), ("y2", y2))}
        self.build()
        self.launch("mvt_kernel1", self._pad(n),
                    {"A": buf["A"], "x1": buf["x1"], "y1": buf["y1"], "n": n})
        self.launch("mvt_kernel2", self._pad(n),
                    {"A": buf["A"], "x2": buf["x2"], "y2": buf["y2"], "n": n})
        M = A.reshape(n, n)
        ok = np.allclose(x1, x1_0 + M @ y1) and np.allclose(x2, x2_0 + M.T @ y2)
        return self.result({"x1": x1, "x2": x2}, bool(ok))


class FdtdApplication(Application):
    """FDTD-2D: ``steps`` time iterations of the three field updates."""

    name = "fdtd"
    sources = {"fdtd_step1": FDTD1_SRC, "fdtd_step2": FDTD2_SRC,
               "fdtd_step3": FDTD3_SRC}

    def __init__(self, platform_name: str = "kaveri", wg: tuple[int, int] = (8, 8)):
        super().__init__(platform_name, wg=wg[0])
        self.wg2d = wg

    def run(self, grid: int = 32, steps: int = 4, seed: int = 0) -> AppResult:
        rng = np.random.default_rng(seed)
        nx = ny = grid
        ex = rng.uniform(-1, 1, nx * (ny + 1))
        ey = rng.uniform(-1, 1, (nx + 1) * ny)
        hz = rng.uniform(-1, 1, nx * ny)
        fict = rng.uniform(-1, 1, steps + 1)
        reference = _fdtd_reference(ex.copy(), ey.copy(), hz.copy(), fict, nx, ny, steps)
        buf = {k: self.ctx.create_buffer(v) for k, v in
               (("ex", ex), ("ey", ey), ("hz", hz), ("_fict_", fict))}
        self.build()
        size = ((nx + self.wg2d[0] - 1) // self.wg2d[0] * self.wg2d[0],
                (ny + self.wg2d[1] - 1) // self.wg2d[1] * self.wg2d[1])
        for t in range(steps):
            self._launch2d("fdtd_step1", size,
                           {"_fict_": buf["_fict_"], "ex": buf["ex"],
                            "ey": buf["ey"], "hz": buf["hz"],
                            "t": t, "nx": nx, "ny": ny})
            self._launch2d("fdtd_step2", size,
                           {"ex": buf["ex"], "ey": buf["ey"], "hz": buf["hz"],
                            "nx": nx, "ny": ny})
            self._launch2d("fdtd_step3", size,
                           {"ex": buf["ex"], "ey": buf["ey"], "hz": buf["hz"],
                            "nx": nx, "ny": ny})
        ok = (np.allclose(ex, reference[0]) and np.allclose(ey, reference[1])
              and np.allclose(hz, reference[2]))
        return self.result({"ex": ex, "ey": ey, "hz": hz}, bool(ok))

    def _launch2d(self, name: str, size, args) -> None:
        kernel = self.kernels[name]
        for arg_name, value in args.items():
            kernel.set_arg(arg_name, value)
        event = self.queue.enqueue_nd_range_kernel(kernel, size, self.wg2d)
        self._time += event.simulated_time_s
        self._launches += 1
        prediction = event.details.get("prediction")
        if prediction is not None:
            self._selections.append(prediction.config.utils)


def _fdtd_reference(ex, ey, hz, fict, nx, ny, steps):
    """NumPy reference of the FDTD-2D update sequence."""
    ex2 = ex.reshape(nx, ny + 1)
    ey2 = ey.reshape(nx + 1, ny)
    hz2 = hz.reshape(nx, ny)
    for t in range(steps):
        ey2[0, :] = fict[t]
        ey2[1:nx, :] -= 0.5 * (hz2[1:nx, :] - hz2[: nx - 1, :])
        ex2[:, 1:ny] -= 0.5 * (hz2[:, 1:ny] - hz2[:, : ny - 1])
        hz2[:, :] -= 0.7 * (
            ex2[:, 1 : ny + 1] - ex2[:, :ny] + ey2[1 : nx + 1, :] - ey2[:nx, :]
        )
    return ex2.ravel(), ey2.ravel(), hz2.ravel()


class PageRankApplication(Application):
    """PageRank power iteration until the rank vector stops moving."""

    name = "pagerank"
    sources = {"pagerank_step": PAGERANK_SRC}

    def run(
        self, n: int = 256, avg_degree: int = 8, max_iters: int = 100,
        tol: float = 1e-10, seed: int = 0,
    ) -> AppResult:
        rng = np.random.default_rng(seed)
        rowptr, colidx, _ = make_csr_matrix(n, n, avg_degree, rng)
        outdeg = np.bincount(colidx, minlength=n).astype(np.float64)
        outdeg[outdeg == 0.0] = 1.0
        rank = np.full(n, 1.0 / n)
        new_rank = np.zeros(n)
        buf = {
            "rowptr": self.ctx.create_buffer(rowptr),
            "colidx": self.ctx.create_buffer(colidx),
            "rank": self.ctx.create_buffer(rank),
            "new_rank": self.ctx.create_buffer(new_rank),
            "inv_outdeg": self.ctx.create_buffer(1.0 / outdeg),
        }
        self.build()
        iterations = 0
        for _ in range(max_iters):
            self.launch(
                "pagerank_step", self._pad(n),
                {"rowptr": buf["rowptr"], "colidx": buf["colidx"],
                 "rank": buf["rank"], "new_rank": buf["new_rank"],
                 "inv_outdeg": buf["inv_outdeg"], "damping": 0.85, "n": n},
                hint=float(avg_degree),
            )
            iterations += 1
            delta = float(np.abs(buf["new_rank"].array - buf["rank"].array).max())
            buf["rank"], buf["new_rank"] = buf["new_rank"], buf["rank"]
            if delta < tol:
                break
        ranks = buf["rank"].array
        verified = abs(float(ranks.sum()) - 1.0) < 0.2 and iterations < max_iters
        return self.result({"rank": ranks, "iterations": np.array([iterations])},
                           bool(verified))


#: All applications by name.
APPLICATIONS = {
    app.name: app
    for app in (AtaxApplication, BicgApplication, MvtApplication,
                FdtdApplication, PageRankApplication)
}
