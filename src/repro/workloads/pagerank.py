"""PageRank (Table 4): one power-iteration step over a CSR in-edge graph.

The kernel computes, per vertex, the damped sum of incoming ranks weighted
by the source vertices' inverse out-degrees [4].  The host (or the
quickstart example) iterates the kernel until convergence, swapping the
rank buffers between launches — the paper's "iterative PageRank kernel".
"""

from __future__ import annotations

import numpy as np

from .registry import Workload
from .spmv import make_csr_matrix

PAGERANK_SRC = """
__kernel void pagerank_step(__global int* rowptr, __global int* colidx,
                            __global float* rank, __global float* new_rank,
                            __global float* inv_outdeg,
                            float damping, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float sum = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i + 1]; k++) {
            int src = colidx[k];
            sum = sum + rank[src] * inv_outdeg[src];
        }
        new_rank[i] = (1.0f - damping) / n + damping * sum;
    }
}
"""


def _pagerank_buffers(w: Workload, rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = int(w.scalar_args["n"])
    avg_in = int(w.irregular_trip_hint or 16)
    avg_in = min(avg_in, max(n // 4, 1))
    rowptr, colidx, _ = make_csr_matrix(n, n, avg_in, rng)
    outdeg = np.bincount(colidx, minlength=n).astype(np.float64)
    outdeg[outdeg == 0.0] = 1.0
    return {
        "rowptr": rowptr,
        "colidx": colidx,
        "rank": np.full(n, 1.0 / n),
        "new_rank": np.zeros(n),
        "inv_outdeg": 1.0 / outdeg,
    }


def make_pagerank(n: int = 16384, wg: int = 256, avg_in_degree: int = 16384) -> Workload:
    return Workload(
        key=f"PageRank/{n}/wg{wg}",
        source=PAGERANK_SRC,
        kernel_name="pagerank_step",
        global_size=(((n + wg - 1) // wg) * wg,),
        local_size=(wg,),
        scalar_args={"damping": 0.85, "n": n},
        buffer_builder=_pagerank_buffers,
        irregular_trip_hint=float(avg_in_degree),
        description="PageRank power-iteration step (CSR in-edges)",
    )


def pagerank_reference(args: dict) -> np.ndarray:
    """NumPy reference for one PageRank step on materialised arguments."""
    n = int(args["n"])
    damping = float(args["damping"])
    rowptr, colidx = args["rowptr"], args["colidx"]
    contrib = args["rank"] * args["inv_outdeg"]
    out = np.empty(n)
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        out[i] = (1.0 - damping) / n + damping * float(contrib[colidx[lo:hi]].sum())
    return out
