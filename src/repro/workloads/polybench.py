"""The twelve Polybench OpenCL kernels of Table 4.

Sources follow the Polybench/GPU OpenCL distribution [15] (2DCONV, ATAX,
BICG, FDTD-2D, GESUMMV, MVT, SYR2K), with ``DATA_TYPE`` fixed to float and
work-item dimension 0 mapped to the contiguous (column) index, as in the
original suite.  Each factory takes the problem size and work-group shape
so the paper configuration (Table 4) and scaled-down test variants come
from the same code.
"""

from __future__ import annotations

import numpy as np

from .registry import Workload

# ---------------------------------------------------------------------------
# Kernel sources
# ---------------------------------------------------------------------------

CONV2D_SRC = """
__kernel void conv2d(__global float* A, __global float* B, int ni, int nj)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i > 0) && (j > 0) && (i < ni - 1) && (j < nj - 1)) {
        float c11 = 0.2f;  float c21 = 0.5f;  float c31 = -0.8f;
        float c12 = -0.3f; float c22 = 0.6f;  float c32 = -0.9f;
        float c13 = 0.4f;  float c23 = 0.7f;  float c33 = 0.1f;
        B[i * nj + j] =
            c11 * A[(i - 1) * nj + (j - 1)] + c12 * A[(i + 0) * nj + (j - 1)] +
            c13 * A[(i + 1) * nj + (j - 1)] + c21 * A[(i - 1) * nj + (j + 0)] +
            c22 * A[(i + 0) * nj + (j + 0)] + c23 * A[(i + 1) * nj + (j + 0)] +
            c31 * A[(i - 1) * nj + (j + 1)] + c32 * A[(i + 0) * nj + (j + 1)] +
            c33 * A[(i + 1) * nj + (j + 1)];
    }
}
"""

ATAX1_SRC = """
__kernel void atax_kernel1(__global float* A, __global float* x,
                           __global float* tmp, int nx, int ny)
{
    int i = get_global_id(0);
    if (i < nx) {
        tmp[i] = 0.0f;
        for (int j = 0; j < ny; j++)
            tmp[i] += A[i * ny + j] * x[j];
    }
}
"""

ATAX2_SRC = """
__kernel void atax_kernel2(__global float* A, __global float* y,
                           __global float* tmp, int nx, int ny)
{
    int j = get_global_id(0);
    if (j < ny) {
        y[j] = 0.0f;
        for (int i = 0; i < nx; i++)
            y[j] += A[i * ny + j] * tmp[i];
    }
}
"""

BICG1_SRC = """
__kernel void bicg_kernel1(__global float* A, __global float* r,
                           __global float* s, int nx, int ny)
{
    int j = get_global_id(0);
    if (j < ny) {
        s[j] = 0.0f;
        for (int i = 0; i < nx; i++)
            s[j] += r[i] * A[i * ny + j];
    }
}
"""

BICG2_SRC = """
__kernel void bicg_kernel2(__global float* A, __global float* p,
                           __global float* q, int nx, int ny)
{
    int i = get_global_id(0);
    if (i < nx) {
        q[i] = 0.0f;
        for (int j = 0; j < ny; j++)
            q[i] += A[i * ny + j] * p[j];
    }
}
"""

FDTD1_SRC = """
__kernel void fdtd_step1(__global float* _fict_, __global float* ex,
                         __global float* ey, __global float* hz,
                         int t, int nx, int ny)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < nx) && (j < ny)) {
        if (i == 0)
            ey[i * ny + j] = _fict_[t];
        else
            ey[i * ny + j] = ey[i * ny + j]
                - 0.5f * (hz[i * ny + j] - hz[(i - 1) * ny + j]);
    }
}
"""

FDTD2_SRC = """
__kernel void fdtd_step2(__global float* ex, __global float* ey,
                         __global float* hz, int nx, int ny)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < nx) && (j < ny) && (j > 0)) {
        ex[i * (ny + 1) + j] = ex[i * (ny + 1) + j]
            - 0.5f * (hz[i * ny + j] - hz[i * ny + (j - 1)]);
    }
}
"""

FDTD3_SRC = """
__kernel void fdtd_step3(__global float* ex, __global float* ey,
                         __global float* hz, int nx, int ny)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < nx) && (j < ny)) {
        hz[i * ny + j] = hz[i * ny + j]
            - 0.7f * (ex[i * (ny + 1) + (j + 1)] - ex[i * (ny + 1) + j]
                      + ey[(i + 1) * ny + j] - ey[i * ny + j]);
    }
}
"""

GEMM_SRC = """
__kernel void gemm(__global float* A, __global float* B, __global float* C,
                   float alpha, float beta, int ni, int nj, int nk)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < ni) && (j < nj)) {
        C[i * nj + j] *= beta;
        for (int k = 0; k < nk; k++)
            C[i * nj + j] += alpha * A[i * nk + k] * B[k * nj + j];
    }
}
"""

GESUMMV_SRC = """
__kernel void gesummv(__global float* A, __global float* B,
                      __global float* x, __global float* y,
                      __global float* tmp, int n, float alpha, float beta)
{
    int i = get_global_id(0);
    if (i < n) {
        tmp[i] = 0.0f;
        y[i] = 0.0f;
        for (int j = 0; j < n; j++) {
            tmp[i] = A[i * n + j] * x[j] + tmp[i];
            y[i] = B[i * n + j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
}
"""

MVT1_SRC = """
__kernel void mvt_kernel1(__global float* A, __global float* x1,
                          __global float* y1, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        for (int j = 0; j < n; j++)
            x1[i] += A[i * n + j] * y1[j];
    }
}
"""

MVT2_SRC = """
__kernel void mvt_kernel2(__global float* A, __global float* x2,
                          __global float* y2, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        for (int j = 0; j < n; j++)
            x2[i] += A[j * n + i] * y2[j];
    }
}
"""

SYR2K_SRC = """
__kernel void syr2k(__global float* A, __global float* B, __global float* C,
                    float alpha, float beta, int n, int m)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < n) && (j < n)) {
        C[i * n + j] *= beta;
        for (int k = 0; k < m; k++) {
            C[i * n + j] += alpha * A[i * m + k] * B[j * m + k]
                          + alpha * B[i * m + k] * A[j * m + k];
        }
    }
}
"""

# ---------------------------------------------------------------------------
# Buffer builders
# ---------------------------------------------------------------------------


def _uniform(rng: np.random.Generator, *shape: int) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=shape)


def _conv2d_buffers(w: Workload, rng: np.random.Generator) -> dict[str, np.ndarray]:
    ni = int(w.scalar_args["ni"])
    nj = int(w.scalar_args["nj"])
    return {"A": _uniform(rng, ni * nj), "B": np.zeros(ni * nj)}


def _matvec_buffers_rows(w, rng):
    nx = int(w.scalar_args["nx"])
    ny = int(w.scalar_args["ny"])
    return {
        "A": _uniform(rng, nx * ny),
        "x": _uniform(rng, ny),
        "tmp": np.zeros(nx),
    }


def _atax2_buffers(w, rng):
    nx = int(w.scalar_args["nx"])
    ny = int(w.scalar_args["ny"])
    return {
        "A": _uniform(rng, nx * ny),
        "tmp": _uniform(rng, nx),
        "y": np.zeros(ny),
    }


def _bicg1_buffers(w, rng):
    nx = int(w.scalar_args["nx"])
    ny = int(w.scalar_args["ny"])
    return {"A": _uniform(rng, nx * ny), "r": _uniform(rng, nx), "s": np.zeros(ny)}


def _bicg2_buffers(w, rng):
    nx = int(w.scalar_args["nx"])
    ny = int(w.scalar_args["ny"])
    return {"A": _uniform(rng, nx * ny), "p": _uniform(rng, ny), "q": np.zeros(nx)}


def _fdtd_buffers(w, rng):
    nx = int(w.scalar_args["nx"])
    ny = int(w.scalar_args["ny"])
    buffers = {
        "ex": _uniform(rng, nx * (ny + 1)),
        "ey": _uniform(rng, (nx + 1) * ny),
        "hz": _uniform(rng, nx * ny),
    }
    if "t" in w.scalar_args:
        buffers["_fict_"] = _uniform(rng, max(int(w.scalar_args["t"]) + 1, 8))
    return buffers


def _gemm_buffers(w, rng):
    ni = int(w.scalar_args["ni"])
    nj = int(w.scalar_args["nj"])
    nk = int(w.scalar_args["nk"])
    return {
        "A": _uniform(rng, ni * nk),
        "B": _uniform(rng, nk * nj),
        "C": _uniform(rng, ni * nj),
    }


def _gesummv_buffers(w, rng):
    n = int(w.scalar_args["n"])
    return {
        "A": _uniform(rng, n * n),
        "B": _uniform(rng, n * n),
        "x": _uniform(rng, n),
        "y": np.zeros(n),
        "tmp": np.zeros(n),
    }


def _mvt1_buffers(w, rng):
    n = int(w.scalar_args["n"])
    return {"A": _uniform(rng, n * n), "x1": _uniform(rng, n), "y1": _uniform(rng, n)}


def _mvt2_buffers(w, rng):
    n = int(w.scalar_args["n"])
    return {"A": _uniform(rng, n * n), "x2": _uniform(rng, n), "y2": _uniform(rng, n)}


def _syr2k_buffers(w, rng):
    n = int(w.scalar_args["n"])
    m = int(w.scalar_args["m"])
    return {
        "A": _uniform(rng, n * m),
        "B": _uniform(rng, n * m),
        "C": _uniform(rng, n * n),
    }


# ---------------------------------------------------------------------------
# Factories (paper defaults from Table 4)
# ---------------------------------------------------------------------------


def _pad(value: int, multiple: int) -> int:
    """Round ``value`` up to a multiple (OpenCL launch padding)."""
    return ((value + multiple - 1) // multiple) * multiple


def make_conv2d(n: int = 8192, wg: tuple[int, int] = (8, 8)) -> Workload:
    return Workload(
        key=f"2DCONV/{n}/wg{wg[0]}x{wg[1]}",
        source=CONV2D_SRC,
        kernel_name="conv2d",
        global_size=(_pad(n, wg[0]), _pad(n, wg[1])),
        local_size=wg,
        scalar_args={"ni": n, "nj": n},
        buffer_builder=_conv2d_buffers,
        description="2-D 3x3 convolution",
    )


def make_atax1(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"ATAX1/{n}/wg{wg}",
        source=ATAX1_SRC,
        kernel_name="atax_kernel1",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"nx": n, "ny": n},
        buffer_builder=_matvec_buffers_rows,
        description="ATAX kernel 1: tmp = A x",
    )


def make_atax2(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"ATAX2/{n}/wg{wg}",
        source=ATAX2_SRC,
        kernel_name="atax_kernel2",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"nx": n, "ny": n},
        buffer_builder=_atax2_buffers,
        description="ATAX kernel 2: y = A^T tmp",
    )


def make_bicg1(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"BICG1/{n}/wg{wg}",
        source=BICG1_SRC,
        kernel_name="bicg_kernel1",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"nx": n, "ny": n},
        buffer_builder=_bicg1_buffers,
        description="BiCG sub-kernel 1: s = A^T r",
    )


def make_bicg2(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"BICG2/{n}/wg{wg}",
        source=BICG2_SRC,
        kernel_name="bicg_kernel2",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"nx": n, "ny": n},
        buffer_builder=_bicg2_buffers,
        description="BiCG sub-kernel 2: q = A p",
    )


def _fdtd_grid(n: int) -> int:
    """FDTD runs on an n-derived square grid (Table 4 lists n = 16384).

    A 16384x16384 field set would need 3 GiB per array on the evaluated
    machines; the Polybench default scales the grid so the *fundamental*
    dimension is n^(1/2)-ish.  We use a 4096x4096 grid for n = 16384 and
    scale proportionally, preserving the kernel's memory character.
    """
    return max(int(round((n * 1024) ** 0.5)), 16)


def make_fdtd1(n: int = 16384, wg: tuple[int, int] = (16, 16)) -> Workload:
    grid = _fdtd_grid(n)
    return Workload(
        key=f"FDTD1/{n}/wg{wg[0]}x{wg[1]}",
        source=FDTD1_SRC,
        kernel_name="fdtd_step1",
        global_size=(_pad(grid, wg[0]), _pad(grid, wg[1])),
        local_size=wg,
        scalar_args={"t": 0, "nx": grid, "ny": grid},
        buffer_builder=_fdtd_buffers,
        description="FDTD-2D field update 1 (ey)",
    )


def make_fdtd2(n: int = 16384, wg: tuple[int, int] = (16, 16)) -> Workload:
    grid = _fdtd_grid(n)
    return Workload(
        key=f"FDTD2/{n}/wg{wg[0]}x{wg[1]}",
        source=FDTD2_SRC,
        kernel_name="fdtd_step2",
        global_size=(_pad(grid, wg[0]), _pad(grid, wg[1])),
        local_size=wg,
        scalar_args={"nx": grid, "ny": grid},
        buffer_builder=_fdtd_buffers,
        description="FDTD-2D field update 2 (ex)",
    )


def make_fdtd3(n: int = 16384, wg: tuple[int, int] = (16, 16)) -> Workload:
    grid = _fdtd_grid(n)
    return Workload(
        key=f"FDTD3/{n}/wg{wg[0]}x{wg[1]}",
        source=FDTD3_SRC,
        kernel_name="fdtd_step3",
        global_size=(_pad(grid, wg[0]), _pad(grid, wg[1])),
        local_size=wg,
        scalar_args={"nx": grid, "ny": grid},
        buffer_builder=_fdtd_buffers,
        description="FDTD-2D field update 3 (hz)",
    )


def make_gemm(n: int = 1024, wg: tuple[int, int] = (8, 8)) -> Workload:
    """GEMM is named in the paper's §8.2 prose but absent from Table 4 /
    Figure 13 (see DESIGN.md §7); provided as an extra workload."""
    return Workload(
        key=f"GEMM/{n}/wg{wg[0]}x{wg[1]}",
        source=GEMM_SRC,
        kernel_name="gemm",
        global_size=(_pad(n, wg[0]), _pad(n, wg[1])),
        local_size=wg,
        scalar_args={"alpha": 1.5, "beta": 2.5, "ni": n, "nj": n, "nk": n},
        buffer_builder=_gemm_buffers,
        description="General matrix-matrix multiplication",
    )


def make_gesummv(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"GESUMMV/{n}/wg{wg}",
        source=GESUMMV_SRC,
        kernel_name="gesummv",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"n": n, "alpha": 1.5, "beta": 2.5},
        buffer_builder=_gesummv_buffers,
        description="Scalar, vector and matrix multiplication",
    )


def make_mvt1(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"MVT1/{n}/wg{wg}",
        source=MVT1_SRC,
        kernel_name="mvt_kernel1",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"n": n},
        buffer_builder=_mvt1_buffers,
        description="MVT kernel 1: x1 += A y1",
    )


def make_mvt2(n: int = 16384, wg: int = 256) -> Workload:
    return Workload(
        key=f"MVT2/{n}/wg{wg}",
        source=MVT2_SRC,
        kernel_name="mvt_kernel2",
        global_size=(_pad(n, wg),),
        local_size=(wg,),
        scalar_args={"n": n},
        buffer_builder=_mvt2_buffers,
        description="MVT kernel 2: x2 += A^T y2",
    )


def make_syr2k(n: int = 1024, wg: tuple[int, int] = (8, 8)) -> Workload:
    return Workload(
        key=f"SYR2K/{n}/wg{wg[0]}x{wg[1]}",
        source=SYR2K_SRC,
        kernel_name="syr2k",
        global_size=(_pad(n, wg[0]), _pad(n, wg[1])),
        local_size=wg,
        scalar_args={"alpha": 1.5, "beta": 2.5, "n": n, "m": n},
        buffer_builder=_syr2k_buffers,
        description="Symmetric rank-2k update",
    )
