"""Sparse matrix–vector multiplication in CSR format (Table 4)."""

from __future__ import annotations

import numpy as np

from .registry import Workload

SPMV_SRC = """
__kernel void spmv_csr(__global int* rowptr, __global int* colidx,
                       __global float* vals, __global float* x,
                       __global float* y, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float sum = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i + 1]; k++)
            sum = sum + vals[k] * x[colidx[k]];
        y[i] = sum;
    }
}
"""


def make_csr_matrix(
    n_rows: int, n_cols: int, nnz_per_row: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random CSR matrix with roughly ``nnz_per_row`` entries per row.

    Row population jitters ±50 % so rows are genuinely irregular — the
    property that makes SpMV's inner loop bound data-dependent.
    """
    counts = rng.integers(
        max(1, nnz_per_row // 2), nnz_per_row + nnz_per_row // 2 + 1, size=n_rows
    )
    counts = np.minimum(counts, n_cols)
    rowptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    nnz = int(rowptr[-1])
    colidx = np.empty(nnz, dtype=np.int64)
    for row in range(n_rows):
        lo, hi = rowptr[row], rowptr[row + 1]
        colidx[lo:hi] = np.sort(rng.choice(n_cols, size=hi - lo, replace=False))
    vals = rng.uniform(-1.0, 1.0, size=nnz)
    return rowptr, colidx, vals


def _spmv_buffers(w: Workload, rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = int(w.scalar_args["n"])
    nnz_per_row = int(w.irregular_trip_hint or 16)
    # keep functional materialisation tractable: cap per-row population
    nnz_per_row = min(nnz_per_row, max(n // 4, 1))
    rowptr, colidx, vals = make_csr_matrix(n, n, nnz_per_row, rng)
    return {
        "rowptr": rowptr,
        "colidx": colidx,
        "vals": vals,
        "x": rng.uniform(-1.0, 1.0, size=n),
        "y": np.zeros(n),
    }


def make_spmv(n: int = 16384, wg: int = 256, nnz_per_row: int = 16384) -> Workload:
    """SpMV workload; the paper's graph has 16,384 rows and 16,384 CSR
    elements per row (§9.4), which makes its work comparable to Gesummv."""
    return Workload(
        key=f"SpMV/{n}/wg{wg}",
        source=SPMV_SRC,
        kernel_name="spmv_csr",
        global_size=(((n + wg - 1) // wg) * wg,),
        local_size=(wg,),
        scalar_args={"n": n},
        buffer_builder=_spmv_buffers,
        irregular_trip_hint=float(nnz_per_row),
        description="Sparse matrix-vector multiply (CSR)",
    )


def spmv_reference(args: dict) -> np.ndarray:
    """NumPy reference result for a materialised SpMV argument set."""
    n = int(args["n"])
    rowptr, colidx, vals, x = args["rowptr"], args["colidx"], args["vals"], args["x"]
    y = np.zeros(n)
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        y[i] = float(vals[lo:hi] @ x[colidx[lo:hi]])
    return y
