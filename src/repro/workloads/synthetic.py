"""The parameterizable synthetic workload family (paper Table 2 / Table 4).

A synthetic kernel adds α matrices of dimensionality β element-wise into an
output matrix, with γ extra constant multiplications per addend, and with
δ/ε/θ of the addends accessed transposed / through an index buffer /
at a constant address.  The work-item dimension (1 or 2) and the data type
complete the eight parameters of Table 2; Table 4's enumeration of 17
access patterns × 72 configurations yields the 1,224 training workloads.

Naming follows the paper: ``2mat3d2c1T`` = add 2 three-dimensional
matrices, 2 constant factors, 1 of the addends transposed.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

import numpy as np

from .registry import Workload

#: Extent of every non-work-item dimension of the synthetic matrices.
LOOP_EXTENT = 16

#: The 17 access patterns of Table 4.
TABLE4_PATTERNS = (
    "1mat3d", "1mat3d1R", "1mat3d1T", "1mat3d1C", "1mat3d1C1R", "1mat3d1C1T",
    "2mat3d", "2mat3d1R", "2mat3d1T", "2mat3d1R1T", "2mat3d1C", "2mat3d1C1R",
    "2mat3d1C1T", "2mat3d1C1R1T", "1mat4d", "1mat4d1R", "1mat4d1T",
)

#: Table 4's "72 configurations" axes.
TABLE4_DTYPES = ("float", "int")
TABLE4_DIMS = (1, 2)
TABLE4_GAMMAS = (0, 2, 4)
TABLE4_SIZES = (16384, 32768, 65536)
TABLE4_WG_SIZES = (64, 256)

_PATTERN_RE = re.compile(r"^(\d+)mat(\d)d((?:\d+[TRC])*)$")


@dataclass(frozen=True)
class SyntheticSpec:
    """The eight Table-2 parameters of one synthetic kernel."""

    alpha: int          #: number of addend matrices
    beta: int           #: matrix dimensionality (3 or 4)
    gamma: int = 0      #: constant factors per addend
    delta: int = 0      #: addends with transposed access (T)
    epsilon: int = 0    #: addends with randomised access (R)
    theta: int = 0      #: addends with constant access (C)
    dim: int = 1        #: work-item dimensionality (1 or 2)
    dtype: str = "float"

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")
        if self.beta not in (3, 4):
            raise ValueError("beta must be 3 or 4")
        if self.dim not in (1, 2):
            raise ValueError("dim must be 1 or 2")
        if self.dtype not in ("float", "int"):
            raise ValueError("dtype must be 'float' or 'int'")
        if self.gamma < 0:
            raise ValueError("gamma must be >= 0")

    @property
    def n_addends(self) -> int:
        """Total matrices read by the kernel.

        The δ/ε/θ modifiers *replace* the access pattern of the last
        matrices (Table 2's ``2mat2d2c1T`` example reads A continuously and
        B transposed).  Table 4, however, also lists patterns whose
        modifiers exceed α (``1mat3d1C1R``); for those the addend list
        grows so every modifier gets a matrix — the only reading that
        makes all seventeen names well-formed.
        """
        return max(self.alpha, self.delta + self.epsilon + self.theta)

    @property
    def n_plain(self) -> int:
        """Addends accessed with the plain continuous pattern."""
        return self.n_addends - self.delta - self.epsilon - self.theta

    @property
    def pattern_name(self) -> str:
        """The αmatβd[γc][δT][εR][θC] name (Table 2 notation)."""
        name = f"{self.alpha}mat{self.beta}d"
        if self.gamma:
            name += f"{self.gamma}c"
        if self.delta:
            name += f"{self.delta}T"
        if self.epsilon:
            name += f"{self.epsilon}R"
        if self.theta:
            name += f"{self.theta}C"
        return name

    @staticmethod
    def from_pattern(pattern: str, gamma: int = 0, dim: int = 1,
                     dtype: str = "float") -> "SyntheticSpec":
        """Parse a Table-4 pattern name like ``2mat3d1C1R``."""
        match = _PATTERN_RE.match(pattern)
        if match is None:
            raise ValueError(f"malformed pattern name {pattern!r}")
        alpha = int(match.group(1))
        beta = int(match.group(2))
        delta = epsilon = theta = 0
        for count, kind in re.findall(r"(\d+)([TRC])", match.group(3)):
            if kind == "T":
                delta = int(count)
            elif kind == "R":
                epsilon = int(count)
            else:
                theta = int(count)
        return SyntheticSpec(alpha, beta, gamma, delta, epsilon, theta, dim, dtype)


# ---------------------------------------------------------------------------
# Kernel source generation
# ---------------------------------------------------------------------------

_MATRIX_NAMES = "ABDEFGH"  # C is reserved for the output


def _dims(spec: SyntheticSpec) -> list[str]:
    """Dimension extent parameter names, slowest first: NZ, NY, NX[, NW]."""
    return ["NZ", "NY", "NX", "NW"][: spec.beta]


def _linear_index(dims: list[str], indices: list[str]) -> str:
    """Row-major linearisation, e.g. ``z*(NY*NX) + y*NX + x``."""
    terms = []
    for position, index in enumerate(indices):
        extents = dims[position + 1 :]
        if extents:
            terms.append(f"{index} * ({' * '.join(extents)})")
        else:
            terms.append(index)
    return " + ".join(terms)


def generate_source(spec: SyntheticSpec) -> str:
    """Emit the OpenCL-C kernel for ``spec`` (cf. Figures 5/6 top halves)."""
    dims = _dims(spec)
    indices = ["z", "y", "x", "w"][: spec.beta]
    scalar_t = spec.dtype
    elem_t = f"__global {scalar_t}*"

    params = [f"{elem_t} {name}" for name in _MATRIX_NAMES[: spec.n_addends]]
    params.append(f"{elem_t} C")
    if spec.epsilon:
        params.append("__global int* IDX")
    params += [f"int {d}" for d in dims]
    params += [f"{scalar_t} c{k + 1}" for k in range(spec.gamma)]
    if spec.theta:
        params.append("int cidx")

    # id-bound indices and their guards
    id_indices = indices[: spec.dim]
    loop_indices = indices[spec.dim :]
    body: list[str] = []
    for d, index in enumerate(id_indices):
        body.append(f"    int {index} = get_global_id({d});")
    guard = " && ".join(f"({idx} < {dims[i]})" for i, idx in enumerate(id_indices))
    body.append(f"    if ({guard}) {{")
    pad = "        "
    for depth, index in enumerate(loop_indices):
        extent = dims[spec.dim + depth]
        body.append(f"{pad}for (int {index} = 0; {index} < {extent}; {index}++) {{")
        pad += "    "
    body.append(f"{pad}int idx = {_linear_index(dims, indices)};")
    body.append(f"{pad}int idxT = {_linear_index(list(reversed(dims)), list(reversed(indices)))};")

    factors = "".join(f"c{k + 1} * " for k in range(spec.gamma))
    plain = spec.n_plain
    terms = []
    for position in range(spec.n_addends):
        name = _MATRIX_NAMES[position]
        if position < plain:
            access = f"{name}[idx]"
        elif position < plain + spec.delta:
            access = f"{name}[idxT]"
        elif position < plain + spec.delta + spec.epsilon:
            access = f"{name}[IDX[idx]]"
        else:
            access = f"{name}[cidx]"
        terms.append(f"{factors}{access}")
    body.append(f"{pad}C[idx] = {' + '.join(terms)};")
    for depth in range(len(loop_indices)):
        pad = "        " + "    " * (len(loop_indices) - depth - 1)
        body.append(f"{pad}}}")
    body.append("    }")

    name = f"synthetic_{spec.pattern_name}_{spec.dim}dim_{spec.dtype}"
    header = f"__kernel void {name}({', '.join(params)})"
    return header + "\n{\n" + "\n".join(body) + "\n}\n"


def kernel_name(spec: SyntheticSpec) -> str:
    return f"synthetic_{spec.pattern_name}_{spec.dim}dim_{spec.dtype}"


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------


def _total_elements_from_args(spec: SyntheticSpec, args: dict) -> int:
    total = 1
    for d in _dims(spec):
        total *= int(args[d])
    return total


def _synthetic_buffers(spec: SyntheticSpec, extent: int):
    def build(w: Workload, rng: np.random.Generator) -> dict[str, np.ndarray]:
        total = _total_elements_from_args(spec, w.scalar_args)
        dtype = np.float64 if spec.dtype == "float" else np.int64
        buffers: dict[str, np.ndarray] = {}
        for position in range(spec.n_addends):
            name = _MATRIX_NAMES[position]
            if spec.dtype == "float":
                buffers[name] = rng.uniform(-1.0, 1.0, size=total)
            else:
                buffers[name] = rng.integers(-100, 100, size=total).astype(dtype)
        buffers["C"] = np.zeros(total, dtype=dtype)
        if spec.epsilon:
            buffers["IDX"] = rng.integers(0, total, size=total).astype(np.int64)
        return buffers

    return build


def make_synthetic(
    spec: SyntheticSpec,
    size: int = 16384,
    wg_items: int = 256,
    extent: int = LOOP_EXTENT,
) -> Workload:
    """Build the :class:`Workload` for one synthetic configuration.

    ``size`` is the work-item count along dimension 0 (the Table-4 "matrix
    size"); every other matrix dimension has ``extent`` elements.  For
    2-dimensional launches the work-group is square (8×8 for 64 items,
    16×16 for 256).
    """
    dims = _dims(spec)
    if spec.dim == 1:
        global_size: tuple[int, ...] = (size,)
        local_size: tuple[int, ...] = (wg_items,)
    else:
        side = int(round(wg_items ** 0.5))
        if side * side != wg_items:
            raise ValueError(f"2-D launches need a square work-group, got {wg_items}")
        global_size = (size, max(extent, side))
        local_size = (side, side)
    scalar_args: dict[str, float] = {"NZ": size}
    for d in dims[1:]:
        scalar_args[d] = max(extent, global_size[1]) if (spec.dim == 2 and d == "NY") else extent
    for k in range(spec.gamma):
        scalar_args[f"c{k + 1}"] = (1.0 + 0.5 * k) if spec.dtype == "float" else (k + 2)
    if spec.theta:
        scalar_args["cidx"] = 3
    return Workload(
        key=f"SYN/{spec.pattern_name}/{spec.dim}dim/{spec.dtype}/{size}/wg{wg_items}",
        source=generate_source(spec),
        kernel_name=kernel_name(spec),
        global_size=global_size,
        local_size=local_size,
        scalar_args=scalar_args,
        buffer_builder=_synthetic_buffers(spec, extent),
        description=f"synthetic {spec.pattern_name} dim={spec.dim} dtype={spec.dtype}",
    )


def training_specs() -> list[SyntheticSpec]:
    """All 204 distinct kernel specs of Table 4 (17 × 2 dtypes × 2 dims × 3 γ)."""
    specs = []
    for pattern, dtype, dim, gamma in itertools.product(
        TABLE4_PATTERNS, TABLE4_DTYPES, TABLE4_DIMS, TABLE4_GAMMAS
    ):
        specs.append(SyntheticSpec.from_pattern(pattern, gamma=gamma, dim=dim, dtype=dtype))
    return specs


def training_workloads(
    sizes: tuple[int, ...] = TABLE4_SIZES,
    wg_sizes: tuple[int, ...] = TABLE4_WG_SIZES,
    extent: int = LOOP_EXTENT,
) -> list[Workload]:
    """The full Table-4 enumeration: 17 × 2 × 2 × 3 × |sizes| × |wgs| workloads.

    With the paper's axes this yields exactly 1,224 workloads.
    """
    out = []
    for spec in training_specs():
        for size in sizes:
            for wg in wg_sizes:
                out.append(make_synthetic(spec, size=size, wg_items=wg, extent=extent))
    return out


def reference_result(w: Workload, spec: SyntheticSpec, args: dict) -> np.ndarray:
    """NumPy reference for a materialised synthetic workload (tests)."""
    total = _total_elements_from_args(spec, args)
    dims = [int(args[d]) for d in _dims(spec)]
    shape = tuple(dims)
    factor = 1.0 if spec.dtype == "float" else 1
    for k in range(spec.gamma):
        factor = factor * args[f"c{k + 1}"]
    out = np.zeros(shape, dtype=np.float64)
    plain = spec.n_plain
    for position in range(spec.n_addends):
        name = _MATRIX_NAMES[position]
        mat = np.asarray(args[name], dtype=np.float64)[:total]
        if position < plain:
            out += factor * mat.reshape(shape)
        elif position < plain + spec.delta:
            out += factor * mat.reshape(tuple(reversed(shape))).transpose(
                tuple(reversed(range(spec.beta)))
            )
        elif position < plain + spec.delta + spec.epsilon:
            idx = np.asarray(args["IDX"])[:total].reshape(shape)
            out += factor * mat[idx]
        else:
            out += factor * mat[int(args["cidx"])]
    if spec.dtype == "int":
        out = out.astype(np.int64).astype(np.float64)
    return out.ravel()
