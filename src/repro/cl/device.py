"""OpenCL-style platform/device objects over the simulated processors."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.platforms import PLATFORMS, Platform
from .types import CLError, DeviceType, Status


@dataclass(frozen=True)
class Device:
    """One OpenCL compute device (the CPU or the GPU of a platform)."""

    platform: "ClPlatform"
    device_type: DeviceType
    name: str

    @property
    def machine(self) -> Platform:
        """The underlying simulated processor description."""
        return self.platform.machine

    @property
    def max_compute_units(self) -> int:
        if self.device_type is DeviceType.CPU:
            return self.machine.cpu.cores
        return self.machine.gpu.num_cus

    @property
    def max_work_group_size(self) -> int:
        return 256 if self.device_type is DeviceType.GPU else 1024


@dataclass(frozen=True)
class ClPlatform:
    """An OpenCL platform: one integrated processor with two devices."""

    machine: Platform

    @property
    def name(self) -> str:
        return self.machine.name

    def get_devices(self, device_type: DeviceType = DeviceType.ALL) -> list[Device]:
        devices = []
        if device_type & DeviceType.CPU:
            devices.append(Device(self, DeviceType.CPU, f"{self.name}-cpu"))
        if device_type & DeviceType.GPU:
            devices.append(Device(self, DeviceType.GPU, f"{self.name}-gpu"))
        if not devices:
            raise CLError(Status.DEVICE_NOT_FOUND, f"no {device_type} on {self.name}")
        return devices


def get_platforms() -> list[ClPlatform]:
    """clGetPlatformIDs: the simulated Kaveri and Skylake systems."""
    return [ClPlatform(machine) for machine in PLATFORMS.values()]


def get_platform(name: str) -> ClPlatform:
    """Look up a platform by machine name."""
    for platform in get_platforms():
        if platform.name == name.lower():
            return platform
    raise CLError(Status.DEVICE_NOT_FOUND, f"no platform named {name!r}")
