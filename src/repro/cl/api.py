"""Interposition registry and flat clXxx-style convenience functions.

Dopia is "an additive runtime library running on top of a fully-functional
OpenCL runtime system; through library interpositioning, Dopia transparently
intercepts OpenCL API calls" (§4).  This module is the interception
mechanism: an :class:`Interposer` installed here sees every program build
and may take over every kernel launch.  ``repro.core.runtime.DopiaRuntime``
is the (only) production interposer; tests install their own probes.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Optional

from ..interp.ndrange import NDRange
from ..obs import tracer
from .context import Context
from .device import Device, DeviceType, get_platform
from .program import Kernel, Program
from .queue import CommandQueue, Event


class Interposer(abc.ABC):
    """The interception interface (Figure 4's two seams)."""

    @abc.abstractmethod
    def program_built(self, program: Program) -> None:
        """Called after ``clCreateProgramWithSource`` + build succeeds."""

    @abc.abstractmethod
    def enqueue(
        self,
        queue: CommandQueue,
        kernel: Kernel,
        ndrange: NDRange,
        irregular_trip_hint: Optional[float],
    ) -> Optional[Event]:
        """Called at ``clEnqueueNDRangeKernel``.

        Return an :class:`Event` to take over the launch, or ``None`` to
        fall through to the vanilla runtime path.
        """


_interposer: Optional[Interposer] = None


def install_interposer(interposer: Optional[Interposer]) -> None:
    """Install (or, with ``None``, remove) the global interposer."""
    global _interposer
    _interposer = interposer


def current_interposer() -> Optional[Interposer]:
    return _interposer


@contextlib.contextmanager
def interposed(interposer: Interposer):
    """Context manager scoping an interposer installation."""
    previous = current_interposer()
    install_interposer(interposer)
    try:
        yield interposer
    finally:
        install_interposer(previous)


# ---------------------------------------------------------------------------
# Flat OpenCL-flavoured helpers
# ---------------------------------------------------------------------------


def create_context(platform_name: str, device_type: DeviceType = DeviceType.ALL) -> Context:
    """Create a context over a named platform's devices."""
    platform = get_platform(platform_name)
    return Context(platform.get_devices(device_type))


def create_program_with_source(context: Context, source: str) -> Program:
    """clCreateProgramWithSource (unbuilt; call ``.build()``)."""
    return context.create_program_with_source(source)


def create_command_queue(
    context: Context, device: Device | None = None, functional: bool = True,
    backend: str | None = None,
) -> CommandQueue:
    """clCreateCommandQueue (defaults to the context's first device)."""
    return CommandQueue(context, device or context.devices[0],
                        functional=functional, backend=backend)


def notify_program_built(program: Program) -> None:
    """Internal: fan the build notification out to the interposer."""
    if _interposer is not None:
        if tracer.enabled:
            with tracer.span("cl.program_built", "build",
                             kernels=list(program.kernel_infos),
                             interposer=type(_interposer).__name__):
                _interposer.program_built(program)
        else:
            _interposer.program_built(program)
