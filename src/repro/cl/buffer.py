"""Buffer objects: global memory shared by CPU and GPU devices.

On integrated architectures the devices share physical memory, so a
buffer is simply a NumPy array — no copies are ever made, mirroring the
zero-copy property the paper relies on (§1, §3.1).
"""

from __future__ import annotations

import numpy as np

from .types import CLError, Status


class Buffer:
    """A device-visible memory object backed by a NumPy array."""

    def __init__(self, context, array: np.ndarray):
        if not isinstance(array, np.ndarray):
            raise CLError(Status.INVALID_VALUE, "Buffer requires a NumPy array")
        if array.ndim != 1:
            raise CLError(
                Status.INVALID_VALUE,
                "buffers are flat; multi-dimensional data must be linearised "
                "host-side as in any OpenCL program",
            )
        self.context = context
        self.array = array

    @property
    def size_bytes(self) -> int:
        return self.array.nbytes

    def read(self) -> np.ndarray:
        """clEnqueueReadBuffer equivalent: a host copy of the contents."""
        return self.array.copy()

    def write(self, data: np.ndarray) -> None:
        """clEnqueueWriteBuffer equivalent: overwrite the contents."""
        data = np.asarray(data)
        if data.shape != self.array.shape:
            raise CLError(Status.INVALID_VALUE, "shape mismatch on buffer write")
        self.array[...] = data
