"""Command queues: the launch-time half of the host API.

``CommandQueue.enqueue_nd_range_kernel`` is the seam where Dopia's runtime
management happens (paper Figure 4, bottom half): an installed interposer
gets the first chance to execute the launch — predicting the degree of
parallelism and orchestrating CPU/GPU co-execution — and the vanilla
runtime path (execute the kernel as written, on this queue's device) is
the fallback when no interposer is installed.

Execution is functional (the interpreter mutates the buffers) plus
simulated timing (the performance model) so every launch yields both a
correct result and a believable wall-clock figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.profile import profile_kernel
from ..interp.ndrange import NDRange
from ..interp.vectorize import make_executor
from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.engine import DopSetting, simulate_execution
from .context import Context
from .device import Device
from .program import Kernel
from .types import CLError, CommandType, DeviceType, Status


@dataclass
class Event:
    """Completion record of one enqueued command (clGetEventProfilingInfo)."""

    command: CommandType
    simulated_time_s: float = 0.0
    #: which device(s) ran the work and with what DoP, when known
    details: dict[str, Any] = field(default_factory=dict)


class CommandQueue:
    """An in-order command queue on one device.

    ``functional`` controls whether kernels are actually executed by the
    interpreter (exact but slow) or only simulated for timing — benchmark
    sweeps over paper-sized problems use ``functional=False``.

    ``backend`` picks the functional execution strategy per launch
    (``auto``/``vector``/``scalar``; ``None`` defers to ``DOPIA_BACKEND``)
    — see :func:`repro.interp.make_executor`.
    """

    def __init__(self, context: Context, device: Device, functional: bool = True,
                 backend: str | None = None):
        if device not in context.devices:
            raise CLError(Status.INVALID_VALUE, "device not in context")
        self.context = context
        self.device = device
        self.functional = functional
        self.backend = backend
        self.events: list[Event] = []

    # -- kernel launch -----------------------------------------------------

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size,
        local_size,
        global_offset=None,
        irregular_trip_hint: Optional[float] = None,
    ) -> Event:
        """clEnqueueNDRangeKernel.

        If an interposer (Dopia) is installed it may take over the launch
        entirely; otherwise the kernel runs as written on this queue's
        device with the default (full) degree of parallelism.
        """
        ndrange = NDRange(global_size, local_size, global_offset or ())
        self._verify_launch(kernel, ndrange)
        from .api import current_interposer  # late import to avoid a cycle

        interposer = current_interposer()
        traced = tracer.enabled
        with tracer.span(
            "cl.enqueue_nd_range_kernel", "launch",
            kernel=kernel.name,
            global_size=list(ndrange.global_size),
            local_size=list(ndrange.local_size),
            interposed=interposer is not None,
        ) if traced else NULL_SPAN:
            if interposer is not None:
                event = interposer.enqueue(self, kernel, ndrange, irregular_trip_hint)
                if event is not None:
                    self.events.append(event)
                    return event
            event = self._default_execute(kernel, ndrange, irregular_trip_hint)
            self.events.append(event)
            return event

    @staticmethod
    def _verify_launch(kernel: Kernel, ndrange: NDRange) -> None:
        """Launch-specialized static verification, gated on ``DOPIA_VERIFY``.

        Runs the race/OOB/barrier passes against the concrete geometry and
        bound buffer extents before any work executes.  ``warn`` prints the
        report to stderr like a build log; ``raise`` turns errors into
        :class:`repro.analysis.verify.VerifyError`.  The default (``off``)
        costs one env lookup per enqueue.
        """
        from ..analysis.verify import (
            LaunchSpec,
            apply_policy,
            current_policy,
            verify_launch_cached,
        )

        policy = current_policy()
        if policy == "off":
            return
        spec = LaunchSpec.from_args(ndrange, kernel.bound_args())
        apply_policy(verify_launch_cached(kernel.info, spec), policy)

    def _default_execute(
        self, kernel: Kernel, ndrange: NDRange, hint: Optional[float]
    ) -> Event:
        traced = tracer.enabled
        args = kernel.bound_args()
        if self.functional:
            with tracer.span(
                "cl.default_execute", "launch",
                kernel=kernel.name, device=self.device.device_type.name,
            ) if traced else NULL_SPAN:
                make_executor(kernel.info, args, ndrange, backend=self.backend).run()
        profile = profile_kernel(
            kernel.info,
            kernel.scalar_args(),
            ndrange.total_work_items,
            ndrange.work_items_per_group,
            work_dim=ndrange.work_dim,
            irregular_trip_hint=hint,
        )
        machine = self.device.machine
        if self.device.device_type is DeviceType.GPU:
            setting = DopSetting(cpu_threads=0, gpu_fraction=1.0)
        else:
            setting = DopSetting(cpu_threads=machine.cpu.threads, gpu_fraction=0.0)
        result = simulate_execution(
            profile, machine, setting, run_key=(kernel.name, "default")
        )
        return Event(
            command=CommandType.NDRANGE_KERNEL,
            simulated_time_s=result.time_s,
            details={"setting": setting, "result": result},
        )

    # -- buffer traffic ------------------------------------------------------

    def enqueue_read_buffer(self, buffer, destination) -> Event:
        destination[...] = buffer.array
        if tracer.enabled:
            tracer.instant("cl.read_buffer", "launch", nbytes=buffer.array.nbytes)
            tracer.counter("cl.buffer_reads")
        event = Event(command=CommandType.READ_BUFFER)
        self.events.append(event)
        return event

    def enqueue_write_buffer(self, buffer, source) -> Event:
        buffer.write(source)
        if tracer.enabled:
            tracer.instant("cl.write_buffer", "launch", nbytes=buffer.array.nbytes)
            tracer.counter("cl.buffer_writes")
        event = Event(command=CommandType.WRITE_BUFFER)
        self.events.append(event)
        return event

    def finish(self) -> None:
        """clFinish — everything is synchronous here, so a no-op."""
