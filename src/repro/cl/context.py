"""Contexts: the container tying devices, programs, and buffers together."""

from __future__ import annotations

import numpy as np

from .buffer import Buffer
from .device import ClPlatform, Device
from .program import Program
from .types import CLError, Status


class Context:
    """An OpenCL context over one platform's devices."""

    def __init__(self, devices: list[Device]):
        if not devices:
            raise CLError(Status.INVALID_VALUE, "context needs at least one device")
        platforms = {device.platform.name for device in devices}
        if len(platforms) != 1:
            raise CLError(
                Status.INVALID_VALUE, "all context devices must share a platform"
            )
        self.devices = list(devices)

    @property
    def platform(self) -> ClPlatform:
        return self.devices[0].platform

    def create_buffer(self, array: np.ndarray) -> Buffer:
        """clCreateBuffer with CL_MEM_USE_HOST_PTR (zero-copy)."""
        return Buffer(self, array)

    def create_program_with_source(self, source: str) -> Program:
        """clCreateProgramWithSource."""
        return Program(self, source)
