"""Programs and kernels: the compile-time half of the host API.

``Program.build()`` runs the real frontend over the source text and then
notifies any installed interposer — this is the
``clCreateProgramWithSource`` seam where Dopia performs its static code
analysis and malleable code generation (paper Figure 4, top half).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..frontend.errors import FrontendError
from ..frontend.parser import parse
from ..frontend.semantics import KernelInfo, analyze_kernel
from .buffer import Buffer
from .types import CLError, Status


class Program:
    """A program object created from OpenCL-C source."""

    def __init__(self, context, source: str):
        self.context = context
        self.source = source
        self.built = False
        self.kernel_infos: dict[str, KernelInfo] = {}
        #: interposer-private storage (Dopia keeps its analyses here)
        self.interposer_data: dict[str, Any] = {}
        #: static-verifier reports per kernel (populated by ``build()`` when
        #: ``DOPIA_VERIFY`` is not ``off``), keyed by kernel name
        self.verify_reports: dict[str, Any] = {}

    def build(self, options: str = "") -> "Program":
        """Compile the program (parse + semantic analysis of every kernel)."""
        try:
            unit = parse(self.source)
            for kernel in unit.kernels():
                self.kernel_infos[kernel.name] = analyze_kernel(kernel, unit)
        except FrontendError as error:
            raise CLError(Status.BUILD_PROGRAM_FAILURE, str(error)) from error
        if not self.kernel_infos:
            raise CLError(Status.BUILD_PROGRAM_FAILURE, "no __kernel functions")
        self._verify_build()
        self.built = True
        from .api import notify_program_built  # late import to avoid a cycle

        notify_program_built(self)
        return self

    def _verify_build(self) -> None:
        """Static verification at build time (the compiler-log surface).

        Launch-independent passes only — barrier divergence, id-invariant
        stores, vectorizer eligibility.  Gated on ``DOPIA_VERIFY``: the
        default (``off``) costs one env lookup and nothing else.
        """
        from ..analysis.verify import (
            apply_policy,
            current_policy,
            verify_kernel,
        )

        policy = current_policy()
        if policy == "off":
            return
        for name, info in self.kernel_infos.items():
            report = verify_kernel(info)
            self.verify_reports[name] = report
            apply_policy(report, policy)

    def create_kernel(self, name: str) -> "Kernel":
        if not self.built:
            raise CLError(Status.INVALID_OPERATION, "program not built")
        if name not in self.kernel_infos:
            raise CLError(Status.INVALID_KERNEL_NAME, name)
        return Kernel(self, name)

    def kernel_names(self) -> list[str]:
        return sorted(self.kernel_infos)


class Kernel:
    """A kernel object with positional/named argument binding."""

    def __init__(self, program: Program, name: str):
        self.program = program
        self.name = name
        self.info = program.kernel_infos[name]
        self._params = [p.name for p in self.info.kernel.params]
        self._args: dict[str, Any] = {}

    def set_arg(self, index_or_name: int | str, value: Any) -> None:
        """Bind one argument (clSetKernelArg); buffers or scalars."""
        if isinstance(index_or_name, int):
            try:
                name = self._params[index_or_name]
            except IndexError:
                raise CLError(
                    Status.INVALID_VALUE, f"kernel has {len(self._params)} args"
                ) from None
        else:
            name = index_or_name
            if name not in self._params:
                raise CLError(Status.INVALID_VALUE, f"no parameter {name!r}")
        self._args[name] = value

    def set_args(self, *values: Any, **named: Any) -> None:
        """Bind several arguments positionally and/or by name."""
        for index, value in enumerate(values):
            self.set_arg(index, value)
        for name, value in named.items():
            self.set_arg(name, value)

    def bound_args(self) -> dict[str, Any]:
        """The raw argument binding (buffers unwrapped to arrays)."""
        missing = [p for p in self._params if p not in self._args]
        if missing:
            raise CLError(Status.INVALID_KERNEL_ARGS, f"unbound: {missing}")
        out: dict[str, Any] = {}
        for name, value in self._args.items():
            out[name] = value.array if isinstance(value, Buffer) else value
        return out

    def scalar_args(self) -> dict[str, float]:
        """Only the scalar (non-buffer) arguments, for profiling."""
        out: dict[str, float] = {}
        for name, value in self._args.items():
            if not isinstance(value, (Buffer, np.ndarray)):
                out[name] = float(value)
        return out

    @property
    def param_names(self) -> list[str]:
        return list(self._params)

    def arg(self, name: str) -> Optional[Any]:
        return self._args.get(name)
