"""Common types and error codes for the miniature OpenCL host API."""

from __future__ import annotations

import enum


class CLError(Exception):
    """Host-API error, carrying an OpenCL-style status code."""

    def __init__(self, code: "Status", message: str = ""):
        self.code = code
        super().__init__(f"{code.name}: {message}" if message else code.name)


class Status(enum.Enum):
    """The subset of OpenCL status codes the runtime can raise."""

    SUCCESS = 0
    DEVICE_NOT_FOUND = -1
    INVALID_VALUE = -30
    INVALID_KERNEL_NAME = -46
    INVALID_KERNEL_ARGS = -52
    INVALID_WORK_GROUP_SIZE = -54
    INVALID_GLOBAL_OFFSET = -56
    BUILD_PROGRAM_FAILURE = -11
    INVALID_OPERATION = -59


class DeviceType(enum.Flag):
    """clGetDeviceIDs-style device type selectors."""

    CPU = enum.auto()
    GPU = enum.auto()
    ALL = CPU | GPU


class CommandType(enum.Enum):
    """What a queued command did (for events/profiling)."""

    NDRANGE_KERNEL = "ndrange_kernel"
    READ_BUFFER = "read_buffer"
    WRITE_BUFFER = "write_buffer"
