"""Miniature OpenCL-1.2-style host API over the simulated platforms."""

from .api import (
    Interposer,
    create_command_queue,
    create_context,
    create_program_with_source,
    current_interposer,
    install_interposer,
    interposed,
)
from .buffer import Buffer
from .context import Context
from .device import ClPlatform, Device, get_platform, get_platforms
from .program import Kernel, Program
from .queue import CommandQueue, Event
from .types import CLError, CommandType, DeviceType, Status

__all__ = [
    "Interposer", "create_command_queue", "create_context",
    "create_program_with_source", "current_interposer", "install_interposer",
    "interposed", "Buffer", "Context", "ClPlatform", "Device", "get_platform",
    "get_platforms", "Kernel", "Program", "CommandQueue", "Event", "CLError",
    "CommandType", "DeviceType", "Status",
]
