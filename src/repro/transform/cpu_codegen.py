"""CPU code generation (paper §6, Figure 7).

Dopia generates a CPU version of every OpenCL kernel: a function that one
CPU thread calls to repeatedly *pull* a work-group index from a shared
atomic worklist and execute that work-group's items sequentially.

The generated code here is itself expressed in the OpenCL-C subset so that
the same frontend and interpreter can compile and execute it — launching
the generated function with ``T`` work-items of work-group size 1 models
``T`` CPU threads exactly as Figure 7's pthread-style code does:

* each launched item is one CPU thread,
* all threads share a one-element global ``wg_worklist`` buffer and claim
  work-groups with ``atomic_inc`` (Figure 7 line 10),
* the original ND-range geometry is passed in via scalar parameters
  (``dopia_ls0`` …), and every ``get_*`` query of the original kernel is
  rewritten against the claimed work-group id and the sequential item loop
  (Figure 7 lines 12–14).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend import ast
from ..frontend.semantics import KernelInfo, analyze_kernel
from . import rewriter as rw

WORKLIST_PARAM = "dopia_wg_worklist"
NUM_WGS_PARAM = "dopia_num_wgs"
WG_VAR = "dopia_wg_id"
ITEM_VAR = "dopia_item"

_GEOM_PARAMS = ("dopia_ls0", "dopia_ls1", "dopia_ls2",
                "dopia_ng0", "dopia_ng1", "dopia_ng2")


class CpuTransformError(Exception):
    """Raised when a kernel cannot be lowered to the CPU form."""


@dataclass
class CpuKernel:
    """The generated CPU variant of a kernel.

    ``source`` is OpenCL-C text for a kernel named ``<orig>_cpu`` taking
    the original arguments followed by
    ``(__global int* dopia_wg_worklist, int dopia_num_wgs,
    int dopia_ls0..2, int dopia_ng0..2)``.
    Launch it with an ND-range of ``(num_threads,)`` / local size 1.
    """

    kernel: ast.FunctionDef
    info: KernelInfo
    source: str
    work_dim: int
    #: how threads claim work-groups: "atomic" (fetch-add worklist) or
    #: "relaxed" (static stride; requires a race-clean verdict)
    claims: str = "atomic"

    @property
    def name(self) -> str:
        return self.kernel.name

    def scheduler_args(
        self, num_work_groups: int, local_size: tuple[int, ...],
        num_groups: tuple[int, ...],
    ) -> dict[str, int]:
        """The extra scalar arguments describing the original geometry."""
        ls = tuple(local_size) + (1, 1, 1)
        ng = tuple(num_groups) + (1, 1, 1)
        return {
            NUM_WGS_PARAM: num_work_groups,
            "dopia_ls0": ls[0], "dopia_ls1": ls[1], "dopia_ls2": ls[2],
            "dopia_ng0": ng[0], "dopia_ng1": ng[1], "dopia_ng2": ng[2],
        }


def _wg_component(dim: int, work_dim: int) -> ast.Expr:
    """Decompose the linear work-group id (dimension 0 fastest)."""
    expr: ast.Expr = rw.ident(WG_VAR)
    for slower in range(dim):
        expr = rw.binop("/", expr, rw.ident(f"dopia_ng{slower}"))
    if dim < work_dim - 1:
        expr = rw.binop("%", expr, rw.ident(f"dopia_ng{dim}"))
    return expr


def _item_component(dim: int, work_dim: int) -> ast.Expr:
    """Decompose the linear local item id (dimension 0 fastest)."""
    expr: ast.Expr = rw.ident(ITEM_VAR)
    for slower in range(dim):
        expr = rw.binop("/", expr, rw.ident(f"dopia_ls{slower}"))
    if dim < work_dim - 1:
        expr = rw.binop("%", expr, rw.ident(f"dopia_ls{dim}"))
    return expr


def make_cpu_kernel(
    kernel_or_source: ast.FunctionDef | str | KernelInfo,
    work_dim: int,
    kernel_name: str | None = None,
    claims: str = "atomic",
) -> CpuKernel:
    """Generate the Figure-7 CPU variant of a kernel.

    Accepts source text, a parsed :class:`FunctionDef`, or an analysed
    :class:`KernelInfo` (preserving helper-function context).

    ``claims`` selects how threads claim work-groups from the worklist:

    * ``"atomic"`` — Figure 7's ``atomic_inc`` fetch-add on the shared
      worklist buffer (always safe; the default).
    * ``"relaxed"`` — a static strided schedule: thread ``t`` of ``T``
      claims work-groups ``t, t+T, t+2T, …`` with no shared counter at
      all.  Only sound when the kernel is race-free across work-groups,
      i.e. when ``analysis.verify`` returned a race-clean verdict — the
      caller is responsible for checking (see ``runtime.cpu_variant``).
      The worklist parameter stays in the signature so launch plumbing
      is identical for both forms.
    """
    if not 1 <= work_dim <= 3:
        raise CpuTransformError(f"unsupported work dimension {work_dim}")
    if claims not in ("atomic", "relaxed"):
        raise CpuTransformError(f"unknown claim discipline {claims!r}")
    if isinstance(kernel_or_source, KernelInfo):
        original_info = kernel_or_source
        kernel = original_info.kernel
    elif isinstance(kernel_or_source, str):
        from ..frontend.parser import parse

        unit_context = parse(kernel_or_source)
        if kernel_name is not None:
            kernel = unit_context.kernel(kernel_name)
        else:
            kernel = unit_context.kernels()[0]
        original_info = analyze_kernel(kernel, unit_context)
    else:
        kernel = kernel_or_source
        original_info = analyze_kernel(kernel)
    if original_info.uses_barrier:
        raise CpuTransformError(
            "kernels with barriers need lock-step CPU execution; the "
            "Figure-7 sequential item loop does not apply"
        )
    reserved = {WORKLIST_PARAM, NUM_WGS_PARAM, WG_VAR, ITEM_VAR, *_GEOM_PARAMS}
    clash = reserved & set(original_info.symbols.symbols)
    if clash:
        raise CpuTransformError(f"kernel uses reserved names {sorted(clash)}")

    new_kernel = rw.clone(kernel)
    assert isinstance(new_kernel, ast.FunctionDef)
    new_kernel.name = f"{kernel.name}_cpu"

    int_type = ast.CType("int")
    new_kernel.params.append(
        rw.param(ast.CType("int", pointer=True, address_space="global"), WORKLIST_PARAM)
    )
    new_kernel.params.append(rw.param(int_type, NUM_WGS_PARAM))
    for name in _GEOM_PARAMS:
        new_kernel.params.append(rw.param(int_type, name))

    def replace(node: ast.Call) -> ast.Expr | None:
        if not node.args or not isinstance(node.args[0], ast.IntLiteral):
            if node.name == "get_work_dim":
                return rw.intlit(work_dim)
            return None
        dim = node.args[0].value
        if node.name == "get_global_id":
            if dim >= work_dim:
                return rw.intlit(0)
            return rw.binop(
                "+",
                rw.binop("*", _wg_component(dim, work_dim), rw.ident(f"dopia_ls{dim}")),
                _item_component(dim, work_dim),
            )
        if node.name == "get_local_id":
            return _item_component(dim, work_dim) if dim < work_dim else rw.intlit(0)
        if node.name == "get_group_id":
            return _wg_component(dim, work_dim) if dim < work_dim else rw.intlit(0)
        if node.name == "get_local_size":
            return rw.ident(f"dopia_ls{dim}") if dim < work_dim else rw.intlit(1)
        if node.name == "get_num_groups":
            return rw.ident(f"dopia_ng{dim}") if dim < work_dim else rw.intlit(1)
        if node.name == "get_global_size":
            if dim >= work_dim:
                return rw.intlit(1)
            return rw.binop("*", rw.ident(f"dopia_ng{dim}"), rw.ident(f"dopia_ls{dim}"))
        if node.name == "get_global_offset":
            return rw.intlit(0)
        return None

    body = rw.substitute_calls(new_kernel.body, replace)
    assert isinstance(body, ast.Block)

    # items-per-group product
    items: ast.Expr = rw.ident("dopia_ls0")
    for dim in range(1, work_dim):
        items = rw.binop("*", items, rw.ident(f"dopia_ls{dim}"))

    item_loop = ast.For(
        location=rw.SYNTH,
        init=rw.decl_stmt(int_type, ITEM_VAR, init=rw.intlit(0)),
        cond=rw.binop("<", rw.ident(ITEM_VAR), items),
        step=ast.PostfixOp(location=rw.SYNTH, op="++", operand=rw.ident(ITEM_VAR)),
        body=body,
    )
    if claims == "relaxed":
        # Static strided schedule over the generated kernel's own launch
        # geometry (T threads, local size 1): thread t claims work-groups
        # t, t+T, t+2T, …  No shared counter, no fetch-add.  These get_*
        # calls are deliberately built *after* ``substitute_calls`` — they
        # query the outer CPU launch, not the original ND-range.
        wg_loop = ast.For(
            location=rw.SYNTH,
            init=rw.decl_stmt(
                int_type, WG_VAR, init=rw.call("get_global_id", rw.intlit(0))
            ),
            cond=rw.binop("<", rw.ident(WG_VAR), rw.ident(NUM_WGS_PARAM)),
            step=rw.assign(
                rw.ident(WG_VAR),
                rw.binop("+", rw.ident(WG_VAR),
                         rw.call("get_global_size", rw.intlit(0))),
            ),
            body=rw.block(item_loop),
        )
    else:
        wg_loop = ast.For(
            location=rw.SYNTH,
            init=rw.decl_stmt(
                int_type, WG_VAR, init=rw.call("atomic_inc", rw.ident(WORKLIST_PARAM))
            ),
            cond=rw.binop("<", rw.ident(WG_VAR), rw.ident(NUM_WGS_PARAM)),
            step=rw.assign(
                rw.ident(WG_VAR), rw.call("atomic_inc", rw.ident(WORKLIST_PARAM))
            ),
            body=rw.block(item_loop),
        )
    new_kernel.body = rw.block(wg_loop)

    helper_sources = [
        rw.print_kernel(helper.kernel)
        for helper in original_info.user_functions.values()
    ]
    source = "\n\n".join(helper_sources + [rw.print_kernel(new_kernel)])
    from ..frontend.parser import parse

    unit = parse(source)
    reparsed = unit.kernels()[-1]
    info = analyze_kernel(reparsed, unit)
    return CpuKernel(kernel=reparsed, info=info, source=source,
                     work_dim=work_dim, claims=claims)
