"""Malleable GPU kernel generation (paper §6, Figures 5 and 6).

The transformation makes a data-parallel kernel's degree of parallelism
adjustable *in software* on hardware whose GPU scheduler cannot be told to
use fewer processing elements:

1. Two parameters are appended: ``dop_gpu_mod`` and ``dop_gpu_alloc``.
   Work-items are mapped linearly to the PEs of a compute unit, so a
   work-item's local index identifies its PE.  Only PEs with
   ``get_local_id(0) % dop_gpu_mod < dop_gpu_alloc`` execute work;
   the rest terminate immediately (Figure 5, line 13).
2. Because the GPU scheduler still assumes every work-item processes its
   own element, the surviving PEs drain the whole work-group from a
   CU-local atomic worklist (``local_worklist``), so no work is lost
   (lines 10–14).
3. Every use of ``get_global_id(d)`` inside the body is replaced with the
   index reconstructed from the dynamically fetched work id
   (lines 16–17); ``get_local_id(d)`` uses are rewritten likewise.

The transformation supports 1- and 2-dimensional ND-ranges (all paper
workloads; Figures 5 and 6 respectively) and 3-dimensional ranges by the
same decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend import ast
from ..frontend.semantics import KernelInfo, analyze_kernel
from . import rewriter as rw

#: Names injected by the transformation; the original kernel must not
#: already use them.
MOD_PARAM = "dop_gpu_mod"
ALLOC_PARAM = "dop_gpu_alloc"
WORKLIST_VAR = "local_worklist"
WORK_VAR = "dynamic_work"

_RESERVED = (MOD_PARAM, ALLOC_PARAM, WORKLIST_VAR, WORK_VAR)


class TransformError(Exception):
    """Raised when a kernel cannot be made malleable."""


@dataclass
class MalleableKernel:
    """The result of the malleable-GPU transformation.

    ``kernel`` is the transformed AST (already re-analysed), ``source`` the
    printed OpenCL-C text.  The transformed kernel takes the original
    arguments plus ``(dop_gpu_mod, dop_gpu_alloc)``.
    """

    kernel: ast.FunctionDef
    info: KernelInfo
    source: str
    work_dim: int

    @property
    def name(self) -> str:
        return self.kernel.name


def _local_linear_size(work_dim: int) -> ast.Expr:
    """``get_local_size(0) * ... * get_local_size(work_dim-1)``."""
    expr: ast.Expr = rw.get_work_item_call("get_local_size", 0)
    for dim in range(1, work_dim):
        expr = rw.binop("*", expr, rw.get_work_item_call("get_local_size", dim))
    return expr


def _dynamic_local_index(dim: int, work_dim: int) -> ast.Expr:
    """The local index along ``dim`` reconstructed from ``dynamic_work``.

    Follows Figure 6: for a 2-D range, dimension 0 is
    ``dynamic_work / get_local_size(1)`` and dimension 1 is
    ``dynamic_work % get_local_size(1)`` — i.e. the highest dimension
    varies fastest in the worklist order.
    """
    work = rw.ident(WORK_VAR)
    if work_dim == 1:
        return work
    # divide out all faster (higher-numbered) dimensions, then take modulo
    divisor: ast.Expr | None = None
    for faster in range(dim + 1, work_dim):
        size = rw.get_work_item_call("get_local_size", faster)
        divisor = size if divisor is None else rw.binop("*", divisor, size)
    index: ast.Expr = work if divisor is None else rw.binop("/", work, divisor)
    if dim > 0:
        index = rw.binop("%", index, rw.get_work_item_call("get_local_size", dim))
    return index


def _dynamic_global_id(dim: int, work_dim: int) -> ast.Expr:
    """Figure 5/6 lines 16–17: rebuild a global id from ``dynamic_work``."""
    base = rw.binop(
        "+",
        rw.binop(
            "*",
            rw.get_work_item_call("get_group_id", dim),
            rw.get_work_item_call("get_local_size", dim),
        ),
        rw.get_work_item_call("get_global_offset", dim),
    )
    return rw.binop("+", base, _dynamic_local_index(dim, work_dim))


def make_malleable(
    kernel_or_source: ast.FunctionDef | str | KernelInfo,
    work_dim: int,
    kernel_name: str | None = None,
) -> MalleableKernel:
    """Apply the Figure-5/6 transformation to a kernel.

    Accepts kernel source text, a parsed :class:`FunctionDef`, or an
    already-analysed :class:`KernelInfo` (which preserves helper-function
    context).  ``work_dim`` is the dimensionality the kernel will be
    launched with — part of the enqueue-time information, which is why
    Dopia generates the malleable variant per launch configuration.
    """
    if not 1 <= work_dim <= 3:
        raise TransformError(f"unsupported work dimension {work_dim}")
    if isinstance(kernel_or_source, KernelInfo):
        original_info = kernel_or_source
        kernel = original_info.kernel
    elif isinstance(kernel_or_source, str):
        from ..frontend.parser import parse

        unit_context = parse(kernel_or_source)
        if kernel_name is not None:
            kernel = unit_context.kernel(kernel_name)
        else:
            kernel = unit_context.kernels()[0]
        original_info = analyze_kernel(kernel, unit_context)
    else:
        kernel = kernel_or_source
        original_info = analyze_kernel(kernel)
    for name in _RESERVED:
        if name in original_info.symbols:
            raise TransformError(
                f"kernel already defines reserved name {name!r}"
            )
    if original_info.uses_barrier:
        raise TransformError(
            "kernels with work-group barriers cannot be throttled: the "
            "masked-off work-items would never reach the barrier"
        )

    new_kernel = rw.clone(kernel)
    assert isinstance(new_kernel, ast.FunctionDef)

    # 1. append throttle parameters
    int_type = ast.CType("int")
    new_kernel.params.append(rw.param(int_type, MOD_PARAM))
    new_kernel.params.append(rw.param(int_type, ALLOC_PARAM))

    # 2. rewrite id queries in the body against the dynamic work id
    def replace(node: ast.Call) -> ast.Expr | None:
        if node.name == "get_global_id" and node.args:
            dim_arg = node.args[0]
            if isinstance(dim_arg, ast.IntLiteral):
                return _dynamic_global_id(dim_arg.value, work_dim)
        if node.name == "get_local_id" and node.args:
            dim_arg = node.args[0]
            if isinstance(dim_arg, ast.IntLiteral) and dim_arg.value < work_dim:
                return _dynamic_local_index(dim_arg.value, work_dim)
        return None

    body = rw.substitute_calls(new_kernel.body, replace)
    assert isinstance(body, ast.Block)

    # 3. worklist drain loop (Figure 5 line 14)
    drain = ast.For(
        location=rw.SYNTH,
        init=rw.decl_stmt(
            int_type, WORK_VAR, init=rw.call("atomic_inc", rw.ident(WORKLIST_VAR))
        ),
        cond=rw.binop("<", rw.ident(WORK_VAR), _local_linear_size(work_dim)),
        step=rw.assign(
            rw.ident(WORK_VAR), rw.call("atomic_inc", rw.ident(WORKLIST_VAR))
        ),
        body=body,
    )

    # 4. PE throttle guard (Figure 5 line 13)
    guard = rw.if_stmt(
        rw.binop(
            "<",
            rw.binop("%", rw.get_work_item_call("get_local_id", 0), rw.ident(MOD_PARAM)),
            rw.ident(ALLOC_PARAM),
        ),
        rw.block(drain),
    )

    # 5. worklist declaration + initialisation + barrier (lines 10–12)
    local_int = ast.CType("int", address_space="local")
    preamble = [
        rw.decl_stmt(local_int, WORKLIST_VAR, dims=[rw.intlit(1)]),
        rw.if_stmt(
            rw.binop("==", rw.get_work_item_call("get_local_id", 0), rw.intlit(0)),
            rw.expr_stmt(
                rw.assign(
                    ast.Index(
                        location=rw.SYNTH, base=rw.ident(WORKLIST_VAR), index=rw.intlit(0)
                    ),
                    rw.intlit(0),
                )
            ),
        ),
        rw.expr_stmt(rw.call("barrier", rw.intlit(1))),
    ]

    new_kernel.body = rw.block(*preamble, guard)

    # Helper functions the kernel calls are emitted verbatim above the
    # transformed kernel so the output is a self-contained program.
    helper_sources = [
        rw.print_kernel(helper.kernel)
        for helper in original_info.user_functions.values()
    ]
    source = "\n\n".join(helper_sources + [rw.print_kernel(new_kernel)])
    # Round-trip through the frontend: guarantees the printed source is
    # valid and gives us a fresh KernelInfo for the transformed kernel.
    from ..frontend.parser import parse

    unit = parse(source)
    reparsed = unit.kernels()[-1]
    info = analyze_kernel(reparsed, unit)
    return MalleableKernel(kernel=reparsed, info=info, source=source, work_dim=work_dim)


def throttle_settings(total_pes_per_cu: int, active_fraction: float) -> tuple[int, int]:
    """Map a GPU utilisation fraction to ``(dop_gpu_mod, dop_gpu_alloc)``.

    The paper throttles in steps of 1/8 of the GPU (Table 3).  A fraction
    ``a/m`` (in lowest terms) activates the PEs whose local index modulo
    ``m`` is below ``a`` — e.g. 37.5 % = 3/8 activates indices 0,1,2 of
    every 8.  ``active_fraction`` must be in (0, 1].
    """
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError("active_fraction must be in (0, 1]")
    # find the smallest denominator up to the CU width that represents the
    # fraction exactly enough (within half a PE)
    best = (1, 1)
    best_err = abs(active_fraction - 1.0)
    for mod in range(1, max(2, total_pes_per_cu) + 1):
        alloc = max(1, round(active_fraction * mod))
        if alloc > mod:
            alloc = mod
        err = abs(active_fraction - alloc / mod)
        if err < best_err - 1e-12:
            best = (mod, alloc)
            best_err = err
            if err < 1e-12:
                break
    mod, alloc = best
    return mod, alloc
