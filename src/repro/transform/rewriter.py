"""AST utilities for the code transformations: printing, cloning, substitution.

The malleable-kernel generator works AST-to-AST and then prints the result
back to OpenCL-C text, so the transformed kernel can be compiled by the
same frontend and executed by the same interpreter as the original — the
round trip is itself a correctness check.
"""

from __future__ import annotations

import copy
from typing import Callable

from ..frontend import ast
from ..frontend.errors import SourceLocation

#: Location attached to synthesised nodes.
SYNTH = SourceLocation(0, 0)


def clone(node: ast.Node) -> ast.Node:
    """Deep-copy an AST subtree."""
    return copy.deepcopy(node)


# ---------------------------------------------------------------------------
# Node construction helpers (all carry the synthetic location)
# ---------------------------------------------------------------------------


def ident(name: str) -> ast.Identifier:
    return ast.Identifier(location=SYNTH, name=name)


def intlit(value: int) -> ast.IntLiteral:
    return ast.IntLiteral(location=SYNTH, value=value, text=str(value))


def call(name: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(location=SYNTH, name=name, args=list(args))


def binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp(location=SYNTH, op=op, left=left, right=right)


def assign(target: ast.Expr, value: ast.Expr, op: str = "=") -> ast.Assignment:
    return ast.Assignment(location=SYNTH, op=op, target=target, value=value)


def decl_stmt(ctype: ast.CType, name: str, init: ast.Expr | None = None,
              dims: list[ast.Expr] | None = None) -> ast.DeclStmt:
    return ast.DeclStmt(
        location=SYNTH,
        decls=[ast.VarDecl(location=SYNTH, type=ctype, name=name,
                           array_dims=dims or [], init=init)],
    )


def expr_stmt(expr: ast.Expr) -> ast.ExprStmt:
    return ast.ExprStmt(location=SYNTH, expr=expr)


def block(*stmts: ast.Stmt) -> ast.Block:
    return ast.Block(location=SYNTH, body=list(stmts))


def if_stmt(cond: ast.Expr, then: ast.Stmt, otherwise: ast.Stmt | None = None) -> ast.If:
    return ast.If(location=SYNTH, cond=cond, then=then, otherwise=otherwise)


def param(ctype: ast.CType, name: str) -> ast.Param:
    return ast.Param(location=SYNTH, type=ctype, name=name)


def get_work_item_call(name: str, dim: int) -> ast.Call:
    return call(name, intlit(dim))


# ---------------------------------------------------------------------------
# Expression substitution
# ---------------------------------------------------------------------------


def substitute_calls(
    node: ast.Node, replace: Callable[[ast.Call], ast.Expr | None]
) -> ast.Node:
    """Return a copy of ``node`` with some Call expressions replaced.

    ``replace`` receives each Call node (bottom-up) and returns either a
    replacement expression or ``None`` to keep the call.  Used to rewrite
    ``get_global_id(d)`` into the dynamic-worklist index computation of
    Figures 5/6.
    """

    def rewrite(n: ast.Node) -> ast.Node:
        for f_name, value in list(vars(n).items()):
            if isinstance(value, ast.Node):
                setattr(n, f_name, rewrite(value))
            elif isinstance(value, list):
                setattr(
                    n,
                    f_name,
                    [rewrite(v) if isinstance(v, ast.Node) else v for v in value],
                )
        if isinstance(n, ast.Call):
            replacement = replace(n)
            if replacement is not None:
                return replacement
        return n

    return rewrite(clone(node))


# ---------------------------------------------------------------------------
# Source printer
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    ",": 0, "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1, "%=": 1,
    "&=": 1, "|=": 1, "^=": 1, "<<=": 1, ">>=": 1,
    "?:": 2, "||": 3, "&&": 4, "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10, "+": 11, "-": 11, "*": 12, "/": 12, "%": 12,
}


class SourcePrinter:
    """Prints an AST back to compilable OpenCL-C text."""

    def __init__(self, indent: str = "    "):
        self.indent_text = indent

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr(node)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr(self, node: ast.Expr) -> tuple[str, int]:
        if isinstance(node, ast.IntLiteral):
            return (node.text or str(node.value)), 99
        if isinstance(node, ast.FloatLiteral):
            if node.text:
                return node.text, 99
            text = repr(node.value)
            return (text + "f" if "." in text or "e" in text else text + ".0f"), 99
        if isinstance(node, ast.Identifier):
            return node.name, 99
        if isinstance(node, ast.BinaryOp):
            prec = _PRECEDENCE[node.op]
            left = self.expr(node.left, prec)
            right = self.expr(node.right, prec + 1)
            return f"{left} {node.op} {right}", prec
        if isinstance(node, ast.UnaryOp):
            operand = self.expr(node.operand, 13)
            return f"{node.op}{operand}", 13
        if isinstance(node, ast.PostfixOp):
            operand = self.expr(node.operand, 14)
            return f"{operand}{node.op}", 14
        if isinstance(node, ast.Assignment):
            target = self.expr(node.target, 2)
            value = self.expr(node.value, 1)
            return f"{target} {node.op} {value}", 1
        if isinstance(node, ast.Conditional):
            cond = self.expr(node.cond, 3)
            then = self.expr(node.then, 2)
            otherwise = self.expr(node.otherwise, 2)
            return f"{cond} ? {then} : {otherwise}", 2
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a, 1) for a in node.args)
            return f"{node.name}({args})", 14
        if isinstance(node, ast.Index):
            base = self.expr(node.base, 14)
            return f"{base}[{self.expr(node.index)}]", 14
        if isinstance(node, ast.Cast):
            operand = self.expr(node.operand, 13)
            return f"({node.type}){operand}", 13
        raise TypeError(f"cannot print expression {type(node).__name__}")

    # -- statements -----------------------------------------------------------

    def stmt(self, node: ast.Stmt, depth: int = 0) -> str:
        pad = self.indent_text * depth
        if isinstance(node, ast.Block):
            inner = "\n".join(self.stmt(s, depth + 1) for s in node.body)
            return f"{pad}{{\n{inner}\n{pad}}}" if node.body else f"{pad}{{ }}"
        if isinstance(node, ast.DeclStmt):
            return pad + self._decl_text(node) + ";"
        if isinstance(node, ast.ExprStmt):
            return f"{pad}{self.expr(node.expr)};"
        if isinstance(node, ast.If):
            text = f"{pad}if ({self.expr(node.cond)})\n{self._nested(node.then, depth)}"
            if node.otherwise is not None:
                text += f"\n{pad}else\n{self._nested(node.otherwise, depth)}"
            return text
        if isinstance(node, ast.For):
            init = ""
            if isinstance(node.init, ast.DeclStmt):
                init = self._decl_text(node.init)
            elif isinstance(node.init, ast.ExprStmt):
                init = self.expr(node.init.expr)
            cond = self.expr(node.cond) if node.cond is not None else ""
            step = self.expr(node.step) if node.step is not None else ""
            return f"{pad}for ({init}; {cond}; {step})\n{self._nested(node.body, depth)}"
        if isinstance(node, ast.While):
            return f"{pad}while ({self.expr(node.cond)})\n{self._nested(node.body, depth)}"
        if isinstance(node, ast.DoWhile):
            body = self._nested(node.body, depth)
            return f"{pad}do\n{body}\n{pad}while ({self.expr(node.cond)});"
        if isinstance(node, ast.Return):
            if node.value is None:
                return f"{pad}return;"
            return f"{pad}return {self.expr(node.value)};"
        if isinstance(node, ast.Break):
            return f"{pad}break;"
        if isinstance(node, ast.Continue):
            return f"{pad}continue;"
        raise TypeError(f"cannot print statement {type(node).__name__}")

    def _nested(self, node: ast.Stmt, depth: int) -> str:
        if isinstance(node, ast.Block):
            return self.stmt(node, depth)
        return self.stmt(node, depth + 1)

    def _decl_text(self, node: ast.DeclStmt) -> str:
        parts = []
        for decl in node.decls:
            text = f"{decl.type} {decl.name}"
            for dim in decl.array_dims:
                text += f"[{self.expr(dim)}]"
            if decl.init is not None:
                text += f" = {self.expr(decl.init)}"
            parts.append(text)
        return ", ".join(parts)

    # -- functions ------------------------------------------------------------

    def function(self, node: ast.FunctionDef) -> str:
        qualifier = "__kernel " if node.is_kernel else ""
        params = ", ".join(f"{p.type} {p.name}" for p in node.params)
        header = f"{qualifier}{node.return_type} {node.name}({params})"
        return f"{header}\n{self.stmt(node.body)}"


def print_kernel(kernel: ast.FunctionDef) -> str:
    """Print a kernel definition back to OpenCL-C source text."""
    return SourcePrinter().function(kernel)
