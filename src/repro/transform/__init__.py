"""Malleable code generation (paper §6): GPU throttling and CPU lowering."""

from .cpu_codegen import CpuKernel, CpuTransformError, make_cpu_kernel
from .gpu_malleable import (
    ALLOC_PARAM,
    MOD_PARAM,
    MalleableKernel,
    TransformError,
    make_malleable,
    throttle_settings,
)
from .rewriter import SourcePrinter, clone, print_kernel, substitute_calls

__all__ = [
    "CpuKernel", "CpuTransformError", "make_cpu_kernel", "ALLOC_PARAM",
    "MOD_PARAM", "MalleableKernel", "TransformError", "make_malleable",
    "throttle_settings", "SourcePrinter", "clone", "print_kernel",
    "substitute_calls",
]
