"""``repro.obs`` — launch tracing and metrics.

A structured observability layer threaded through the whole launch path:
the process-global :data:`tracer` records nested spans and typed events
(build/analysis, predictor evaluation with all 44 scored configurations,
scheduler chunk/pull activity, interpreter backend selection, simulated
time) into a bounded ring buffer, with counters and histograms on the
side.  Exports to JSONL and Chrome trace-event JSON; ``dopia trace`` and
``dopia stats`` are the CLI surface, ``DOPIA_TRACE`` the env toggle.

Off by default and proven zero-perturbation by the differential suite.
"""

from .export import (
    JSONL_KEYS,
    event_from_json,
    event_to_json,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .summary import (
    ReconstructedSchedule,
    SpanStats,
    TraceSummary,
    format_summary,
    reconstruct_schedule,
    summarize,
)
from .tracer import (
    DEFAULT_CAPACITY,
    Histogram,
    TraceEvent,
    Tracer,
    apply_env,
    env_trace_request,
    export_env_trace,
    iter_spans,
    trace_export_path,
    tracer,
)

# Honour DOPIA_TRACE as soon as any instrumented module loads.
apply_env()

__all__ = [
    "DEFAULT_CAPACITY", "Histogram", "TraceEvent", "Tracer", "apply_env",
    "env_trace_request", "export_env_trace", "iter_spans",
    "trace_export_path", "tracer",
    "JSONL_KEYS", "event_from_json", "event_to_json", "read_jsonl",
    "to_chrome_trace", "write_chrome_trace", "write_jsonl",
    "ReconstructedSchedule", "SpanStats", "TraceSummary", "format_summary",
    "reconstruct_schedule", "summarize",
]
