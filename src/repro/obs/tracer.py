"""The tracer: nested spans, typed events, counters, and histograms.

One process-global :class:`Tracer` (``repro.obs.tracer``) is threaded
through the whole launch path — program build and static analysis,
predictor evaluation (all 44 scored configurations), scheduler chunk/pull
activity, interpreter backend selection and fallbacks, and the simulated
time breakdown.  Events land in a bounded in-memory ring buffer (oldest
events are dropped, never the process) and export to JSONL or Chrome
``chrome://tracing`` format via :mod:`repro.obs.export`.

Tracing is **off by default and zero-perturbation**: every recording site
is guarded by a single ``tracer.enabled`` attribute check, recording never
touches RNG state or kernel buffers, and the differential suite
(`tests/obs/test_zero_perturbation.py`) proves a traced run bit-identical
to an untraced one.

Toggles
-------
``DOPIA_TRACE`` (environment)
    Unset/``0``/``false`` — disabled (the default).  ``1``/``true`` —
    enabled, in-memory only.  Any other value is treated as an export
    path: the trace is written there at interpreter exit (``*.json`` →
    Chrome trace format, anything else → JSONL).
``tracer.enable()`` / ``tracer.disable()``
    Programmatic control, used by ``dopia trace`` and the test harness.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

#: Default ring-buffer capacity (events). A full end-to-end traced launch
#: lands in the hundreds of events; dataset collection in the tens of
#: thousands — the ring keeps the most recent window either way.
DEFAULT_CAPACITY = 65536

#: Chrome trace-event phase codes used here: complete span, instant, counter.
PHASE_SPAN = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"


@dataclass(frozen=True)
class TraceEvent:
    """One typed timeline entry, directly mappable to a Chrome trace event."""

    name: str
    category: str
    phase: str                 #: ``X`` span, ``i`` instant, ``C`` counter
    ts_us: float               #: microseconds since the tracer's epoch
    dur_us: float = 0.0        #: span duration (``X`` only)
    tid: int = 0               #: small per-thread ordinal, 0 = first thread
    depth: int = 0             #: span-nesting depth at record time
    args: dict = field(default_factory=dict)


@dataclass
class Histogram:
    """Streaming value distribution: count/sum/min/max + log2 buckets."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: bucket exponent -> count; value v lands in ceil(log2(v)) (0 for v<=1)
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = max(0, math.ceil(math.log2(value))) if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullSpan:
    """The shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Context:
    """Pushes key/value pairs onto the calling thread's context stack.

    While active, every event recorded *by this thread* carries the pairs
    in its ``args`` (explicit per-event args win on key collision).  The
    serving layer uses this to thread per-session identity through every
    span/instant a worker records on behalf of a client, without changing
    any instrumentation call site.
    """

    __slots__ = ("_tracer", "_kv", "_prev")

    def __init__(self, tracer: "Tracer", kv: dict):
        self._tracer = tracer
        self._kv = kv

    def __enter__(self) -> "_Context":
        local = self._tracer._local
        self._prev = getattr(local, "ctx", None)
        merged = dict(self._prev) if self._prev else {}
        merged.update(self._kv)
        local.ctx = merged
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._local.ctx = self._prev


class _Span:
    """An open span; records one ``X`` event when the ``with`` block exits.

    The event is recorded even if the block raises, so a trace always shows
    where the time went up to a failure.
    """

    __slots__ = ("_tracer", "_name", "_category", "_args", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_Span":
        stack = self._tracer._span_stack()
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        dur_s = time.perf_counter() - self._t0
        stack = self._tracer._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(
            self._name, self._category, PHASE_SPAN,
            ts_us=(self._t0 - self._tracer._epoch) * 1e6,
            dur_us=dur_s * 1e6,
            depth=self._depth,
            args=self._args,
        )


class Tracer:
    """Bounded-ring event recorder with spans, counters, and histograms.

    Thread-safe: recording takes one short lock; the span stack is
    thread-local so nesting depth is per-thread.  Disabled cost is a
    single attribute check at each site (plus, for ``span()`` call sites,
    building the keyword arguments — instrumented hot loops guard with
    ``if tracer.enabled`` so even that disappears).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.enabled = False
        self.capacity = capacity
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.total_events = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: dict[int, int] = {}
        self._epoch = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    def enable(self, capacity: Optional[int] = None) -> None:
        """Switch recording on (idempotent); optionally resize the ring."""
        if capacity is not None and capacity != self.capacity:
            with self._lock:
                self.capacity = capacity
                self._events = deque(self._events, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        """Switch recording off; the buffered events stay readable."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all events, counters, and histograms; reset the epoch."""
        with self._lock:
            self._events.clear()
            self.counters.clear()
            self.histograms.clear()
            self.total_events = 0
            self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str = "span", **args: Any):
        """Context manager timing a nested region (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, args)

    def context(self, **kv: Any) -> _Context:
        """Context manager tagging every event this thread records.

        Unlike :meth:`span`, this is active even while recording is off —
        it only stores a thread-local dict — so a serving worker can
        install its session tag once and any tracing toggled on later is
        attributed correctly.
        """
        return _Context(self, kv)

    def instant(self, name: str, category: str = "event", **args: Any) -> None:
        """Record a point-in-time event (no-op when disabled)."""
        if not self.enabled:
            return
        self._record(name, category, PHASE_INSTANT,
                     ts_us=self._now_us(), depth=len(self._span_stack()),
                     args=args)

    def counter(self, name: str, value: float = 1.0,
                category: str = "counter") -> None:
        """Accumulate a named counter and record its running total."""
        if not self.enabled:
            return
        with self._lock:
            total = self.counters.get(name, 0.0) + value
            self.counters[name] = total
        self._record(name, category, PHASE_COUNTER,
                     ts_us=self._now_us(), args={name: total})

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into the named histogram (no event emitted)."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    # -- queries -------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring since the last :meth:`clear`."""
        return self.total_events - len(self._events)

    # -- internals -----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        """Small per-thread ordinal; caller must hold :attr:`_lock` on a
        potential first sighting (two racing first-touches would otherwise
        both read ``len(self._tids)`` and share an ordinal)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
        return tid

    def _record(self, name: str, category: str, phase: str, *,
                ts_us: float, dur_us: float = 0.0, depth: int = 0,
                args: dict) -> None:
        context = getattr(self._local, "ctx", None)
        if context:
            args = {**context, **args}
        with self._lock:
            event = TraceEvent(
                name=name, category=category, phase=phase,
                ts_us=ts_us, dur_us=dur_us, tid=self._tid(), depth=depth,
                args=args,
            )
            self._events.append(event)
            self.total_events += 1


#: The process-global tracer every instrumented module records into.
tracer = Tracer()


# ---------------------------------------------------------------------------
# Environment toggle
# ---------------------------------------------------------------------------

_FALSY = ("", "0", "false", "off", "no")
_TRUTHY = ("1", "true", "on", "yes")


def env_trace_request(environ: Optional[dict] = None) -> Optional[str]:
    """Parse ``DOPIA_TRACE``: ``None`` (off), ``"1"`` (memory), or a path."""
    value = (environ or os.environ).get("DOPIA_TRACE", "").strip()
    if value.lower() in _FALSY:
        return None
    if value.lower() in _TRUTHY:
        return "1"
    return value


_env_applied = False


def trace_export_path(request: Optional[str] = None,
                      suffix: Optional[str] = None) -> Optional[str]:
    """The file a trace export should land in, or ``None``.

    ``suffix`` (or the ``DOPIA_TRACE_SUFFIX`` env var) is spliced in
    before the extension — ``trace.json`` + ``shard2`` →
    ``trace.shard2.json`` — so every process of a sharded server can
    honour one ``DOPIA_TRACE`` setting without clobbering the others.
    """
    if request is None:
        request = env_trace_request()
    if request is None or request == "1":
        return None
    if suffix is None:
        suffix = os.environ.get("DOPIA_TRACE_SUFFIX", "").strip() or None
    if not suffix:
        return request
    root, ext = os.path.splitext(request)
    return f"{root}.{suffix}{ext}"


def _export_to(target: Tracer, path: str) -> None:
    from .export import write_chrome_trace, write_jsonl

    events = target.events()
    if not events:
        return
    if path.endswith(".json"):
        write_chrome_trace(events, path, counters=target.counters)
    else:
        write_jsonl(events, path)


def export_env_trace(target: Optional[Tracer] = None,
                     suffix: Optional[str] = None) -> Optional[str]:
    """Export the tracer's events *now* per ``DOPIA_TRACE``; returns the path.

    Forked worker processes need this: multiprocessing children exit via
    ``os._exit`` without running :mod:`atexit` handlers, so the at-exit
    export registered by :func:`apply_env` never fires for them.  Workers
    call this explicitly in their shutdown path, passing a per-shard
    ``suffix`` so each process writes its own file.
    """
    target = target or tracer
    path = trace_export_path(suffix=suffix)
    if path is None or not target.enabled:
        return None
    _export_to(target, path)
    return path


def apply_env(target: Optional[Tracer] = None) -> Optional[str]:
    """Honour ``DOPIA_TRACE`` once per process: enable (and, for a path
    value, register an at-exit export).  Returns the parsed request."""
    global _env_applied
    target = target or tracer
    request = env_trace_request()
    if request is None:
        return None
    target.enable()
    if not _env_applied and request != "1":
        import atexit

        def _export_at_exit() -> None:
            path = trace_export_path(request)
            if path is not None:
                _export_to(target, path)

        atexit.register(_export_at_exit)
    _env_applied = True
    return request


def iter_spans(events: Iterable[TraceEvent]) -> Iterable[TraceEvent]:
    """Just the ``X`` (complete-span) events of a stream."""
    return (event for event in events if event.phase == PHASE_SPAN)
