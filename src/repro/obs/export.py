"""Trace export: JSONL (one event per line) and Chrome trace-event JSON.

The JSONL schema is the stable machine interface (every line carries the
same eight keys — see :data:`JSONL_KEYS`); the Chrome form loads directly
into ``chrome://tracing`` or https://ui.perfetto.dev for a flame view of
one launch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional

import numpy as np

from .tracer import PHASE_COUNTER, TraceEvent

#: Every JSONL line is an object with exactly these keys.
JSONL_KEYS = ("name", "cat", "ph", "ts_us", "dur_us", "tid", "depth", "args")


def jsonable(value: Any) -> Any:
    """Best-effort conversion of event args to JSON-serialisable values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset, range)):
        return [jsonable(v) for v in value]
    return repr(value)


def event_to_json(event: TraceEvent) -> dict:
    """The JSONL object form of one event."""
    return {
        "name": event.name,
        "cat": event.category,
        "ph": event.phase,
        "ts_us": round(event.ts_us, 3),
        "dur_us": round(event.dur_us, 3),
        "tid": event.tid,
        "depth": event.depth,
        "args": jsonable(event.args),
    }


def event_from_json(obj: dict) -> TraceEvent:
    return TraceEvent(
        name=str(obj["name"]),
        category=str(obj["cat"]),
        phase=str(obj["ph"]),
        ts_us=float(obj["ts_us"]),
        dur_us=float(obj.get("dur_us", 0.0)),
        tid=int(obj.get("tid", 0)),
        depth=int(obj.get("depth", 0)),
        args=dict(obj.get("args", {})),
    )


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write one event per line; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event_to_json(event)) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_json(json.loads(line)))
    return events


def to_chrome_trace(
    events: Iterable[TraceEvent],
    counters: Optional[dict[str, float]] = None,
) -> dict:
    """The ``chrome://tracing`` JSON object for an event stream.

    Counter events already in the stream render as tracks; the final
    counter totals (if given) land in ``otherData`` for quick inspection.
    """
    trace_events = []
    for event in events:
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": round(event.ts_us, 3),
            "pid": 0,
            "tid": event.tid,
            "args": jsonable(event.args),
        }
        if event.phase == "X":
            entry["dur"] = round(event.dur_us, 3)
        elif event.phase == "i":
            entry["s"] = "t"          # instant scoped to its thread
        elif event.phase == PHASE_COUNTER:
            # Chrome requires counter args to be flat name -> number.
            entry["args"] = {
                k: float(v) for k, v in jsonable(event.args).items()
                if isinstance(v, (int, float))
            }
        trace_events.append(entry)
    document: dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if counters:
        document["otherData"] = {"counters": jsonable(counters)}
    return document


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str | Path,
    counters: Optional[dict[str, float]] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(events, counters=counters)))
    return path
