"""Trace analysis: aggregation for ``dopia stats`` and schedule recovery.

Two consumers:

* :func:`summarize` / :func:`format_summary` — per-(category, name) span
  statistics, instant-event counts, and final counter values, rendered as
  the plain-text report ``dopia stats <trace.jsonl>`` prints.
* :func:`reconstruct_schedule` — rebuilds the exact work-group partition
  of a launch from its ``schedule.*`` events.  The property suite asserts
  this reconstruction matches the :class:`repro.core.scheduler.ScheduleTrace`
  the scheduler itself returned, event for event, so the trace is a
  faithful record of Algorithm 1's behaviour rather than a summary of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent


@dataclass
class SpanStats:
    """Aggregated timing of one (category, name) span kind."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0

    def add(self, dur_us: float) -> None:
        self.count += 1
        self.total_us += dur_us
        self.min_us = min(self.min_us, dur_us)
        self.max_us = max(self.max_us, dur_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything ``dopia stats`` reports about one trace."""

    spans: dict[tuple[str, str], SpanStats] = field(default_factory=dict)
    instants: dict[tuple[str, str], int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    n_events: int = 0


def summarize(events: Iterable[TraceEvent]) -> TraceSummary:
    summary = TraceSummary()
    for event in events:
        summary.n_events += 1
        key = (event.category, event.name)
        if event.phase == PHASE_SPAN:
            stats = summary.spans.get(key)
            if stats is None:
                stats = summary.spans[key] = SpanStats()
            stats.add(event.dur_us)
        elif event.phase == PHASE_INSTANT:
            summary.instants[key] = summary.instants.get(key, 0) + 1
        elif event.phase == PHASE_COUNTER:
            # the stream carries running totals; the last one wins
            for name, value in event.args.items():
                if isinstance(value, (int, float)):
                    summary.counters[name] = float(value)
    return summary


def format_summary(summary: TraceSummary) -> str:
    """Plain-text report, categories sorted, widest span kinds first."""
    lines = [f"events    : {summary.n_events}"]
    if summary.spans:
        lines.append("spans (total/mean over count):")
        ordered = sorted(
            summary.spans.items(), key=lambda kv: -kv[1].total_us
        )
        for (category, name), stats in ordered:
            lines.append(
                f"  {category:10s} {name:32s} "
                f"{stats.total_us / 1e3:10.3f} ms / "
                f"{stats.mean_us / 1e3:9.3f} ms x {stats.count}"
            )
    if summary.instants:
        lines.append("events by kind:")
        for (category, name), count in sorted(summary.instants.items()):
            lines.append(f"  {category:10s} {name:32s} x {count}")
    if summary.counters:
        lines.append("counters:")
        for name, value in sorted(summary.counters.items()):
            text = f"{value:g}"
            lines.append(f"  {name:43s} {text}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Schedule reconstruction
# ---------------------------------------------------------------------------

#: ``schedule.*`` event names that carry work-group claims.
_GPU_RANGE_EVENTS = ("schedule.gpu_chunk", "schedule.static_gpu")
_CPU_RANGE_EVENTS = ("schedule.static_cpu",)


@dataclass
class ReconstructedSchedule:
    """The work-group partition recovered from a launch's trace events.

    Field-compatible with :class:`repro.core.scheduler.ScheduleTrace`
    (kept structural, not imported, so ``repro.obs`` stays dependency-free).
    """

    cpu_groups: list[int] = field(default_factory=list)
    gpu_groups: list[int] = field(default_factory=list)
    gpu_chunks: int = 0

    @property
    def total(self) -> int:
        return len(self.cpu_groups) + len(self.gpu_groups)


def reconstruct_schedule(events: Iterable[TraceEvent]) -> ReconstructedSchedule:
    """Rebuild a launch's exact CPU/GPU work-group partition, in claim order.

    Understands the event vocabulary of all three schedulers: pushed GPU
    chunks (``schedule.gpu_chunk``: linear range), pulled claims
    (``schedule.gpu_pull``/``schedule.cpu_pull``: explicit group lists),
    and static halves (``schedule.static_cpu``/``schedule.static_gpu``).
    """
    recon = ReconstructedSchedule()
    for event in events:
        if event.phase != PHASE_INSTANT:
            continue
        args = event.args
        if event.name in _GPU_RANGE_EVENTS:
            start, count = int(args["start"]), int(args["count"])
            recon.gpu_groups.extend(range(start, start + count))
            recon.gpu_chunks += 1
        elif event.name == "schedule.gpu_pull":
            recon.gpu_groups.extend(int(g) for g in args["groups"])
            recon.gpu_chunks += 1
        elif event.name == "schedule.cpu_pull":
            recon.cpu_groups.extend(int(g) for g in args["groups"])
        elif event.name in _CPU_RANGE_EVENTS:
            start, count = int(args["start"]), int(args["count"])
            recon.cpu_groups.extend(range(start, start + count))
    return recon
