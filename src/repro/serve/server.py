"""The serving layer: admission queue, worker pool, client sessions.

``DopiaServer`` turns the single-client :class:`repro.core.DopiaRuntime`
launch path into a concurrent service.  N client sessions submit launches
into one admission queue; a pool of worker threads drains it.  For every
launch a worker

1. snapshots the :class:`~repro.serve.ledger.DeviceLoadLedger` and feeds
   the live (bucketed) ``CPU_util``/``GPU_util`` into
   :meth:`DopPredictor.select <repro.core.predictor.DopPredictor.select>`
   — through the LRU :class:`~repro.serve.cache.PredictionCache` — so the
   chosen DoP adapts to contention;
2. acquires a ledger lease for the chosen configuration;
3. executes the launch functionally (Algorithm 1 via
   :func:`repro.core.scheduler.run_dynamic`, mutating the client's real
   buffers) and/or on the performance model, charging a contention
   slowdown (:mod:`repro.sim.contention`) for capacity the launch shares
   with the background load it saw at admission;
4. releases the lease and resolves the client's :class:`LaunchHandle`.

Locking discipline: every shared structure (ledger, cache, stats, kernel
preparation) has its own short lock; **no lock is held across kernel
execution or model inference**, so independent launches proceed in
parallel.  Per-session identity flows into the tracer via
:meth:`Tracer.context <repro.obs.tracer.Tracer.context>` so exported
spans reconstruct each client's timeline.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.features import StaticFeatures, extract_static_features
from ..analysis.profile import profile_kernel
from ..core.predictor import DopPredictor, Prediction
from ..core.scheduler import ScheduleTrace, run_dynamic
from ..ml.base import Estimator
from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.contention import allocate_bandwidth
from ..sim.engine import ExecutionResult, simulate_execution
from ..sim.platforms import Platform
from ..transform.gpu_malleable import (
    MalleableKernel,
    TransformError,
    make_malleable,
    throttle_settings,
)
from ..workloads.registry import Workload
from .cache import PredictionCache
from .ledger import LOAD_BUCKETS, DeviceLoadLedger, LoadSnapshot


class ServeError(Exception):
    """A launch could not be served (untransformable kernel, closed server)."""


@dataclass
class _PreparedKernel:
    """Per-(source, kernel) compile-time products, shared across launches."""

    workload_key: str
    info: Any
    static: StaticFeatures
    malleable: dict[int, MalleableKernel] = field(default_factory=dict)


@dataclass
class ServeResult:
    """What one served launch produced."""

    kernel: str
    session: str
    seq: int
    prediction: Prediction
    load: LoadSnapshot            #: ledger occupancy seen at admission
    cache_hit: bool
    trace: Optional[ScheduleTrace]   #: functional schedule (None if sim-only)
    sim: Optional[ExecutionResult]
    #: modelled service time: simulated execution x contention slowdown
    #: + model-inference overhead (seconds)
    service_time_s: float
    #: measured wall-clock from submit to completion (seconds)
    latency_s: float
    args: dict[str, Any]


class LaunchHandle:
    """Future-style handle for one submitted launch."""

    def __init__(self, session: str, seq: int):
        self.session = session
        self.seq = seq
        self._done = threading.Event()
        self._result: Optional[ServeResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"launch {self.session}#{self.seq} not complete after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: ServeResult) -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


@dataclass
class _Request:
    session: str
    seq: int
    workload: Workload
    args: dict[str, Any]
    handle: LaunchHandle
    submitted_at: float


_STOP = object()


@dataclass
class ServerStats:
    """Aggregate serving counters (lock-protected; read via snapshot)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: per-launch wall latencies, seconds (bounded; newest kept)
    latencies_s: list[float] = field(default_factory=list)
    #: launches that saw a non-idle ledger at admission
    loaded_predictions: int = 0
    #: launches whose chosen config differed from the idle-load choice
    adapted_predictions: int = 0
    max_latency_samples: int = 65536
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def record(self, result: ServeResult, adapted: bool) -> None:
        with self._lock:
            self.completed += 1
            if len(self.latencies_s) >= self.max_latency_samples:
                self.latencies_s.pop(0)
            self.latencies_s.append(result.latency_s)
            if not result.load.idle:
                self.loaded_predictions += 1
                if adapted:
                    self.adapted_predictions += 1

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1


class ClientSession:
    """One client's ordered view of the server (thread-compatible handle).

    Sessions are cheap; every concurrent client should own one.  ``launch``
    is non-blocking: it returns a :class:`LaunchHandle` immediately and the
    admission queue decouples submission from execution.
    """

    def __init__(self, server: "DopiaServer", name: str):
        self.server = server
        self.name = name
        self._seq = itertools.count()

    def launch(
        self,
        workload: Workload,
        args: Optional[dict[str, Any]] = None,
        rng_seed: int = 0,
    ) -> LaunchHandle:
        """Submit one kernel launch; buffers in ``args`` are mutated in place.

        Without ``args`` the workload's own buffer builder materialises a
        fresh argument set from ``rng_seed``.
        """
        if args is None:
            args = workload.full_args(rng_seed)
        return self.server._submit(self, workload, args)


class DopiaServer:
    """Thread-safe multi-client serving front-end over one platform + model.

    Parameters
    ----------
    platform, model:
        As for :class:`repro.core.DopiaRuntime`.
    workers:
        Worker-thread pool size (concurrent launches in service).
    backend:
        Interpreter backend for functional execution (``auto``/``jit``/
        ``vector``/``scalar``; ``None`` defers to ``DOPIA_BACKEND``).
        The jit tier's program cache is keyed per prepared
        :class:`KernelInfo`, so repeat launches of one workload compile
        once per distinct launch shape and amortize across clients.
    functional:
        When ``False``, launches are simulated for timing only (benchmark
        mode) — no buffers are touched.
    cache_size:
        LRU capacity of the prediction cache.
    dwell_scale / dwell_cap_s:
        When ``dwell_scale > 0`` a worker *holds its ledger lease* for
        ``min(dwell_cap_s, service_time_s * dwell_scale)`` wall seconds,
        emulating device occupancy for the simulated platform — this is
        what makes background load visible to concurrent enqueues in
        benchmark mode, where functional execution (whose real runtime
        otherwise plays that role) is off.
    """

    def __init__(
        self,
        platform: Platform,
        model: Estimator,
        *,
        workers: int = 4,
        backend: str | None = None,
        chunk_divisor: int = 10,
        functional: bool = True,
        cache_size: int = 1024,
        load_buckets: int = LOAD_BUCKETS,
        dwell_scale: float = 0.0,
        dwell_cap_s: float = 0.050,
        queue_capacity: int = 0,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.platform = platform
        self.predictor = DopPredictor(model, platform)
        self.backend = backend
        self.chunk_divisor = chunk_divisor
        self.functional = functional
        self.load_buckets = load_buckets
        self.dwell_scale = dwell_scale
        self.dwell_cap_s = dwell_cap_s
        self.ledger = DeviceLoadLedger(platform)
        self.cache = PredictionCache(cache_size)
        #: memoised performance-model results: simulation is a deterministic
        #: function of (kernel, geometry, scalar args, setting), and served
        #: launches repeat, so the hot path pays the event-driven model once
        self.sim_cache = PredictionCache(cache_size)
        self.stats = ServerStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._prepared: dict[tuple[str, str], _PreparedKernel] = {}
        self._prepare_lock = threading.Lock()
        self._session_lock = threading.Lock()
        self._session_names: set[str] = set()
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"dopia-serve-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def from_runtime(cls, runtime, **kwargs) -> "DopiaServer":
        """Build a server sharing a :class:`DopiaRuntime`'s platform/model."""
        kwargs.setdefault("backend", runtime.backend)
        kwargs.setdefault("chunk_divisor", runtime.chunk_divisor)
        return cls(runtime.platform, runtime.predictor.model, **kwargs)

    def __enter__(self) -> "DopiaServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 30.0) -> None:
        """Drain the queue, stop the workers, reject future submissions."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)

    # -- client surface -------------------------------------------------------

    def session(self, name: Optional[str] = None) -> ClientSession:
        """Open a client session with a unique name."""
        with self._session_lock:
            if name is None:
                name = f"client-{len(self._session_names)}"
            if name in self._session_names:
                raise ValueError(f"session name {name!r} already in use")
            self._session_names.add(name)
        return ClientSession(self, name)

    def _submit(self, session: ClientSession, workload: Workload,
                args: dict[str, Any]) -> LaunchHandle:
        if self._closed:
            raise ServeError("server is closed")
        seq = next(session._seq)
        handle = LaunchHandle(session.name, seq)
        request = _Request(
            session=session.name, seq=seq, workload=workload, args=args,
            handle=handle, submitted_at=time.perf_counter(),
        )
        self.stats.record_submit()
        if tracer.enabled:
            tracer.instant("serve.submit", "serve", session=session.name,
                           seq=seq, kernel=workload.kernel_name)
            tracer.counter("serve.submitted")
        self._queue.put(request)
        return handle

    # -- kernel preparation ----------------------------------------------------

    def _prepare(self, workload: Workload) -> _PreparedKernel:
        """Analyse + transform once per distinct (source, kernel name)."""
        key = (workload.source, workload.kernel_name)
        prepared = self._prepared.get(key)
        if prepared is None:
            with self._prepare_lock:
                prepared = self._prepared.get(key)
                if prepared is None:
                    info = workload.kernel_info()
                    prepared = _PreparedKernel(
                        workload_key=workload.key,
                        info=info,
                        static=extract_static_features(info),
                    )
                    self._prepared[key] = prepared
        return prepared

    def _malleable_for(self, prepared: _PreparedKernel,
                       work_dim: int) -> MalleableKernel:
        if work_dim not in prepared.malleable:
            with self._prepare_lock:
                if work_dim not in prepared.malleable:
                    prepared.malleable[work_dim] = make_malleable(
                        prepared.info, work_dim=work_dim)
        return prepared.malleable[work_dim]

    @staticmethod
    def _verify_admission(prepared: _PreparedKernel, ndrange,
                          args: dict[str, Any]) -> None:
        """Static verification at admission, gated on ``DOPIA_VERIFY``.

        With ``warn`` the report goes to stderr; with ``raise`` a
        :class:`repro.analysis.verify.VerifyError` fails the launch handle
        before any buffer is touched.  Reports are cached per (kernel,
        launch shape), so repeat launches of one workload pay once."""
        from ..analysis.verify import (
            LaunchSpec,
            apply_policy,
            current_policy,
            verify_launch_cached,
        )

        policy = current_policy()
        if policy == "off":
            return
        spec = LaunchSpec.from_args(ndrange, args)
        apply_policy(verify_launch_cached(prepared.info, spec), policy)

    # -- prediction -----------------------------------------------------------

    def _predict(self, prepared: _PreparedKernel, ndrange,
                 load: LoadSnapshot) -> tuple[Prediction, bool, LoadSnapshot]:
        """Load-aware DoP selection through the LRU cache.

        Predictions use the *bucketed* load, so a cache entry is exact for
        every snapshot in its bucket.
        """
        bucketed = load.bucketed(self.load_buckets)
        key = (
            prepared.static.as_tuple(),
            ndrange.work_dim,
            ndrange.total_work_items,
            ndrange.work_items_per_group,
            load.bucket(self.load_buckets),
        )
        prediction, hit = self.cache.get_or_compute(
            key,
            lambda: self.predictor.select(
                prepared.static,
                ndrange.work_dim,
                ndrange.total_work_items,
                ndrange.work_items_per_group,
                cpu_load=bucketed.cpu_util,
                gpu_load=bucketed.gpu_util,
            ),
        )
        return prediction, hit, bucketed

    def _simulate(self, prepared: _PreparedKernel, workload: Workload,
                  ndrange, scalars: dict[str, Any], setting) -> ExecutionResult:
        profile = profile_kernel(
            prepared.info, scalars,
            ndrange.total_work_items,
            ndrange.work_items_per_group,
            work_dim=ndrange.work_dim,
            irregular_trip_hint=workload.irregular_trip_hint,
        )
        return simulate_execution(
            profile, self.platform, setting,
            scheduler="dynamic",
            chunk_divisor=self.chunk_divisor,
            run_key=(workload.kernel_name, "serve"),
        )

    # -- contention model -------------------------------------------------------

    def _contention_slowdown(self, prediction: Prediction,
                             load: LoadSnapshot) -> float:
        """Modelled slowdown from sharing device capacity with the
        background load seen at admission.

        Per device, this launch offers its configuration's normalised
        utilisation as demand against capacity 1.0, alongside the in-flight
        demand; :func:`repro.sim.contention.allocate_bandwidth` (with the
        platform's arbitration fairness) grants each side a share, and the
        slowdown is demand over grant.  With free capacity the grant equals
        the demand and the slowdown is exactly 1.0 — a lone client is never
        charged.
        """
        slowdown = 1.0
        config = prediction.config
        for mine, background in ((config.cpu_util, load.cpu_util),
                                 (config.gpu_util, load.gpu_util)):
            if mine <= 0.0 or background <= 0.0:
                continue
            granted = allocate_bandwidth(
                [mine, background], 1.0,
                fairness=self.platform.arbitration_fairness,
            )[0]
            if granted > 1e-12:
                slowdown = max(slowdown, mine / granted)
        return slowdown

    # -- worker ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request: _Request = item
            try:
                result = self._serve(request)
            except BaseException as error:  # noqa: BLE001 - delivered to client
                self.stats.record_failure()
                request.handle._fail(error)
            else:
                request.handle._resolve(result)

    def _serve(self, request: _Request) -> ServeResult:
        workload = request.workload
        ndrange = workload.ndrange()
        traced = tracer.enabled
        with tracer.context(session=request.session):
            with tracer.span(
                "serve.launch", "serve",
                kernel=workload.kernel_name, seq=request.seq,
            ) if traced else NULL_SPAN:
                prepared = self._prepare(workload)
                try:
                    malleable = self._malleable_for(prepared, ndrange.work_dim)
                except TransformError as error:
                    raise ServeError(
                        f"kernel {workload.kernel_name!r} is not malleable: "
                        f"{error}") from error
                self._verify_admission(prepared, ndrange, request.args)

                load = self.ledger.snapshot()
                with tracer.span("serve.predict", "predict",
                                 kernel=workload.kernel_name) if traced else NULL_SPAN:
                    prediction, cache_hit, bucketed = self._predict(
                        prepared, ndrange, load)
                setting = prediction.config.setting
                adapted = False
                if not load.idle:
                    idle_prediction, _ = self.cache.get_or_compute(
                        (prepared.static.as_tuple(), ndrange.work_dim,
                         ndrange.total_work_items, ndrange.work_items_per_group,
                         (0, 0)),
                        lambda: self.predictor.select(
                            prepared.static, ndrange.work_dim,
                            ndrange.total_work_items,
                            ndrange.work_items_per_group,
                        ),
                    )
                    adapted = idle_prediction.config != prediction.config
                if traced:
                    tracer.instant(
                        "serve.admit", "serve",
                        kernel=workload.kernel_name, seq=request.seq,
                        cpu_load=bucketed.cpu_util, gpu_load=bucketed.gpu_util,
                        in_flight=load.in_flight,
                        cpu_threads=setting.cpu_threads,
                        gpu_fraction=setting.gpu_fraction,
                        cache_hit=cache_hit, adapted=adapted,
                    )

                lease = self.ledger.acquire(setting)
                try:
                    trace = None
                    if self.functional:
                        if setting.uses_gpu:
                            mod, alloc = throttle_settings(
                                self.platform.gpu.pes_per_cu,
                                setting.gpu_fraction)
                        else:
                            mod, alloc = 1, 1
                        with tracer.span(
                            "serve.execute", "schedule",
                            kernel=workload.kernel_name,
                            cpu_threads=setting.cpu_threads,
                            gpu_fraction=setting.gpu_fraction,
                        ) if traced else NULL_SPAN:
                            trace = run_dynamic(
                                prepared.info, malleable, request.args,
                                ndrange, setting,
                                dop_gpu_mod=mod, dop_gpu_alloc=alloc,
                                chunk_divisor=self.chunk_divisor,
                                backend=self.backend,
                            )
                    with tracer.span("serve.simulate", "sim",
                                     kernel=workload.kernel_name) if traced else NULL_SPAN:
                        scalars = {name: request.args[name]
                                   for name in prepared.info.scalar_params}
                        sim_key = (
                            workload.kernel_name, workload.source,
                            ndrange.total_work_items,
                            ndrange.work_items_per_group, ndrange.work_dim,
                            tuple(sorted(scalars.items())),
                            setting.cpu_threads, setting.gpu_fraction,
                        )
                        sim, _ = self.sim_cache.get_or_compute(
                            sim_key,
                            lambda: self._simulate(prepared, workload, ndrange,
                                                   scalars, setting),
                        )
                    slowdown = self._contention_slowdown(prediction, bucketed)
                    service_time = (sim.time_s * slowdown
                                    + prediction.inference_cost_s)
                    if self.dwell_scale > 0.0:
                        time.sleep(min(self.dwell_cap_s,
                                       service_time * self.dwell_scale))
                finally:
                    self.ledger.release(lease)

                latency = time.perf_counter() - request.submitted_at
                result = ServeResult(
                    kernel=workload.kernel_name,
                    session=request.session,
                    seq=request.seq,
                    prediction=prediction,
                    load=bucketed,
                    cache_hit=cache_hit,
                    trace=trace,
                    sim=sim,
                    service_time_s=service_time,
                    latency_s=latency,
                    args=request.args,
                )
                self.stats.record(result, adapted)
                if traced:
                    tracer.counter("serve.completed")
                    tracer.observe("serve.latency_s", latency)
                return result
