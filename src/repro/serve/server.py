"""The serving layer: admission queue, worker pool, client sessions.

``DopiaServer`` turns the single-client :class:`repro.core.DopiaRuntime`
launch path into a concurrent service.  N client sessions submit launches
into one admission queue; a pool of worker threads drains it.  For every
launch a worker

1. snapshots the :class:`~repro.serve.ledger.DeviceLoadLedger` and feeds
   the live (bucketed) ``CPU_util``/``GPU_util`` into
   :meth:`DopPredictor.select <repro.core.predictor.DopPredictor.select>`
   — through the LRU :class:`~repro.serve.cache.PredictionCache` — so the
   chosen DoP adapts to contention;
2. acquires a ledger lease for the chosen configuration;
3. executes the launch functionally (Algorithm 1 via
   :func:`repro.core.scheduler.run_dynamic`, mutating the client's real
   buffers) and/or on the performance model, charging a contention
   slowdown (:mod:`repro.sim.contention`) for capacity the launch shares
   with the background load it saw at admission;
4. releases the lease and resolves the client's :class:`LaunchHandle`.

Launches are not assumed independent: every submission is hazard-matched
against in-flight launches by the :class:`~repro.serve.graph.GraphScheduler`
(RAW/WAR/WAW on overlapping buffers, read/write sets from
:func:`repro.analysis.accessmodel.launch_rw_summary` or declared
intents).  Conflicting launches park until their predecessors complete —
workers never see a request whose inputs are still being written — and
independent ones flow straight to the pool.  ``LaunchHandle.then`` chains
a dependent launch without a client-side wait; ``submit_graph`` /
:class:`~repro.serve.graph.TaskSpace` submit whole named DAGs with cycle
rejection and a per-graph future.  Parked launches hold no ledger lease
and make no prediction, so the DoP predictor only ever sees the
executable *frontier* of the graph.

Locking discipline: every shared structure (ledger, cache, stats, kernel
preparation, graph) has its own short lock; **no lock is held across
kernel execution or model inference**, so independent launches proceed in
parallel.  Per-session identity — and the graph id, for graph members —
flows into the tracer via
:meth:`Tracer.context <repro.obs.tracer.Tracer.context>` so exported
spans reconstruct each client's timeline.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence, Union

from ..analysis.accessmodel import launch_rw_summary
from ..analysis.features import StaticFeatures, extract_static_features
from ..analysis.profile import profile_kernel
from ..core.predictor import DopPredictor, Prediction
from ..core.scheduler import ScheduleTrace, run_dynamic
from ..ml.base import Estimator

if TYPE_CHECKING:  # the online package imports serve.predstore — lazy below
    from ..ml.online import ObservationStore, OnlineConfig, OnlineLoop
from ..obs import tracer
from ..obs.tracer import NULL_SPAN
from ..sim.contention import config_slowdown
from ..sim.engine import ExecutionResult, simulate_execution
from ..sim.platforms import Platform
from ..transform.gpu_malleable import (
    MalleableKernel,
    TransformError,
    make_malleable,
    throttle_settings,
)
from ..workloads.registry import Workload
from .cache import PredictionCache
from .graph import (
    DependencyFailedError,
    GraphCycleError,
    GraphHandle,
    GraphScheduler,
    GraphTask,
    ServeError,
    TaskNode,
    TaskSpace,
    buffer_ranges,
    topological_order,
)
from .ledger import LOAD_BUCKETS, DeviceLoadLedger, LoadSnapshot

__all__ = [
    "ClientSession", "DependencyFailedError", "DopiaServer", "GraphCycleError",
    "GraphHandle", "GraphTask", "LaunchHandle", "ServeError", "ServeResult",
    "ServerStats", "TaskSpace",
]


@dataclass
class _PreparedKernel:
    """Per-(source, kernel) compile-time products, shared across launches."""

    workload_key: str
    info: Any
    static: StaticFeatures
    #: ``static.as_tuple()``, precomputed — it keys every prediction-cache
    #: lookup on the hot path
    static_tuple: tuple = ()
    malleable: dict[int, MalleableKernel] = field(default_factory=dict)
    #: access-model (reads, writes) name tuples, resolved lazily on first
    #: hazard-matched submission (None until then; a pair of tuples after)
    rw_names: Optional[tuple] = None


@dataclass
class _LaunchMeta:
    """Per-(workload, args) launch invariants, memoised across launches.

    A serving client re-launches the same workload instance with the same
    prepared argument dict hundreds of times; launch geometry, prediction
    cache keys, and the simulator's scalar signature are all functions of
    those two objects.  ``workload``/``args`` are strong references —
    validity is checked by object identity against them, so a recycled
    ``id()`` can never alias a dead entry.
    """

    workload: Workload
    args: dict
    prepared: _PreparedKernel
    ndrange: Any
    #: (static_tuple, work_dim, total_items, items_per_group) — the
    #: load-independent prefix of the prediction-cache key
    pred_key: tuple
    scalars: dict
    scalars_key: tuple


@dataclass
class ServeResult:
    """What one served launch produced."""

    kernel: str
    session: str
    seq: int
    prediction: Prediction
    load: LoadSnapshot            #: ledger occupancy seen at admission
    cache_hit: bool
    trace: Optional[ScheduleTrace]   #: functional schedule (None if sim-only)
    sim: Optional[ExecutionResult]
    #: modelled service time: simulated execution x contention slowdown
    #: + model-inference overhead (seconds)
    service_time_s: float
    #: measured wall-clock from submit to completion (seconds)
    latency_s: float
    args: dict[str, Any]
    #: graph this launch belonged to (``submit_graph``), if any
    graph_id: Optional[str] = None
    #: dependency edges (implicit hazards + explicit) it was admitted with
    deps: int = 0


class LaunchHandle:
    """Future-style handle for one submitted launch.

    ``then`` submits a follow-up launch explicitly ordered after this
    one *without waiting for it* — the whole chain sits in the server's
    graph and pipelines worker-to-worker with no client round-trips.
    """

    #: guards lazy construction of the per-handle wait event; shared by
    #: every handle (critical sections are a few instructions, and the
    #: alternative — an Event per handle up front — costs ~10us on the
    #: submit hot path that most handles never use)
    _wait_lock = threading.Lock()

    def __init__(self, session: str, seq: int):
        self.session = session
        self.seq = seq
        self.node: Optional[TaskNode] = None
        self._client: Optional["ClientSession"] = None
        self._settled = False
        self._event: Optional[threading.Event] = None
        self._result: Optional[ServeResult] = None
        self._error: Optional[BaseException] = None
        self._callbacks: list = []

    def done(self) -> bool:
        return self._settled

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` once the handle settles (now, if it already has).

        Each callback fires exactly once, on whichever thread settles the
        handle (or the caller's, if already settled); exceptions are
        swallowed so a bad callback cannot take down a worker.  The
        sharded router uses this to pipeline completion notifications
        without a blocking ``result()`` per launch.
        """
        self._callbacks.append(fn)
        if self._settled:
            self._run_callbacks()

    def _run_callbacks(self) -> None:
        while self._callbacks:
            try:
                fn = self._callbacks.pop()
            except IndexError:  # lost the race to another settler
                break
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - callbacks must not kill workers
                pass

    def then(
        self,
        workload: Workload,
        args: Optional[dict[str, Any]] = None,
        *,
        rng_seed: int = 0,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
    ) -> "LaunchHandle":
        """Chain a dependent launch (returns immediately, like ``launch``)."""
        if self._client is None:
            raise ServeError("handle is not bound to a session")
        return self._client.launch(
            workload, args, rng_seed=rng_seed, after=(self,),
            reads=reads, writes=writes,
        )

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        if not self._settled and not self._wait(timeout):
            raise TimeoutError(
                f"launch {self.session}#{self.seq} not complete after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _wait(self, timeout: Optional[float]) -> bool:
        with LaunchHandle._wait_lock:
            if self._settled:
                return True
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        return event.wait(timeout)

    def _mark_settled(self) -> None:
        with LaunchHandle._wait_lock:
            self._settled = True
            event = self._event
        if event is not None:
            event.set()

    def _resolve(self, result: ServeResult) -> None:
        self._result = result
        self._mark_settled()
        self._run_callbacks()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._mark_settled()
        self._run_callbacks()


@dataclass
class _Request:
    session: str
    seq: int
    workload: Workload
    args: dict[str, Any]
    handle: LaunchHandle
    submitted_at: float
    node: Optional[TaskNode] = None


_STOP = object()


@dataclass
class ServerStats:
    """Aggregate serving counters (lock-protected; read via snapshot)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: subset of ``failed`` that never ran: a dependency failed first
    dep_failed: int = 0
    #: per-launch wall latencies, seconds (bounded; newest kept)
    latencies_s: list[float] = field(default_factory=list)
    #: launches that saw a non-idle ledger at admission
    loaded_predictions: int = 0
    #: launches whose chosen config differed from the idle-load choice
    adapted_predictions: int = 0
    max_latency_samples: int = 65536
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def record(self, result: ServeResult, adapted: bool) -> None:
        with self._lock:
            self.completed += 1
            if len(self.latencies_s) >= self.max_latency_samples:
                self.latencies_s.pop(0)
            self.latencies_s.append(result.latency_s)
            if not result.load.idle:
                self.loaded_predictions += 1
                if adapted:
                    self.adapted_predictions += 1

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_dep_failure(self) -> None:
        with self._lock:
            self.failed += 1
            self.dep_failed += 1

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1


class ClientSession:
    """One client's ordered view of the server (thread-compatible handle).

    Sessions are cheap; every concurrent client should own one.  ``launch``
    is non-blocking: it returns a :class:`LaunchHandle` immediately and the
    admission queue decouples submission from execution.
    """

    def __init__(self, server: "DopiaServer", name: str):
        self.server = server
        self.name = name
        self._seq = itertools.count()

    def launch(
        self,
        workload: Workload,
        args: Optional[dict[str, Any]] = None,
        rng_seed: int = 0,
        *,
        after: Sequence[LaunchHandle] = (),
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
    ) -> LaunchHandle:
        """Submit one kernel launch; buffers in ``args`` are mutated in place.

        Without ``args`` the workload's own buffer builder materialises a
        fresh argument set from ``rng_seed``.  Buffer hazards against
        in-flight launches are detected automatically; ``after`` adds
        explicit ordering on earlier handles, and ``reads``/``writes``
        override the access-model-derived read/write buffer sets (each
        side independently) for kernels whose true footprint the static
        analysis over-approximates.
        """
        if args is None:
            args = workload.full_args(rng_seed)
        return self.server._submit(self, workload, args, after=after,
                                   reads=reads, writes=writes)


class DopiaServer:
    """Thread-safe multi-client serving front-end over one platform + model.

    Parameters
    ----------
    platform, model:
        As for :class:`repro.core.DopiaRuntime`.
    workers:
        Worker-thread pool size (concurrent launches in service).
    backend:
        Interpreter backend for functional execution (``auto``/``jit``/
        ``vector``/``scalar``; ``None`` defers to ``DOPIA_BACKEND``).
        The jit tier's program cache is keyed per prepared
        :class:`KernelInfo`, so repeat launches of one workload compile
        once per distinct launch shape and amortize across clients.
    functional:
        When ``False``, launches are simulated for timing only (benchmark
        mode) — no buffers are touched.
    simulate:
        When ``False``, the performance-model step is skipped entirely
        (``ServeResult.sim`` is ``None`` and the lease dwell, if enabled,
        is the flat ``dwell_cap_s``).  Used by the chained benchmark,
        where execution is functional and the modelled service time
        would only add GIL-bound noise to the measurement.
    load_aware:
        When ``False``, every launch is configured with its *idle*
        prediction — the ledger still tracks occupancy, but the selected
        DoP ignores it.  This is the ablation baseline for the paper's
        online-adaptation claim, and the chained benchmark runs with it
        off so both scheduling modes execute identical per-launch work
        (load-adapted configurations differ between modes and would
        confound the graph-vs-sync comparison).
    cache_size:
        LRU capacity of the prediction cache.
    dwell_scale / dwell_cap_s:
        When ``dwell_scale > 0`` a worker *holds its ledger lease* for
        ``min(dwell_cap_s, service_time_s * dwell_scale)`` wall seconds,
        emulating device occupancy for the simulated platform — this is
        what makes background load visible to concurrent enqueues in
        benchmark mode, where functional execution (whose real runtime
        otherwise plays that role) is off.
    online:
        Enable the retraining loop (:mod:`repro.ml.online`): every served
        launch with a modelled time is ingested as an observation, and
        :meth:`retrain_now` (or the background thread, see
        ``retrain_interval_s``) runs drift detection → refit →
        shadow-scored promotion.  A promotion atomically swaps the live
        predictor's model and invalidates the superseded generation of
        the prediction cache; the simulation cache is untouched (it is
        model-independent).
    retrain_interval_s:
        With ``online`` on and a positive interval, a daemon thread calls
        :meth:`retrain_now` every this many seconds until :meth:`close`.
        Zero (the default) leaves retraining fully manual.
    online_prior:
        Optional ``(X, y)`` arrays of the incumbent's training set — the
        refit prior.  Without it candidates are fit on observations
        alone, which is safe (the shadow gate still refuses bad
        candidates) but forgets everything production traffic has not
        recently exercised.
    online_config / observation_store:
        Override the loop's thresholds or supply a persistent
        (cross-process) observation store; defaults are in-memory with
        :class:`repro.ml.online.OnlineConfig` defaults.
    """

    def __init__(
        self,
        platform: Platform,
        model: Estimator,
        *,
        workers: int = 4,
        backend: str | None = None,
        chunk_divisor: int = 10,
        functional: bool = True,
        simulate: bool = True,
        load_aware: bool = True,
        cache_size: int = 1024,
        load_buckets: int = LOAD_BUCKETS,
        dwell_scale: float = 0.0,
        dwell_cap_s: float = 0.050,
        queue_capacity: int = 0,
        online: bool = False,
        retrain_interval_s: float = 0.0,
        online_prior: Optional[tuple] = None,
        online_config: Optional[OnlineConfig] = None,
        observation_store: Optional[ObservationStore] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.platform = platform
        self.predictor = DopPredictor(model, platform)
        self.backend = backend
        self.chunk_divisor = chunk_divisor
        self.functional = functional
        self.simulate = simulate
        self.load_aware = load_aware
        self.load_buckets = load_buckets
        self.dwell_scale = dwell_scale
        self.dwell_cap_s = dwell_cap_s
        self.ledger = DeviceLoadLedger(platform)
        self.cache = PredictionCache(cache_size)
        #: memoised performance-model results: simulation is a deterministic
        #: function of (kernel, geometry, scalar args, setting), and served
        #: launches repeat, so the hot path pays the event-driven model once
        self.sim_cache = PredictionCache(cache_size)
        self.stats = ServerStats()
        self.graph = GraphScheduler()
        self._graph_ids = itertools.count()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._prepared: dict[tuple[str, str], _PreparedKernel] = {}
        #: (id(workload), id(args)) -> _LaunchMeta; entries pin both
        #: objects, and identity is re-checked on every hit
        self._meta: dict[tuple[int, int], _LaunchMeta] = {}
        self._prepare_lock = threading.Lock()
        self._session_lock = threading.Lock()
        self._session_names: set[str] = set()
        self._closed = False
        self.online: Optional[OnlineLoop] = None
        self._retrain_stop: Optional[threading.Event] = None
        self._retrain_thread: Optional[threading.Thread] = None
        self._retrain_lock = threading.Lock()
        #: flush the observation window to disk on close — only when the
        #: caller provided a store (and thus chose where it persists)
        self._online_persist = observation_store is not None
        if online:
            import numpy as np

            from ..ml.online import OnlineLoop

            prior_X, prior_y = (online_prior if online_prior is not None
                                else (np.empty((0, 11)), np.empty((0,))))
            self.online = OnlineLoop(
                model=model,
                configs_utils=self.predictor._utils,
                base_X=prior_X,
                base_y=prior_y,
                config=online_config,
                store=observation_store,
                prober=self._online_probe,
            )
            #: launch-shape registry the prober resolves observations
            #: against: group_key -> (prepared, workload, ndrange, scalars)
            self._online_shapes: dict[tuple, tuple] = {}
            if retrain_interval_s > 0.0:
                self._retrain_stop = threading.Event()
                self._retrain_thread = threading.Thread(
                    target=self._retrain_loop,
                    args=(retrain_interval_s,),
                    name="dopia-retrain", daemon=True)
                self._retrain_thread.start()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"dopia-serve-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def from_runtime(cls, runtime, **kwargs) -> "DopiaServer":
        """Build a server sharing a :class:`DopiaRuntime`'s platform/model."""
        kwargs.setdefault("backend", runtime.backend)
        kwargs.setdefault("chunk_divisor", runtime.chunk_divisor)
        return cls(runtime.platform, runtime.predictor.model, **kwargs)

    def __enter__(self) -> "DopiaServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 30.0) -> None:
        """Drain the graph and queue, stop the workers, reject new work.

        If the drain times out, every launch that has not started is
        *failed* — queued requests and parked graph nodes alike, with
        poisoning cascaded to their output-dependents — so no handle is
        ever left unresolved for a client to hang on.
        """
        if self._closed:
            return
        self._closed = True
        if self._retrain_stop is not None:
            self._retrain_stop.set()
            self._retrain_thread.join(timeout)
        if self.online is not None and self._online_persist:
            # publish this session's observations so a later ``dopia
            # retrain`` (or another server) can learn from them
            self.online.store.flush()
        # Let in-flight graphs settle first: a _STOP racing ahead of a
        # parked launch's dispatch would strand its handle forever.
        if not self.graph.wait_idle(timeout):
            self._abandon_pending()
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)
        self._meta.clear()

    def _abandon_pending(self) -> None:
        """Fail every not-yet-started launch (shutdown drain timed out).

        Launches already running stay with their workers — the join in
        :meth:`close` waits for them; everything still queued or parked
        settles with a :class:`ServeError` and poisons its dependents.
        """
        error = ServeError("server closed before launch could run")
        # Pull queued-but-unstarted requests out so no worker races us
        # into note_start while we fail their nodes.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            request: _Request = item
            self.stats.record_failure()
            if request.node is not None:
                self._settle_failure(request.node, error)
            request.handle._fail(error)
        # Parked nodes never reached the queue; fail them with the same
        # cascade.  Re-snapshot each round — poisoning removes dependents
        # from the live set, and WAR-released nodes go to the still-live
        # workers as usual.
        while True:
            parked = [node for node in self.graph.live_nodes(state="waiting")
                      if node.request is not None]
            if not parked:
                break
            for node in parked:
                if node.state != "waiting":
                    continue  # settled by an earlier node's cascade
                self.ledger.note_waiting(-1)
                self.stats.record_failure()
                self._settle_failure(node, error)
                node.request.handle._fail(error)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted launch has settled (done or failed)."""
        return self.graph.wait_idle(timeout)

    # -- client surface -------------------------------------------------------

    def session(self, name: Optional[str] = None) -> ClientSession:
        """Open a client session with a unique name."""
        with self._session_lock:
            if name is None:
                name = f"client-{len(self._session_names)}"
            if name in self._session_names:
                raise ValueError(f"session name {name!r} already in use")
            self._session_names.add(name)
        return ClientSession(self, name)

    def _submit(self, session: ClientSession, workload: Workload,
                args: dict[str, Any], *,
                after: Sequence[LaunchHandle] = (),
                reads: Optional[Iterable[str]] = None,
                writes: Optional[Iterable[str]] = None,
                graph_id: Optional[str] = None,
                key: Any = None) -> LaunchHandle:
        if self._closed:
            raise ServeError("server is closed")
        seq = next(session._seq)
        handle = LaunchHandle(session.name, seq)
        handle._client = session
        read_names, write_names = self._rw_sets(workload, args, reads, writes)
        node = self.graph.make_node(
            f"{session.name}#{seq} {workload.kernel_name}",
            buffer_ranges(args, read_names),
            buffer_ranges(args, write_names),
            graph_id=graph_id, key=key,
        )
        handle.node = node
        request = _Request(
            session=session.name, seq=seq, workload=workload, args=args,
            handle=handle, submitted_at=time.perf_counter(), node=node,
        )
        node.request = request
        explicit = [h.node for h in after if h.node is not None]
        self.stats.record_submit()
        if tracer.enabled:
            tracer.instant("serve.submit", "serve", session=session.name,
                           seq=seq, kernel=workload.kernel_name,
                           **({"graph": graph_id} if graph_id else {}))
            tracer.counter("serve.submitted")
        state = self.graph.admit(node, explicit)
        if state == "ready":
            self._queue.put(request)
        elif state == "waiting":
            # Parked: no lease, no prediction — the predictor will see
            # only the frontier this launch joins when it becomes ready.
            self.ledger.note_waiting(1)
            if tracer.enabled:
                tracer.instant("serve.park", "serve", session=session.name,
                               seq=seq, kernel=workload.kernel_name,
                               deps=node.deps)
        else:  # poisoned at admission: an explicit dependency already failed
            self.stats.record_dep_failure()
            handle._fail(node.error)
        return handle

    def _rw_sets(self, workload: Workload, args: dict[str, Any],
                 reads: Optional[Iterable[str]],
                 writes: Optional[Iterable[str]]) -> tuple[tuple, tuple]:
        """Buffer names this launch reads/writes, for hazard matching.

        Declared intents win per side; otherwise the access-model summary.
        If analysis itself fails here (client thread), fall back to every
        array argument in both sets — over-ordering is safe, and the
        worker's own ``_prepare`` will surface the real error on the
        handle as before.
        """
        if reads is None or writes is None:
            prepared = None
            try:
                prepared = self._prepare(workload)
                if prepared.rw_names is None:
                    summary = launch_rw_summary(prepared.info)
                    prepared.rw_names = (tuple(sorted(summary.reads)),
                                         tuple(sorted(summary.writes)))
            except Exception:  # noqa: BLE001 - conservative fallback
                arrays = tuple(
                    name for name, value in args.items()
                    if hasattr(value, "__array_interface__"))
                return (arrays if reads is None else tuple(reads),
                        arrays if writes is None else tuple(writes))
            model_reads, model_writes = prepared.rw_names
        else:
            model_reads = model_writes = ()
        read_names = tuple(reads) if reads is not None else model_reads
        write_names = tuple(writes) if writes is not None else model_writes
        return read_names, write_names

    def submit_graph(
        self,
        session: ClientSession,
        tasks: Union[TaskSpace, Iterable[GraphTask]],
        name: Optional[str] = None,
    ) -> GraphHandle:
        """Submit a whole named task graph in one shot.

        Validates keys and rejects cycles (:class:`GraphCycleError`)
        *before* submitting anything, then submits in topological order —
        explicit ``deps`` edges plus any buffer hazards the scheduler
        detects on its own.  Returns a :class:`GraphHandle`; index it by
        task key for per-task handles or call ``result()`` for the whole
        graph.
        """
        if isinstance(tasks, TaskSpace):
            if name is None:
                name = tasks.name
            task_list = tasks.tasks()
        else:
            task_list = list(tasks)
        order = topological_order(task_list)
        graph_id = f"{name or 'graph'}-{next(self._graph_ids)}"
        by_key: dict[Any, LaunchHandle] = {}
        for task in order:
            args = (task.args if task.args is not None
                    else task.workload.full_args(task.rng_seed))
            by_key[task.key] = self._submit(
                session, task.workload, args,
                after=tuple(by_key[dep] for dep in task.deps),
                graph_id=graph_id, key=task.key,
            )
        return GraphHandle(graph_id,
                           {task.key: by_key[task.key] for task in task_list})

    def submit_chain(self, session: ClientSession, chain) -> GraphHandle:
        """Submit a :class:`repro.workloads.chains.KernelChain` as one graph."""
        tasks = [
            GraphTask(key=task.key, workload=task.workload, args=task.args,
                      deps=tuple(task.deps))
            for task in chain.tasks
        ]
        return self.submit_graph(session, tasks, name=chain.name)

    # -- kernel preparation ----------------------------------------------------

    def _prepare(self, workload: Workload) -> _PreparedKernel:
        """Analyse + transform once per distinct (source, kernel name)."""
        key = (workload.source, workload.kernel_name)
        prepared = self._prepared.get(key)
        if prepared is None:
            with self._prepare_lock:
                prepared = self._prepared.get(key)
                if prepared is None:
                    info = workload.kernel_info()
                    static = extract_static_features(info)
                    prepared = _PreparedKernel(
                        workload_key=workload.key,
                        info=info,
                        static=static,
                        static_tuple=static.as_tuple(),
                    )
                    self._prepared[key] = prepared
        return prepared

    def _launch_meta(self, workload: Workload,
                     args: dict[str, Any]) -> _LaunchMeta:
        """Memoised launch invariants for one (workload, args) pair."""
        key = (id(workload), id(args))
        meta = self._meta.get(key)
        if meta is not None and meta.workload is workload \
                and meta.args is args:
            return meta
        prepared = self._prepare(workload)
        ndrange = workload.ndrange()
        scalars = {name: args[name] for name in prepared.info.scalar_params}
        meta = _LaunchMeta(
            workload=workload, args=args, prepared=prepared, ndrange=ndrange,
            pred_key=(prepared.static_tuple, ndrange.work_dim,
                      ndrange.total_work_items, ndrange.work_items_per_group),
            scalars=scalars,
            scalars_key=tuple(sorted(scalars.items())),
        )
        if len(self._meta) >= 4096:
            self._meta.clear()
        self._meta[key] = meta
        return meta

    def _malleable_for(self, prepared: _PreparedKernel,
                       work_dim: int) -> MalleableKernel:
        if work_dim not in prepared.malleable:
            with self._prepare_lock:
                if work_dim not in prepared.malleable:
                    prepared.malleable[work_dim] = make_malleable(
                        prepared.info, work_dim=work_dim)
        return prepared.malleable[work_dim]

    @staticmethod
    def _verify_admission(prepared: _PreparedKernel, ndrange,
                          args: dict[str, Any]) -> None:
        """Static verification at admission, gated on ``DOPIA_VERIFY``.

        With ``warn`` the report goes to stderr; with ``raise`` a
        :class:`repro.analysis.verify.VerifyError` fails the launch handle
        before any buffer is touched.  Reports are cached per (kernel,
        launch shape), so repeat launches of one workload pay once."""
        # Cheap env gate before importing the verifier machinery: "off"
        # (the default) is the serving hot path.
        if os.environ.get("DOPIA_VERIFY", "off").strip().lower() \
                in ("", "off"):
            return
        from ..analysis.verify import (
            LaunchSpec,
            apply_policy,
            current_policy,
            verify_launch_cached,
        )

        policy = current_policy()
        if policy == "off":
            return
        spec = LaunchSpec.from_args(ndrange, args)
        apply_policy(verify_launch_cached(prepared.info, spec), policy)

    def admission_report(self, workload: Workload,
                         args: Optional[dict[str, Any]] = None) -> dict:
        """The admission legality report for one workload's launch.

        Returns the ``dopia lint --json`` document shape (schema version,
        one report with per-pass verdicts and diagnostics) for the exact
        launch the admission gate verifies, so multi-client callers can
        query *why* a handle was refused under ``DOPIA_VERIFY=raise`` —
        e.g. the RACE001 diagnostic with its witness work-items — without
        re-submitting or parsing a traceback.  ``args`` defaults to the
        workload's own deterministic argument binding (the shapes are
        what matter; verification never reads buffer contents).

        Unlike launching, this endpoint always runs the verifier — it is
        a diagnostic query, independent of the ``DOPIA_VERIFY`` policy.
        """
        import json

        import numpy as np

        from ..analysis.diagnostics import report_to_json
        from ..analysis.verify import LaunchSpec, verify_launch_cached

        prepared = self._prepare(workload)
        ndrange = workload.ndrange()
        if args is None:
            args = workload.full_args(np.random.default_rng(0))
        report = verify_launch_cached(
            prepared.info, LaunchSpec.from_args(ndrange, args))
        return json.loads(report_to_json([report]))

    # -- prediction -----------------------------------------------------------

    def _predict(self, meta: _LaunchMeta,
                 load: LoadSnapshot) -> tuple[Prediction, bool, LoadSnapshot]:
        """Load-aware DoP selection through the LRU cache.

        Predictions use the *bucketed* load, so a cache entry is exact for
        every snapshot in its bucket.  With ``load_aware`` off the load
        is zeroed before bucketing, so every launch lands in the idle
        bucket and gets the idle configuration.
        """
        if not self.load_aware:
            load = LoadSnapshot(cpu_util=0.0, gpu_util=0.0,
                                in_flight=load.in_flight,
                                waiting=load.waiting)
        bucketed = load.bucketed(self.load_buckets)
        ndrange = meta.ndrange
        prepared = meta.prepared
        prediction, hit = self.cache.get_or_compute(
            meta.pred_key + (load.bucket(self.load_buckets),),
            lambda: self.predictor.select(
                prepared.static,
                ndrange.work_dim,
                ndrange.total_work_items,
                ndrange.work_items_per_group,
                cpu_load=bucketed.cpu_util,
                gpu_load=bucketed.gpu_util,
            ),
        )
        return prediction, hit, bucketed

    def _simulate(self, prepared: _PreparedKernel, workload: Workload,
                  ndrange, scalars: dict[str, Any], setting) -> ExecutionResult:
        profile = profile_kernel(
            prepared.info, scalars,
            ndrange.total_work_items,
            ndrange.work_items_per_group,
            work_dim=ndrange.work_dim,
            irregular_trip_hint=workload.irregular_trip_hint,
        )
        return simulate_execution(
            profile, self.platform, setting,
            scheduler="dynamic",
            chunk_divisor=self.chunk_divisor,
            run_key=(workload.kernel_name, "serve"),
        )

    # -- contention model -------------------------------------------------------

    def _contention_slowdown(self, prediction: Prediction,
                             load: LoadSnapshot) -> float:
        """Modelled slowdown from sharing device capacity with the
        background load seen at admission.

        Per device, this launch offers its configuration's normalised
        utilisation as demand against capacity 1.0, alongside the in-flight
        demand; :func:`repro.sim.contention.config_slowdown` (with the
        platform's arbitration fairness) grants each side a share, and the
        slowdown is demand over grant.  With free capacity the grant equals
        the demand and the slowdown is exactly 1.0 — a lone client is never
        charged.
        """
        config = prediction.config
        return config_slowdown(
            config.cpu_util, config.gpu_util,
            load.cpu_util, load.gpu_util,
            fairness=self.platform.arbitration_fairness,
        )

    # -- online retraining ------------------------------------------------------

    def _online_ingest(self, meta: _LaunchMeta, result: ServeResult,
                       slowdown: float) -> None:
        """Feed one completed launch into the observation store.

        Only launches with a modelled time carry a training signal; the
        observed time is the simulated execution under the chosen
        configuration times the contention slowdown the launch was
        charged — exactly the quantity a better configuration would have
        improved.
        """
        loop = self.online
        if loop is None or result.sim is None:
            return
        prepared = meta.prepared
        ndrange = meta.ndrange
        group_key = (prepared.static_tuple, ndrange.work_dim,
                     ndrange.total_work_items, ndrange.work_items_per_group)
        self._online_shapes.setdefault(
            group_key, (prepared, meta.workload, ndrange, meta.scalars))
        config = result.prediction.config
        loop.ingest(
            kernel=result.kernel,
            static=prepared.static_tuple,
            work_dim=ndrange.work_dim,
            global_size=ndrange.total_work_items,
            local_size=ndrange.work_items_per_group,
            cpu_load=result.load.cpu_util,
            gpu_load=result.load.gpu_util,
            cpu_util=config.cpu_util,
            gpu_util=config.gpu_util,
            time_s=result.sim.time_s * slowdown,
            source="serve",
        )

    def _online_probe(self, obs, index: int) -> Optional[float]:
        """Counterfactual time for ``obs``'s launch at another config.

        Resolves the observation's launch shape to the prepared kernel it
        came from, simulates that configuration (through the memoised
        simulation cache — the probe sweep for one cell is 44 entries,
        shared with the serving path), and charges the same contention
        slowdown the cell's background load implies.
        """
        shape = self._online_shapes.get(obs.group_key)
        if shape is None:
            return None
        prepared, workload, ndrange, scalars = shape
        config = self.predictor.configs[index]
        sim_key = (
            workload.kernel_name, workload.source,
            ndrange.total_work_items, ndrange.work_items_per_group,
            ndrange.work_dim, tuple(sorted(scalars.items())),
            config.setting.cpu_threads, config.setting.gpu_fraction,
        )
        sim, _ = self.sim_cache.get_or_compute(
            sim_key,
            lambda: self._simulate(prepared, workload, ndrange, scalars,
                                   config.setting),
        )
        return sim.time_s * config_slowdown(
            config.cpu_util, config.gpu_util,
            obs.cpu_load, obs.gpu_load,
            fairness=self.platform.arbitration_fairness,
        )

    def retrain_now(self):
        """Run one retraining step; promote the candidate if it wins.

        Returns the :class:`repro.ml.online.Decision` (``None`` when the
        server is not online).  Serialised: the background thread and
        manual callers never race a promotion.
        """
        loop = self.online
        if loop is None:
            return None
        with self._retrain_lock:
            decision = loop.step()
            if decision.promoted:
                self._promote(loop.model)
        return decision

    def _promote(self, model: Estimator) -> None:
        """Swap the serving model and drop the superseded generation.

        The swap is a single attribute assignment (predictions in flight
        finish on whichever model they started with), after which every
        cache entry the old model computed is invalidated; entries the
        new model writes from here on are tagged with the new generation
        and survive.  The simulation cache is model-independent and kept.
        """
        self.predictor.model = model
        stale = self.cache.advance_generation()
        self.cache.clear(stale)
        if tracer.enabled:
            tracer.instant("serve.promote", "online",
                           generation=self.cache.generation,
                           invalidated=self.cache.invalidations)

    def _retrain_loop(self, interval_s: float) -> None:
        while not self._retrain_stop.wait(interval_s):
            try:
                self.retrain_now()
            except Exception:  # noqa: BLE001 - keep the daemon alive
                if tracer.enabled:
                    tracer.counter("online.retrain_errors")

    # -- worker ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request: _Request = item
            node = request.node
            if node is not None:
                self.graph.note_start(node)
            try:
                result = self._serve(request)
            except BaseException as error:  # noqa: BLE001 - delivered to client
                self.stats.record_failure()
                if node is not None:
                    self._settle_failure(node, error)
                request.handle._fail(error)
            else:
                # Graph settles before the handle resolves: a client that
                # waits on result() then resubmits can never observe its
                # completed predecessor as still live.
                if node is not None:
                    for ready in self.graph.complete(node):
                        self._dispatch(ready)
                request.handle._resolve(result)

    def _dispatch(self, node: TaskNode) -> None:
        """A parked launch's last dependency completed: queue it."""
        self.ledger.note_waiting(-1)
        if tracer.enabled:
            tracer.instant("serve.unpark", "serve",
                           session=node.request.session,
                           seq=node.request.seq,
                           kernel=node.request.workload.kernel_name)
        self._queue.put(node.request)

    def _settle_failure(self, node: TaskNode, error: BaseException) -> None:
        """Propagate a launch failure through the graph.

        Output-dependents (RAW/WAW/explicit edges, transitively) fail
        with :class:`DependencyFailedError` without ever running; pure
        WAR dependents — which only waited to avoid clobbering the failed
        launch's input — are released to run.
        """
        ready, poisoned = self.graph.fail(node, error)
        for runnable in ready:
            self._dispatch(runnable)
        for victim in poisoned:
            self.ledger.note_waiting(-1)
            self.stats.record_dep_failure()
            if tracer.enabled:
                tracer.instant("serve.dep_failed", "serve",
                               session=victim.request.session,
                               seq=victim.request.seq,
                               kernel=victim.request.workload.kernel_name)
            victim.request.handle._fail(victim.error)

    def _serve(self, request: _Request) -> ServeResult:
        workload = request.workload
        meta = self._launch_meta(workload, request.args)
        prepared = meta.prepared
        ndrange = meta.ndrange
        traced = tracer.enabled
        node = request.node
        graph_kv = ({"graph": node.graph_id}
                    if node is not None and node.graph_id else {})
        with (tracer.context(session=request.session, **graph_kv)
              if traced else NULL_SPAN):
            with tracer.span(
                "serve.launch", "serve",
                kernel=workload.kernel_name, seq=request.seq,
                deps=node.deps if node is not None else 0, **graph_kv,
            ) if traced else NULL_SPAN:
                try:
                    malleable = self._malleable_for(prepared, ndrange.work_dim)
                except TransformError as error:
                    raise ServeError(
                        f"kernel {workload.kernel_name!r} is not malleable: "
                        f"{error}") from error
                self._verify_admission(prepared, ndrange, request.args)

                load = self.ledger.snapshot()
                with tracer.span("serve.predict", "predict",
                                 kernel=workload.kernel_name) if traced else NULL_SPAN:
                    prediction, cache_hit, bucketed = self._predict(
                        meta, load)
                setting = prediction.config.setting
                adapted = False
                if not load.idle:
                    idle_prediction, _ = self.cache.get_or_compute(
                        meta.pred_key + ((0, 0),),
                        lambda: self.predictor.select(
                            prepared.static, ndrange.work_dim,
                            ndrange.total_work_items,
                            ndrange.work_items_per_group,
                        ),
                    )
                    adapted = idle_prediction.config != prediction.config
                if traced:
                    tracer.instant(
                        "serve.admit", "serve",
                        kernel=workload.kernel_name, seq=request.seq,
                        cpu_load=bucketed.cpu_util, gpu_load=bucketed.gpu_util,
                        in_flight=load.in_flight,
                        cpu_threads=setting.cpu_threads,
                        gpu_fraction=setting.gpu_fraction,
                        cache_hit=cache_hit, adapted=adapted,
                    )

                lease = self.ledger.acquire(setting)
                try:
                    trace = None
                    if self.functional:
                        if setting.uses_gpu:
                            mod, alloc = throttle_settings(
                                self.platform.gpu.pes_per_cu,
                                setting.gpu_fraction)
                        else:
                            mod, alloc = 1, 1
                        with tracer.span(
                            "serve.execute", "schedule",
                            kernel=workload.kernel_name,
                            cpu_threads=setting.cpu_threads,
                            gpu_fraction=setting.gpu_fraction,
                        ) if traced else NULL_SPAN:
                            trace = run_dynamic(
                                prepared.info, malleable, request.args,
                                ndrange, setting,
                                dop_gpu_mod=mod, dop_gpu_alloc=alloc,
                                chunk_divisor=self.chunk_divisor,
                                backend=self.backend,
                            )
                    sim = None
                    if self.simulate:
                        with tracer.span("serve.simulate", "sim",
                                         kernel=workload.kernel_name) if traced else NULL_SPAN:
                            sim_key = (
                                workload.kernel_name, workload.source,
                                ndrange.total_work_items,
                                ndrange.work_items_per_group, ndrange.work_dim,
                                meta.scalars_key,
                                setting.cpu_threads, setting.gpu_fraction,
                            )
                            sim, _ = self.sim_cache.get_or_compute(
                                sim_key,
                                lambda: self._simulate(prepared, workload,
                                                       ndrange, meta.scalars,
                                                       setting),
                            )
                    slowdown = self._contention_slowdown(prediction, bucketed)
                    service_time = ((sim.time_s * slowdown) if sim is not None
                                    else 0.0) + prediction.inference_cost_s
                    if self.dwell_scale > 0.0:
                        time.sleep(self.dwell_cap_s if sim is None else
                                   min(self.dwell_cap_s,
                                       service_time * self.dwell_scale))
                finally:
                    self.ledger.release(lease)

                latency = time.perf_counter() - request.submitted_at
                result = ServeResult(
                    kernel=workload.kernel_name,
                    session=request.session,
                    seq=request.seq,
                    prediction=prediction,
                    load=bucketed,
                    cache_hit=cache_hit,
                    trace=trace,
                    sim=sim,
                    service_time_s=service_time,
                    latency_s=latency,
                    args=request.args,
                    graph_id=node.graph_id if node is not None else None,
                    deps=node.deps if node is not None else 0,
                )
                self.stats.record(result, adapted)
                if self.online is not None:
                    self._online_ingest(meta, result, slowdown)
                if traced:
                    tracer.counter("serve.completed")
                    tracer.observe("serve.latency_s", latency)
                return result
