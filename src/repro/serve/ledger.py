"""Device-load ledger: who holds the integrated processor right now.

On an integrated CPU/GPU both devices are shared by every in-flight
launch.  The ledger is the serving layer's single source of truth for
*current* occupancy: each admitted launch acquires a :class:`Lease` for
the CPU threads and the GPU-PE fraction its chosen configuration uses,
and releases it on completion.  Snapshots of the normalised occupancy
feed the predictor's ``CPU_util``/``GPU_util`` features (Table 1) so the
next enqueue sees the machine as it actually is.

The ledger never blocks and never rejects: admission control is the
predictor's feasibility mask (infeasible configurations are not chosen
while capacity remains), and when the device is saturated a launch may
oversubscribe — the contention model charges it for that instead of the
queue deadlocking.  Occupancy is therefore tracked un-capped internally
and capped at 1.0 only in snapshots.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from ..sim.engine import DopSetting
from ..sim.platforms import Platform

#: Load-bucket resolution: occupancy is quantised to eighths, matching the
#: GPU levels of the Table-3 configuration grid, so the prediction cache
#: key space stays small (9 x 9 load buckets) without losing the
#: distinctions the model can act on.
LOAD_BUCKETS = 8


@dataclass(frozen=True)
class LoadSnapshot:
    """Normalised occupancy of both devices at one instant."""

    cpu_util: float          #: in-flight CPU threads / hardware threads, capped at 1
    gpu_util: float          #: sum of in-flight GPU-PE fractions, capped at 1
    in_flight: int           #: number of live leases
    #: launches parked behind graph dependencies (no lease held); not part
    #: of the prediction cache key — parked work consumes no capacity
    waiting: int = 0

    @property
    def idle(self) -> bool:
        return self.in_flight == 0

    def bucket(self, buckets: int = LOAD_BUCKETS) -> tuple[int, int]:
        """Quantised (cpu, gpu) bucket pair for cache keying."""
        return (round(self.cpu_util * buckets), round(self.gpu_util * buckets))

    def bucketed(self, buckets: int = LOAD_BUCKETS) -> "LoadSnapshot":
        """The snapshot rounded to its bucket's representative loads.

        Predictions are made from the *bucketed* loads so a cached entry is
        exactly reusable for every snapshot in the same bucket.
        """
        cpu_b, gpu_b = self.bucket(buckets)
        return LoadSnapshot(cpu_util=cpu_b / buckets, gpu_util=gpu_b / buckets,
                            in_flight=self.in_flight, waiting=self.waiting)


@dataclass(frozen=True)
class Lease:
    """One launch's hold on device capacity (opaque to callers)."""

    token: int
    cpu_threads: int
    gpu_fraction: float


class DeviceLoadLedger:
    """Thread-safe in-flight occupancy accounting for one platform.

    All mutation happens under one short lock; there is no blocking and no
    waiting — :meth:`acquire` always succeeds (see module docstring).
    ``peak_cpu_util``/``peak_gpu_util`` record the high-water marks
    (un-capped, so oversubscription is visible to the benchmark report).
    """

    def __init__(self, platform: Platform):
        self.platform = platform
        self._lock = threading.Lock()
        self._tokens = itertools.count()
        self._live: dict[int, Lease] = {}
        self._cpu_threads = 0       #: sum of leased CPU threads
        self._gpu_fraction = 0.0    #: sum of leased GPU-PE fractions
        self.peak_cpu_util = 0.0
        self.peak_gpu_util = 0.0
        self.total_leases = 0
        self._waiting = 0           #: launches parked behind dependencies

    # -- leasing -------------------------------------------------------------

    def acquire(self, setting: DopSetting) -> Lease:
        """Record ``setting``'s occupancy; returns the lease to release."""
        with self._lock:
            lease = Lease(
                token=next(self._tokens),
                cpu_threads=setting.cpu_threads,
                gpu_fraction=setting.gpu_fraction,
            )
            self._live[lease.token] = lease
            self._cpu_threads += lease.cpu_threads
            self._gpu_fraction += lease.gpu_fraction
            self.total_leases += 1
            self.peak_cpu_util = max(self.peak_cpu_util, self._raw_cpu_util())
            self.peak_gpu_util = max(self.peak_gpu_util, self._gpu_fraction)
            return lease

    def release(self, lease: Lease) -> None:
        """Return a lease's capacity; double release raises ``KeyError``."""
        with self._lock:
            live = self._live.pop(lease.token)
            self._cpu_threads -= live.cpu_threads
            self._gpu_fraction -= live.gpu_fraction
            # exact-int CPU accounting can't drift; float GPU fractions can
            # accumulate representation error, so clamp an empty ledger home
            if not self._live:
                self._cpu_threads = 0
                self._gpu_fraction = 0.0

    def note_waiting(self, delta: int) -> None:
        """Track launches parked behind graph dependencies (no lease).

        Parked work holds no capacity — it only matters for drain
        accounting (:attr:`drained`) and observability; it is kept out of
        ``cpu_util``/``gpu_util`` so the predictor sees the executable
        frontier, not the whole submitted graph.
        """
        with self._lock:
            self._waiting += delta
            assert self._waiting >= 0, "waiting count went negative"

    # -- queries -------------------------------------------------------------

    def _raw_cpu_util(self) -> float:
        threads = max(1, self.platform.cpu.threads)
        return self._cpu_threads / threads

    def snapshot(self) -> LoadSnapshot:
        """Current occupancy, capped at 1.0 per device."""
        with self._lock:
            return LoadSnapshot(
                cpu_util=min(1.0, self._raw_cpu_util()),
                gpu_util=min(1.0, self._gpu_fraction),
                in_flight=len(self._live),
                waiting=self._waiting,
            )

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._live)

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    @property
    def drained(self) -> bool:
        """True when no lease is live and nothing is parked."""
        with self._lock:
            return not self._live and self._waiting == 0
