"""Dependency-aware task-graph runtime for the serving layer.

``DopiaServer`` used to admit every launch as if it were independent;
real applications (FDTD1→2→3, ATAX1→2, BICG, MVT) are *chains* of
kernels over shared buffers.  This module gives the server an implicit
DAG: every submitted launch carries its buffer **read/write sets**
(derived from :func:`repro.analysis.accessmodel.launch_rw_summary`,
falling back to declared argument intents when the access model cannot
prove a summary), and admission **hazard-matches** the launch against
every live launch that touches overlapping memory:

RAW
    my read overlaps their write — I must see their output;
WAW
    my write overlaps their write — last writer must win;
WAR
    my write overlaps their read — they must read the old value first.

Conflicting launches get a dependency edge and *park* until their
predecessors complete; independent launches keep flowing to the worker
pool untouched.  Because parked launches acquire **no ledger lease** and
make **no prediction** until they actually start, the DoP predictor only
ever sees the executable *frontier* of the graph — exactly the set of
kernels that will co-run — not the whole submitted future.

Failure propagates along output edges: when a launch raises, every
dependent that needed its *output* (RAW / WAW / explicit edges) fails
with :class:`DependencyFailedError` carrying the root cause, while
pure-WAR dependents (which only waited to avoid clobbering an input) and
independent branches proceed.

The explicit face of the same machinery is :class:`TaskSpace` /
``DopiaServer.submit_graph``: named tasks, declared dependencies, cycle
rejection at admission, and a per-graph :class:`GraphHandle` future.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence


class ServeError(Exception):
    """A launch could not be served (untransformable kernel, closed server)."""


class GraphCycleError(ServeError):
    """An explicit task graph contains a dependency cycle (rejected whole)."""


class DependencyFailedError(ServeError):
    """A launch was abandoned because a launch it depends on failed.

    ``root_cause`` is the exception the *originally failing* launch
    raised (also chained as ``__cause__``); ``failed_task`` names that
    launch (``session#seq kernel``), which may be several edges upstream.
    """

    def __init__(self, message: str, root_cause: BaseException,
                 failed_task: str):
        super().__init__(message)
        self.root_cause = root_cause
        self.failed_task = failed_task
        self.__cause__ = root_cause

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args only,
        # which is one short for this signature; the sharded server ships
        # these across process pipes, so spell the constructor call out.
        return (DependencyFailedError,
                (self.args[0], self.root_cause, self.failed_task))


# -- hazard kinds -----------------------------------------------------------

RAW = "raw"
WAR = "war"
WAW = "waw"
EXPLICIT = "explicit"

#: Edge kinds whose failure poisons the dependent: the dependent needed
#: the predecessor's *output* (or was explicitly ordered after it).  A
#: pure WAR edge only protected the predecessor's *input*; if the
#: predecessor failed, the write may proceed.
POISONING = frozenset({RAW, WAW, EXPLICIT})


def buffer_ranges(args: dict[str, Any],
                  names: Iterable[str]) -> tuple[tuple[int, int], ...]:
    """Host-memory byte ranges ``[lo, hi)`` of the named ndarray arguments.

    Overlap of ranges is what defines "the same buffer" for hazard
    matching — NumPy views of one allocation conflict, distinct
    allocations never do.  Non-array (scalar) arguments contribute
    nothing.
    """
    ranges = []
    for name in names:
        value = args.get(name)
        iface = getattr(value, "__array_interface__", None)
        if iface is None:
            continue
        lo = iface["data"][0]
        ranges.append((lo, lo + int(value.nbytes)))
    return tuple(ranges)


def _overlaps(mine: tuple[tuple[int, int], ...],
              theirs: tuple[tuple[int, int], ...]) -> bool:
    for lo_a, hi_a in mine:
        for lo_b, hi_b in theirs:
            if lo_a < hi_b and lo_b < hi_a:
                return True
    return False


def hazard_kind(node: "TaskNode", other: "TaskNode") -> Optional[str]:
    """The strongest hazard forcing ``node`` to wait for ``other``.

    RAW dominates WAW dominates WAR: a RAW (or WAW) edge means ``node``
    consumes (or overwrites) ``other``'s output, so ``other``'s failure
    must poison ``node``; a pure WAR edge does not.
    """
    if _overlaps(node.read_ranges, other.write_ranges):
        return RAW
    if _overlaps(node.write_ranges, other.write_ranges):
        return WAW
    if _overlaps(node.write_ranges, other.read_ranges):
        return WAR
    return None


# -- nodes ------------------------------------------------------------------

_WAITING = "waiting"
_READY = "ready"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_POISONED = "poisoned"


class TaskNode:
    """One launch's position in the dependency graph (scheduler-internal)."""

    __slots__ = (
        "id", "label", "read_ranges", "write_ranges", "graph_id", "key",
        "pending", "dependents", "state", "error", "request", "parked",
        "dep_total", "submitted_at", "started_at", "finished_at",
    )

    def __init__(self, node_id: int, label: str,
                 read_ranges: tuple[tuple[int, int], ...],
                 write_ranges: tuple[tuple[int, int], ...],
                 graph_id: Optional[str] = None, key: Any = None):
        self.id = node_id
        self.label = label                     #: "session#seq kernel"
        self.read_ranges = read_ranges
        self.write_ranges = write_ranges
        self.graph_id = graph_id
        self.key = key
        self.pending: dict[int, str] = {}      #: dep node id -> edge kind
        self.dependents: list[tuple["TaskNode", str]] = []
        self.state = _WAITING
        self.error: Optional[BaseException] = None
        self.request: Any = None               #: the server's _Request
        self.parked = False
        self.dep_total = 0
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def deps(self) -> int:
        """Number of dependency edges this node was admitted with."""
        return self.dep_total


@dataclass
class GraphCounters:
    """Aggregate hazard/scheduling statistics (read via :meth:`snapshot`)."""

    submitted: int = 0
    raw: int = 0
    war: int = 0
    waw: int = 0
    explicit: int = 0
    parked: int = 0
    poisoned: int = 0
    peak_live: int = 0
    peak_frontier: int = 0


class GraphScheduler:
    """Hazard matcher + DAG bookkeeping for one :class:`DopiaServer`.

    All mutation happens under one short lock; the scheduler never
    executes anything — it only decides *when* a request may enter the
    worker queue.  ``admit`` returns the node's initial state; the
    server enqueues ``_READY`` nodes immediately, parks ``_WAITING``
    ones, and fails ``_POISONED`` ones (an explicit dependency had
    already failed) without executing them.
    """

    def __init__(self, max_events: int = 65536):
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._ids = itertools.count()
        self._live: dict[int, TaskNode] = {}
        self.counters = GraphCounters()
        #: bounded ("submit"|"start"|"done"|"failed"|"poisoned", node id,
        #: label) log — what the property suite asserts topo-order against
        self.events: deque[tuple[str, int, str]] = deque(maxlen=max_events)

    # -- admission ----------------------------------------------------------

    def make_node(self, label: str,
                  read_ranges: tuple[tuple[int, int], ...],
                  write_ranges: tuple[tuple[int, int], ...],
                  graph_id: Optional[str] = None,
                  key: Any = None) -> TaskNode:
        return TaskNode(next(self._ids), label, read_ranges, write_ranges,
                        graph_id=graph_id, key=key)

    def admit(self, node: TaskNode,
              explicit_deps: Sequence[TaskNode] = ()) -> str:
        """Register ``node``; returns ``_READY``/``_WAITING``/``_POISONED``.

        Implicit edges come from hazard-matching against every live
        node; explicit edges from ``explicit_deps`` (already-completed
        dependencies are satisfied, already-failed ones poison the node
        immediately — it will never run).
        """
        with self._lock:
            counters = self.counters
            counters.submitted += 1
            poison_source: Optional[TaskNode] = None
            for dep in explicit_deps:
                if dep.state in (_FAILED, _POISONED):
                    poison_source = dep
                    break
                if dep.state == _DONE or dep.id in node.pending:
                    continue
                node.pending[dep.id] = EXPLICIT
                dep.dependents.append((node, EXPLICIT))
                counters.explicit += 1
            if poison_source is not None:
                node.state = _POISONED
                node.dep_total = len(node.pending)
                node.error = _poison_error(node, poison_source)
                counters.poisoned += 1
                self.events.append(("poisoned", node.id, node.label))
                return _POISONED
            for other in self._live.values():
                if other.id in node.pending or other is node:
                    continue
                kind = hazard_kind(node, other)
                if kind is None:
                    continue
                node.pending[other.id] = kind
                other.dependents.append((node, kind))
                setattr(counters, kind, getattr(counters, kind) + 1)
            node.dep_total = len(node.pending)
            self._live[node.id] = node
            counters.peak_live = max(counters.peak_live, len(self._live))
            self.events.append(("submit", node.id, node.label))
            if node.pending:
                node.parked = True
                counters.parked += 1
                return _WAITING
            node.state = _READY
            self._note_frontier()
            return _READY

    def _note_frontier(self) -> None:
        frontier = sum(1 for n in self._live.values()
                       if n.state in (_READY, _RUNNING))
        self.counters.peak_frontier = max(self.counters.peak_frontier,
                                          frontier)

    # -- execution callbacks ------------------------------------------------

    def note_start(self, node: TaskNode) -> None:
        with self._lock:
            node.state = _RUNNING
            node.started_at = time.perf_counter()
            self.events.append(("start", node.id, node.label))

    def complete(self, node: TaskNode) -> list[TaskNode]:
        """Mark ``node`` done; returns dependents that became runnable."""
        with self._lock:
            node.state = _DONE
            node.finished_at = time.perf_counter()
            self._live.pop(node.id, None)
            self.events.append(("done", node.id, node.label))
            ready = self._release(node)
            self._note_frontier()
            if not self._live:
                self._idle.notify_all()
            return ready

    def fail(self, node: TaskNode,
             error: BaseException) -> tuple[list[TaskNode], list[TaskNode]]:
        """Mark ``node`` failed; returns ``(ready, poisoned)`` dependents.

        Poisoning walks output edges transitively: a poisoned node never
        runs, so *its* output-dependents are poisoned too (with the same
        root cause); WAR-only dependents at any depth are released.
        """
        with self._lock:
            node.state = _FAILED
            node.error = error
            node.finished_at = time.perf_counter()
            self._live.pop(node.id, None)
            self.events.append(("failed", node.id, node.label))
            ready: list[TaskNode] = []
            poisoned: list[TaskNode] = []
            stack = [node]
            while stack:
                failed = stack.pop()
                for child, kind in failed.dependents:
                    if child.state != _WAITING:
                        continue
                    child.pending.pop(failed.id, None)
                    if kind in POISONING:
                        child.state = _POISONED
                        child.error = _poison_error(child, failed)
                        self._live.pop(child.id, None)
                        self.counters.poisoned += 1
                        self.events.append(("poisoned", child.id, child.label))
                        poisoned.append(child)
                        stack.append(child)
                    elif not child.pending:
                        child.state = _READY
                        ready.append(child)
            self._note_frontier()
            if not self._live:
                self._idle.notify_all()
            return ready, poisoned

    def _release(self, node: TaskNode) -> list[TaskNode]:
        ready = []
        for child, _kind in node.dependents:
            if child.state != _WAITING:
                continue
            child.pending.pop(node.id, None)
            if not child.pending:
                child.state = _READY
                ready.append(child)
        return ready

    # -- queries ------------------------------------------------------------

    @property
    def live(self) -> int:
        with self._lock:
            return len(self._live)

    def live_nodes(self, state: Optional[str] = None) -> list[TaskNode]:
        """Snapshot of live nodes, optionally filtered by state.

        Shutdown paths use this to find launches that never started
        (``state="waiting"``) so their handles can be failed rather than
        abandoned; the snapshot is point-in-time, so callers must
        re-check ``node.state`` before acting on it.
        """
        with self._lock:
            nodes = list(self._live.values())
        if state is not None:
            nodes = [node for node in nodes if node.state == state]
        return nodes

    @property
    def drained(self) -> bool:
        with self._lock:
            return not self._live

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no launch is live (waiting, queued, or running)."""
        with self._idle:
            return self._idle.wait_for(lambda: not self._live, timeout)

    def snapshot(self) -> dict[str, int]:
        """JSON-shaped counter snapshot (the bench report's ``graph`` block)."""
        with self._lock:
            counters = self.counters
            return {
                "submitted": counters.submitted,
                "hazards_raw": counters.raw,
                "hazards_war": counters.war,
                "hazards_waw": counters.waw,
                "explicit_edges": counters.explicit,
                "parked": counters.parked,
                "poisoned": counters.poisoned,
                "peak_live": counters.peak_live,
                "peak_frontier": counters.peak_frontier,
            }


def _poison_error(node: TaskNode,
                  failed: TaskNode) -> DependencyFailedError:
    root: BaseException
    if isinstance(failed.error, DependencyFailedError):
        root = failed.error.root_cause
        origin = failed.error.failed_task
    else:
        root = failed.error if failed.error is not None else ServeError(
            f"dependency {failed.label} failed")
        origin = failed.label
    return DependencyFailedError(
        f"launch {node.label} abandoned: dependency {origin} failed "
        f"({type(root).__name__}: {root})",
        root_cause=root, failed_task=origin,
    )


# -- explicit graph surface -------------------------------------------------


@dataclass(frozen=True)
class GraphTask:
    """One named task of an explicit graph submission.

    ``deps`` are keys of other tasks in the same graph; buffer hazards
    between tasks are *also* matched automatically, so ``deps`` only
    needs ordering the access model cannot see (or extra constraints).
    """

    key: Any
    workload: Any                 #: :class:`repro.workloads.Workload`
    args: Optional[dict[str, Any]] = None
    deps: tuple = ()
    rng_seed: int = 0


class TaskSpace:
    """A named space of tasks, Parla-style: define, wire, submit as one.

    >>> ts = TaskSpace("fdtd")
    >>> ts.add("e", step1, args)
    >>> ts.add("h", step3, args, deps=["e"])
    >>> handle = server.submit_graph(session, ts)
    >>> handle["h"].result()
    """

    def __init__(self, name: str = "T"):
        self.name = name
        self._tasks: dict[Any, GraphTask] = {}

    def add(self, key: Any, workload, args: Optional[dict[str, Any]] = None,
            deps: Sequence[Any] = (), rng_seed: int = 0) -> GraphTask:
        if key in self._tasks:
            raise ValueError(f"task {key!r} already defined in "
                             f"TaskSpace {self.name!r}")
        task = GraphTask(key=key, workload=workload, args=args,
                         deps=tuple(deps), rng_seed=rng_seed)
        self._tasks[key] = task
        return task

    def tasks(self) -> list[GraphTask]:
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())

    def __getitem__(self, key: Any) -> GraphTask:
        return self._tasks[key]


def topological_order(tasks: Sequence[GraphTask]) -> list[GraphTask]:
    """Kahn's algorithm over explicit deps; definition order is preserved
    among ready tasks.  Raises :class:`GraphCycleError` (naming the tasks
    stuck on a cycle) or ``ValueError`` for unknown/duplicate keys."""
    by_key: dict[Any, GraphTask] = {}
    for task in tasks:
        if task.key in by_key:
            raise ValueError(f"duplicate task key {task.key!r}")
        by_key[task.key] = task
    indegree = {task.key: 0 for task in tasks}
    dependents: dict[Any, list[Any]] = {task.key: [] for task in tasks}
    for task in tasks:
        for dep in task.deps:
            if dep not in by_key:
                raise ValueError(
                    f"task {task.key!r} depends on unknown task {dep!r}")
            indegree[task.key] += 1
            dependents[dep].append(task.key)
    order = [task for task in tasks if indegree[task.key] == 0]
    for task in order:                      # grows while iterating (BFS)
        for child in dependents[task.key]:
            indegree[child] -= 1
            if indegree[child] == 0:
                order.append(by_key[child])
    if len(order) != len(tasks):
        stuck = sorted(
            (repr(key) for key, deg in indegree.items() if deg > 0), key=str)
        raise GraphCycleError(
            "dependency cycle among tasks: " + ", ".join(stuck))
    return order


class GraphHandle:
    """Per-graph completion future over the member :class:`LaunchHandle`\\ s."""

    def __init__(self, graph_id: str, handles: dict[Any, Any]):
        self.graph_id = graph_id
        self._handles = handles

    def __getitem__(self, key: Any):
        return self._handles[key]

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> dict[Any, Any]:
        return dict(self._handles)

    def done(self) -> bool:
        return all(handle.done() for handle in self._handles.values())

    def result(self, timeout: Optional[float] = None) -> dict[Any, Any]:
        """Wait for the whole graph; ``{key: ServeResult}`` on success.

        Raises the first member failure (a failing kernel raises its own
        error; its dependents raise :class:`DependencyFailedError`).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        results = {}
        for key, handle in self._handles.items():
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            results[key] = handle.result(timeout=remaining)
        return results
