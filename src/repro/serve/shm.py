"""Zero-copy kernel buffers in POSIX shared memory for sharded serving.

The sharded server (:mod:`repro.serve.shard`) executes launches in
worker *processes*; kernel buffers therefore cannot live in the router's
private heap.  This module moves them into
:class:`multiprocessing.shared_memory.SharedMemory` segments and exposes
them as plain NumPy views on both sides of the process boundary:

* the **owner** (router process) packs an argument dict's arrays into one
  segment (:meth:`ShmArena.share`) — 64-byte-aligned offsets, one
  allocation per dict — and gets back live views plus a picklable
  :class:`SharedArgs` descriptor;
* a **worker** reconstructs the same dict with :func:`attach_args`; the
  per-process :class:`SegmentCache` maps each segment exactly once, so
  two launches referencing the same segment see *overlapping* host
  ranges — which is what the shard-local hazard matcher keys on — and
  repeated launches pay no re-mapping cost.

Lifecycle safety is the point, not an afterthought:

* the arena tracks every segment it created and ``unlink``\\ s them all on
  :meth:`ShmArena.close` (also registered via :mod:`weakref`
  finalizer, so a dropped arena cannot orphan ``/dev/shm`` entries);
* non-owner attachments are **never registered with the resource
  tracker** (:func:`_attach_untracked`): without that, a worker's
  tracker would unlink segments the router still uses when the worker
  exits — or, under ``fork``'s shared tracker, corrupt the owner's
  registration — and spam "leaked shared_memory" warnings (the test
  suite treats any tracker noise as a failure);
* segment names carry a ``dopia-<pid>-`` prefix so
  :func:`sweep_orphans` can find and remove leftovers after a killed
  process, and tests can assert ``/dev/shm`` is clean.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any, Iterable, Optional

import numpy as np

__all__ = [
    "SharedArgs", "SegmentCache", "ShmArena", "attach_args",
    "list_segments", "sweep_orphans",
]

#: Alignment of every array inside a segment (cache line; also keeps any
#: dtype's natural alignment satisfied).
ALIGN = 64

#: Where POSIX shared memory appears as files (Linux).  Only used by the
#: leak-inspection helpers; the data path never touches the filesystem.
SHM_DIR = Path("/dev/shm")


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def _defuse(segment: shared_memory.SharedMemory) -> None:
    """Disarm a mapping that live NumPy views pin (``close`` raised
    ``BufferError``).

    The views keep the underlying mmap object alive through their
    exported buffers, so dropping the ``SharedMemory``'s own references
    is safe — and necessary: its ``__del__`` retries ``close()`` during
    garbage collection and would spam ``Exception ignored ...
    BufferError`` at every interpreter shutdown.  The file descriptor is
    closed here (the mapping survives fd close); the memory itself is
    reclaimed when the last view dies or the process exits.
    """
    fd = getattr(segment, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:
            pass
        segment._fd = -1
    segment._buf = None
    segment._mmap = None


_attach_lock = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    Python < 3.13 has no ``track=False``: attaching registers the name
    with the *attaching* process's tracker, which is wrong either way.
    Under ``spawn`` the worker's own tracker would unlink segments the
    router still owns when the worker exits (and warn about "leaked"
    memory); under ``fork`` the tracker process is *shared*, so
    unregistering from the worker would erase the owner's entry and the
    owner's legitimate ``unlink`` would then crash the tracker with a
    ``KeyError`` traceback.  Suppressing registration during attach
    sidesteps both: only the creating process ever holds the
    registration, and it is balanced by exactly one ``unlink``.
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SharedArgs:
    """Picklable recipe for rebuilding an argument dict in any process.

    ``arrays`` maps parameter name -> (segment name, dtype string, shape,
    byte offset); ``scalars`` rides along verbatim.  The descriptor is
    tiny — sharing is O(1) in buffer size on the wire.
    """

    arrays: tuple[tuple[str, str, str, tuple[int, ...], int], ...]
    scalars: tuple[tuple[str, Any], ...] = ()

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(seg for _, seg, _, _, _ in self.arrays))


class SegmentCache:
    """Per-process map of segment name -> mapped :class:`SharedMemory`.

    Each segment is mapped exactly once per process, so every view built
    from it shares one base address — overlapping arrays stay
    overlapping, which the hazard matcher depends on.  ``forget`` evicts
    a mapping once the owner has retired the segment; eviction is
    best-effort (a mapping still referenced by live views is kept until
    those views die).
    """

    def __init__(self, owner: bool = False):
        self._owner = owner
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            segment = self._segments.get(name)
            if segment is None:
                if self._owner:
                    segment = shared_memory.SharedMemory(name=name)
                else:
                    segment = _attach_untracked(name)
                self._segments[name] = segment
            return segment

    def adopt(self, segment: shared_memory.SharedMemory) -> None:
        """Register a segment this process itself created."""
        with self._lock:
            self._segments[segment.name] = segment

    def forget(self, names: Iterable[str]) -> None:
        """Drop cached mappings (safe: mappings pinned by live views stay)."""
        with self._lock:
            for name in names:
                segment = self._segments.pop(name, None)
                if segment is None:
                    continue
                try:
                    segment.close()
                except BufferError:
                    # a NumPy view still points into the mapping; the views
                    # keep the memory alive, so just disarm the handle
                    _defuse(segment)

    def close_all(self) -> None:
        with self._lock:
            names = list(self._segments)
        self.forget(names)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


def _views_from(segment: shared_memory.SharedMemory,
                entries) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for pname, dtype, shape, offset in entries:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(segment.buf, dtype=dt, count=count,
                             offset=offset)
        views[pname] = view.reshape(shape)
    return views


def attach_args(shared: SharedArgs, cache: SegmentCache) -> dict[str, Any]:
    """Rebuild the full argument dict (views + scalars) in this process."""
    args: dict[str, Any] = {}
    by_segment: dict[str, list] = {}
    for pname, seg, dtype, shape, offset in shared.arrays:
        by_segment.setdefault(seg, []).append((pname, dtype, shape, offset))
    for seg_name, entries in by_segment.items():
        args.update(_views_from(cache.get(seg_name), entries))
    args.update(dict(shared.scalars))
    return args


@dataclass
class _Segment:
    """Owner-side record of one allocation."""

    shm: shared_memory.SharedMemory
    base: int               #: first mapped byte (this process's view)
    size: int


class ShmArena:
    """Owner-side allocator + registry of shared-memory segments.

    One arena per :class:`~repro.serve.shard.ShardedServer`.  All
    segments it creates are unlinked on :meth:`close` (and by a weakref
    finalizer as a last resort), so a cleanly shut-down server leaves
    ``/dev/shm`` exactly as it found it.
    """

    def __init__(self, prefix: Optional[str] = None):
        self.prefix = prefix or f"dopia-{os.getpid()}-{secrets.token_hex(3)}"
        self._lock = threading.Lock()
        self._counter = 0
        self._segments: dict[str, _Segment] = {}
        self._closed = False
        self._finalizer = weakref.finalize(
            self, ShmArena._finalize, self._segments)

    @staticmethod
    def _finalize(segments: dict[str, _Segment]) -> None:
        for record in list(segments.values()):
            try:
                record.shm.close()
            except BufferError:
                _defuse(record.shm)
            except Exception:  # noqa: BLE001 - already gone is fine
                pass
            try:
                record.shm.unlink()
            except Exception:  # noqa: BLE001 - already gone is fine
                pass
        segments.clear()

    # -- allocation ----------------------------------------------------------

    def _new_segment(self, size: int) -> _Segment:
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            name = f"{self.prefix}-{self._counter}"
            self._counter += 1
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, size))
        flat = np.frombuffer(shm.buf, dtype=np.uint8)
        record = _Segment(shm=shm, base=flat.__array_interface__["data"][0],
                          size=shm.size)
        with self._lock:
            self._segments[shm.name] = record
        return record

    def share(self, args: dict[str, Any]) -> tuple[SharedArgs, dict[str, Any]]:
        """Pack ``args``'s arrays into one new segment.

        Returns ``(descriptor, live_args)`` where ``live_args`` is the
        same dict shape with every array replaced by its shared view
        (data copied in) and scalars untouched.  Arrays that already live
        in one of this arena's segments are referenced in place — no
        second copy, true zero-copy resubmission.
        """
        arrays = {name: value for name, value in args.items()
                  if isinstance(value, np.ndarray)}
        scalars = {name: value for name, value in args.items()
                   if name not in arrays}
        placed: dict[str, tuple[str, str, tuple[int, ...], int]] = {}
        fresh: dict[str, np.ndarray] = {}
        live: dict[str, Any] = dict(scalars)
        for name, arr in arrays.items():
            owned = self.locate(arr)
            if owned is not None:
                placed[name] = (owned[0], arr.dtype.str, arr.shape, owned[1])
                live[name] = arr
            else:
                fresh[name] = arr
        if fresh:
            offsets: dict[str, int] = {}
            cursor = 0
            for name, arr in fresh.items():
                cursor = _align(cursor)
                offsets[name] = cursor
                cursor += int(arr.nbytes)
            record = self._new_segment(cursor)
            for name, arr in fresh.items():
                view = np.frombuffer(
                    record.shm.buf, dtype=arr.dtype,
                    count=arr.size, offset=offsets[name]).reshape(arr.shape)
                view[...] = arr
                placed[name] = (record.shm.name, arr.dtype.str, arr.shape,
                                offsets[name])
                live[name] = view
        descriptor = SharedArgs(
            arrays=tuple((name,) + placed[name] for name in arrays),
            scalars=tuple(sorted(scalars.items(),
                                 key=lambda item: item[0])),
        )
        return descriptor, live

    def share_buffers(self,
                      buffers: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Copy a plain buffer dict into the arena; returns the live views.

        Convenience for chain workloads: rewire ``chain.buffers`` (and
        each task's args) through the returned views before submission.
        """
        _, live = self.share(buffers)
        return live

    # -- ownership queries ---------------------------------------------------

    def locate(self, arr: np.ndarray) -> Optional[tuple[str, int]]:
        """``(segment name, byte offset)`` if ``arr`` lives in this arena."""
        iface = arr.__array_interface__
        addr = iface["data"][0]
        with self._lock:
            for name, record in self._segments.items():
                if record.base <= addr < record.base + record.size:
                    return name, addr - record.base
        return None

    def owns(self, arr: np.ndarray) -> bool:
        return self.locate(arr) is not None

    @property
    def segment_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._segments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    # -- retirement ----------------------------------------------------------

    def free(self, names: Iterable[str]) -> None:
        """Unlink specific segments (their views become dangling)."""
        for name in names:
            with self._lock:
                record = self._segments.pop(name, None)
            if record is None:
                continue
            try:
                record.shm.close()
            except BufferError:
                _defuse(record.shm)  # views pin the memory; unlink proceeds
            try:
                record.shm.unlink()
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Unlink every owned segment; the arena is unusable afterwards."""
        with self._lock:
            self._closed = True
            names = list(self._segments)
        self.free(names)
        self._finalizer.detach()


# -- diagnostics ------------------------------------------------------------


def list_segments(prefix: str) -> list[str]:
    """``/dev/shm`` entries carrying ``prefix`` (leak inspection)."""
    if not SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in SHM_DIR.iterdir()
                  if p.name.startswith(prefix))


def sweep_orphans(prefix: str) -> list[str]:
    """Unlink stale segments left by a killed process; returns the names.

    Only names carrying ``prefix`` are touched, so a sweep can never eat
    another server's live segments.
    """
    swept = []
    for name in list_segments(prefix):
        try:
            # Attach untracked, then unlink the file directly: going
            # through ``SharedMemory.unlink`` would send an unregister
            # for a name this process never registered, which the shared
            # tracker reports as a KeyError traceback.
            segment = _attach_untracked(name)
            segment.close()
            os.unlink(SHM_DIR / name)
            swept.append(name)
        except FileNotFoundError:
            continue
    return swept
