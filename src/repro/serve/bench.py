"""The ``dopia serve-bench`` harness: clients x launches -> throughput/latency.

A closed-loop load generator: each of N client threads owns a session and
submits launches one at a time (submit, wait, repeat), so concurrency in
service equals the client count.  The report carries throughput,
latency percentiles, prediction-cache statistics, ledger high-water
marks, and online-adaptation counts — committed as ``BENCH_serve.json``
and guarded by the CI stress lane.

Benchmark mode is simulation-only (``functional=False``) with a lease
dwell (see :class:`~repro.serve.server.DopiaServer`): the simulated
platform's devices are "occupied" for a wall-clock dwell proportional to
the modelled service time, which is what lets the ledger fill up and the
measured scaling reflect genuine admission/prediction/ledger hot-path
costs rather than Python interpreter time.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional, Sequence

import numpy as np

from ..ml.base import Estimator
from ..sim.platforms import Platform
from ..workloads import SCALED_REAL_FACTORIES
from ..workloads.registry import Workload
from .server import DopiaServer

#: dict alias for the JSON-shaped report
BenchReport = dict

#: Default per-launch dwell configuration for benchmark mode: scale the
#: modelled service time up into the milliseconds so the ledger observably
#: fills, but cap it so a full sweep stays interactive.
DEFAULT_DWELL_SCALE = 2e3
DEFAULT_DWELL_CAP_S = 0.004


def percentiles(samples: Sequence[float]) -> dict[str, float]:
    """p50/p90/p99 + mean/max of a latency sample set, in milliseconds."""
    if not samples:
        return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0, "max_ms": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p90_ms": float(np.percentile(array, 90)),
        "p99_ms": float(np.percentile(array, 99)),
        "mean_ms": float(array.mean()),
        "max_ms": float(array.max()),
    }


def run_serve_bench(
    platform: Platform,
    model: Estimator,
    *,
    clients: int = 8,
    launches_per_client: int = 25,
    workload_names: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    backend: str | None = None,
    functional: bool = False,
    dwell_scale: float = DEFAULT_DWELL_SCALE,
    dwell_cap_s: float = DEFAULT_DWELL_CAP_S,
    cache_size: int = 1024,
) -> BenchReport:
    """One benchmark run; returns the JSON-shaped report (see module doc)."""
    if clients < 1 or launches_per_client < 1:
        raise ValueError("need at least one client and one launch")
    names = list(workload_names or SCALED_REAL_FACTORIES)
    factories = {name: SCALED_REAL_FACTORIES[name] for name in names}
    workloads: list[Workload] = [factories[name]() for name in names]

    server = DopiaServer(
        platform, model,
        workers=workers or clients,
        backend=backend,
        functional=functional,
        cache_size=cache_size,
        dwell_scale=dwell_scale if not functional else 0.0,
        dwell_cap_s=dwell_cap_s,
    )
    barrier = threading.Barrier(clients + 1)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def client_loop(index: int) -> None:
        prepared_args: list[tuple[Workload, dict[str, Any]]] = []
        try:
            session = server.session(f"bench-{index}")
            # pre-materialise one argument set per workload, outside the
            # timed region (closed loop measures serving, not NumPy allocation)
            prepared_args = [(workload, workload.full_args(rng=index))
                             for workload in workloads]
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            with errors_lock:
                errors.append(error)
        barrier.wait()
        try:
            if prepared_args:
                for j in range(launches_per_client):
                    workload, args = prepared_args[(index + j) % len(prepared_args)]
                    session.launch(workload, args=args).result(timeout=120.0)
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            with errors_lock:
                errors.append(error)
        finally:
            barrier.wait()

    threads = [
        threading.Thread(target=client_loop, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()                    # all clients armed; start the clock
    t0 = time.perf_counter()
    barrier.wait()                    # all clients drained; stop the clock
    wall_s = time.perf_counter() - t0
    for thread in threads:
        thread.join()
    server.close()
    if errors:
        raise errors[0]

    total = clients * launches_per_client
    with server.stats._lock:
        latencies = list(server.stats.latencies_s)
        loaded = server.stats.loaded_predictions
        adapted = server.stats.adapted_predictions
        completed = server.stats.completed
    assert completed == total, f"served {completed} of {total} launches"
    return {
        "platform": platform.name,
        "backend": backend or "auto",
        "clients": clients,
        "launches_per_client": launches_per_client,
        "total_launches": total,
        "workers": workers or clients,
        "functional": functional,
        "workloads": names,
        "dwell_scale": dwell_scale if not functional else 0.0,
        "dwell_cap_ms": dwell_cap_s * 1e3,
        "wall_s": round(wall_s, 6),
        "throughput_lps": round(total / wall_s, 3) if wall_s > 0 else 0.0,
        "latency": {k: round(v, 3) for k, v in percentiles(latencies).items()},
        "cache": server.cache.stats(),
        "ledger": {
            "peak_cpu_util": round(server.ledger.peak_cpu_util, 4),
            "peak_gpu_util": round(server.ledger.peak_gpu_util, 4),
            "total_leases": server.ledger.total_leases,
        },
        "predictions": {
            "under_load": loaded,
            "adapted": adapted,
        },
    }
