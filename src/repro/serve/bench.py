"""The ``dopia serve-bench`` harness: clients x launches -> throughput/latency.

A closed-loop load generator: each of N client threads owns a session and
submits launches one at a time (submit, wait, repeat), so concurrency in
service equals the client count.  The report carries throughput,
latency percentiles, prediction-cache statistics, ledger high-water
marks, and online-adaptation counts — committed as ``BENCH_serve.json``
and guarded by the CI stress lane.

Benchmark mode is simulation-only (``functional=False``) with a lease
dwell (see :class:`~repro.serve.server.DopiaServer`): the simulated
platform's devices are "occupied" for a wall-clock dwell proportional to
the modelled service time, which is what lets the ledger fill up and the
measured scaling reflect genuine admission/prediction/ledger hot-path
costs rather than Python interpreter time.

:func:`run_chained_serve_bench` is the graph runtime's benchmark: every
client owns ``chains_per_client`` independent multi-kernel chains
(default two FDTD1→2→3 x ``steps`` problems — a small parameter sweep),
run once with client-side waits between kernels (``sync`` — the
pre-graph serving model, which serializes the client's whole workload)
and once submitted as task graphs (``graph``).  Chained mode is
*functional* (buffers really execute, and the final bytes are checked
bit-identical to a serial oracle run) plus a flat lease dwell standing
in for simulated device occupancy — so the graph's win comes from real
pipelining on two axes: FDTD's s1/s2 are independent within a timestep
(critical path 2 kernels per step against 3 for client-side chaining),
and a client's separate problems share no buffers at all, so the graph
runtime overlaps them fully while client-side waits serialize them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional, Sequence

import numpy as np

from ..core.runtime import execute_chain_serial, execute_workload_serial
from ..ml.base import Estimator
from ..sim.platforms import Platform
from ..workloads import SCALED_REAL_FACTORIES
from ..workloads.chains import (
    KernelChain,
    make_atax_chain,
    make_bicg_chain,
    make_fdtd_chain,
    make_mvt_chain,
)
from ..workloads.registry import Workload
from .server import DopiaServer
from .shard import ShardedServer

#: dict alias for the JSON-shaped report
BenchReport = dict

#: Default per-launch dwell configuration for benchmark mode: scale the
#: modelled service time up into the milliseconds so the ledger observably
#: fills, but cap it so a full sweep stays interactive.
DEFAULT_DWELL_SCALE = 2e3
DEFAULT_DWELL_CAP_S = 0.004

#: Chained-bench dwell: a saturated (flat) 20 ms lease dwell per launch.
#: The dwell stands in for device occupancy and sleeps GIL-free, so the
#: measured sync-vs-graph ratio reflects the schedulable critical path
#: (3 vs 2 kernels per FDTD step) rather than Python interpreter time.
CHAIN_DWELL_SCALE = 1e6
CHAIN_DWELL_CAP_S = 0.020


def percentiles(samples: Sequence[float]) -> dict[str, float]:
    """p50/p90/p99 + mean/max of a latency sample set, in milliseconds."""
    if not samples:
        return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0, "max_ms": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p90_ms": float(np.percentile(array, 90)),
        "p99_ms": float(np.percentile(array, 99)),
        "mean_ms": float(array.mean()),
        "max_ms": float(array.max()),
    }


def run_serve_bench(
    platform: Platform,
    model: Estimator,
    *,
    clients: int = 8,
    launches_per_client: int = 25,
    workload_names: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    backend: str | None = None,
    functional: bool = False,
    dwell_scale: float = DEFAULT_DWELL_SCALE,
    dwell_cap_s: float = DEFAULT_DWELL_CAP_S,
    cache_size: int = 1024,
) -> BenchReport:
    """One benchmark run; returns the JSON-shaped report (see module doc)."""
    if clients < 1 or launches_per_client < 1:
        raise ValueError("need at least one client and one launch")
    names = list(workload_names or SCALED_REAL_FACTORIES)
    factories = {name: SCALED_REAL_FACTORIES[name] for name in names}
    workloads: list[Workload] = [factories[name]() for name in names]

    server = DopiaServer(
        platform, model,
        workers=workers or clients,
        backend=backend,
        functional=functional,
        cache_size=cache_size,
        dwell_scale=dwell_scale if not functional else 0.0,
        dwell_cap_s=dwell_cap_s,
    )
    barrier = threading.Barrier(clients + 1)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def client_loop(index: int) -> None:
        prepared_args: list[tuple[Workload, dict[str, Any]]] = []
        try:
            session = server.session(f"bench-{index}")
            # pre-materialise one argument set per workload, outside the
            # timed region (closed loop measures serving, not NumPy allocation)
            prepared_args = [(workload, workload.full_args(rng=index))
                             for workload in workloads]
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            with errors_lock:
                errors.append(error)
        barrier.wait()
        try:
            if prepared_args:
                for j in range(launches_per_client):
                    workload, args = prepared_args[(index + j) % len(prepared_args)]
                    session.launch(workload, args=args).result(timeout=120.0)
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            with errors_lock:
                errors.append(error)
        finally:
            barrier.wait()

    threads = [
        threading.Thread(target=client_loop, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()                    # all clients armed; start the clock
    t0 = time.perf_counter()
    barrier.wait()                    # all clients drained; stop the clock
    wall_s = time.perf_counter() - t0
    for thread in threads:
        thread.join()
    server.close()
    if errors:
        raise errors[0]

    total = clients * launches_per_client
    with server.stats._lock:
        latencies = list(server.stats.latencies_s)
        loaded = server.stats.loaded_predictions
        adapted = server.stats.adapted_predictions
        completed = server.stats.completed
    assert completed == total, f"served {completed} of {total} launches"
    return {
        "platform": platform.name,
        "backend": backend or "auto",
        "clients": clients,
        "launches_per_client": launches_per_client,
        "total_launches": total,
        "workers": workers or clients,
        "functional": functional,
        "workloads": names,
        "dwell_scale": dwell_scale if not functional else 0.0,
        "dwell_cap_ms": dwell_cap_s * 1e3,
        "wall_s": round(wall_s, 6),
        "throughput_lps": round(total / wall_s, 3) if wall_s > 0 else 0.0,
        "latency": {k: round(v, 3) for k, v in percentiles(latencies).items()},
        "cache": server.cache.stats(),
        "ledger": {
            "peak_cpu_util": round(server.ledger.peak_cpu_util, 4),
            "peak_gpu_util": round(server.ledger.peak_gpu_util, 4),
            "total_leases": server.ledger.total_leases,
        },
        "predictions": {
            "under_load": loaded,
            "adapted": adapted,
        },
    }


def _chain_for(chain: str, *, steps: int, grid: int, seed: int) -> KernelChain:
    """One client's private chain instance (per-client seed, no sharing)."""
    if chain == "FDTD":
        return make_fdtd_chain(steps=steps, grid=grid, seed=seed)
    if chain == "ATAX":
        return make_atax_chain(reps=steps, seed=seed)
    if chain == "MVT":
        return make_mvt_chain(reps=steps, seed=seed)
    if chain == "BICG":
        return make_bicg_chain(seed=seed)
    raise ValueError(f"unknown chain {chain!r} (FDTD/ATAX/BICG/MVT)")


def run_chained_serve_bench(
    platform: Platform,
    model: Estimator,
    *,
    clients: int = 8,
    steps: int = 8,
    chain: str = "FDTD",
    grid: int = 12,
    chains_per_client: int = 2,
    workers: Optional[int] = None,
    backend: str | None = None,
    dwell_scale: float = CHAIN_DWELL_SCALE,
    dwell_cap_s: float = CHAIN_DWELL_CAP_S,
    cache_size: int = 1024,
) -> BenchReport:
    """Graph-vs-client-side-wait chained benchmark (see module doc).

    ``workers`` defaults to ``3 x clients`` so the graph mode has the
    capacity to execute width beyond one launch per client (each client
    exposes up to ``2 x chains_per_client`` concurrent launches at an
    FDTD s1/s2 wave); the sync mode can never use more than ``clients``
    workers regardless (each client has at most one launch in flight).  Each mode's server is
    warmed with one untimed chain first, so the timed region measures
    steady-state serving (jit programs compiled and predictions cached)
    — cold-start costs are identical in both modes and would only wash
    out the scheduling difference under test.
    """
    if clients < 1 or steps < 1 or chains_per_client < 1:
        raise ValueError("need at least one client, chain, and step")
    workers = workers or 3 * clients
    # resolve the backend once: the serial bit-identity oracle must run
    # the same execution tier the server used
    chain_len = len(_chain_for(chain, steps=steps, grid=grid, seed=0))
    tasks_per_client = chains_per_client * chain_len
    total = clients * tasks_per_client

    def run_mode(mode: str) -> BenchReport:
        server = DopiaServer(
            platform, model,
            workers=workers, backend=backend, functional=True,
            simulate=False, load_aware=False, cache_size=cache_size,
            dwell_scale=dwell_scale, dwell_cap_s=dwell_cap_s,
        )
        chains = [
            [_chain_for(chain, steps=steps, grid=grid,
                        seed=index * chains_per_client + j)
             for j in range(chains_per_client)]
            for index in range(clients)
        ]
        warm = _chain_for(chain, steps=steps, grid=grid,
                          seed=clients * chains_per_client)
        warm_session = server.session(f"{mode}-warm")
        for task in warm.tasks:
            warm_session.launch(task.workload, args=task.args).result(
                timeout=300.0)
        barrier = threading.Barrier(clients + 1)
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def client_loop(index: int) -> None:
            own = chains[index]
            try:
                session = server.session(f"{mode}-{index}")
            except BaseException as error:  # noqa: BLE001
                with errors_lock:
                    errors.append(error)
                session = None
            barrier.wait()
            try:
                if session is None:
                    return
                if mode == "graph":
                    handles = [server.submit_chain(session, one)
                               for one in own]
                    for handle in handles:
                        handle.result(timeout=300.0)
                else:
                    for one in own:
                        for task in one.tasks:
                            session.launch(
                                task.workload,
                                args=task.args).result(timeout=300.0)
            except BaseException as error:  # noqa: BLE001
                with errors_lock:
                    errors.append(error)
            finally:
                barrier.wait()

        threads = [
            threading.Thread(target=client_loop, args=(i,),
                             name=f"chain-{mode}-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()                # all clients armed; start the clock
        t0 = time.perf_counter()
        barrier.wait()                # all clients drained; stop the clock
        wall_s = time.perf_counter() - t0
        for thread in threads:
            thread.join()
        drained = server.drain(timeout=30.0) and server.ledger.drained
        graph_stats = server.graph.snapshot()
        with server.stats._lock:
            # skip the warm-up chain's samples: timed region only
            latencies = list(server.stats.latencies_s)[chain_len:]
            completed = server.stats.completed
        server.close()
        if errors:
            raise errors[0]
        expected = total + chain_len
        assert completed == expected, \
            f"served {completed} of {expected} launches"

        # bit-identity: every executed chain's final buffers must match a
        # fresh identical chain executed serially in topo order, same
        # backend
        bit_identical = True
        verified = True
        for index in range(clients):
            for j, executed in enumerate(chains[index]):
                oracle = _chain_for(chain, steps=steps, grid=grid,
                                    seed=index * chains_per_client + j)
                execute_chain_serial(oracle, backend=backend)
                if executed.buffer_bytes() != oracle.buffer_bytes():
                    bit_identical = False
                if not executed.verify():
                    verified = False
        return {
            "wall_s": round(wall_s, 6),
            "throughput_lps": round(total / wall_s, 3) if wall_s > 0 else 0.0,
            "latency": {k: round(v, 3)
                        for k, v in percentiles(latencies).items()},
            "bit_identical": bit_identical,
            "verified": verified,
            "drained": drained,
            "graph": graph_stats,
        }

    sync_report = run_mode("sync")
    graph_report = run_mode("graph")
    sync_tp = sync_report["throughput_lps"]
    graph_tp = graph_report["throughput_lps"]
    return {
        "mode": "chained",
        "platform": platform.name,
        "backend": backend or "auto",
        "chain": chain,
        "clients": clients,
        "steps": steps,
        "grid": grid,
        "chains_per_client": chains_per_client,
        "workers": workers,
        "tasks_per_client": tasks_per_client,
        "total_launches": total,
        "dwell_scale": dwell_scale,
        "dwell_cap_ms": dwell_cap_s * 1e3,
        "sync": sync_report,
        "graph": graph_report,
        "speedup_graph_over_sync": (
            round(graph_tp / sync_tp, 3) if sync_tp > 0 else 0.0),
        "bit_identical": (sync_report["bit_identical"]
                          and graph_report["bit_identical"]),
    }


#: Pipeline window of the sharded benchmark: launches each client keeps
#: in flight.  The closed loop of :func:`run_serve_bench` caps a client
#: at one launch per (dwell + round-trip), so aggregate throughput is
#: latency-bound no matter how many shards serve; a small window turns
#: the measurement throughput-bound (in_flight / latency) while keeping
#: the router's live hazard-matching set — clients x window — cheap.
SHARDED_WINDOW = 8


def _sharded_verify(platform, model, *, shards, workers_per_shard,
                    backend, cache_size) -> dict:
    """Untimed functional pass: sharded execution vs the serial oracle.

    Every registry workload launches once through a functional sharded
    server and its buffers are compared byte-for-byte against
    :func:`repro.core.runtime.execute_workload_serial`; the FDTD and
    ATAX chains do the same against :func:`execute_chain_serial`,
    crossing shard boundaries through the router's hazard escalation.
    """
    mismatched: list[str] = []
    server = ShardedServer(
        platform, model, shards=shards, workers_per_shard=workers_per_shard,
        backend=backend, functional=True, simulate=False,
        cache_size=cache_size, warm_start=False,
    )
    try:
        session = server.session("verify")
        staged = []
        for name, factory in SCALED_REAL_FACTORIES.items():
            workload = factory()
            args = workload.full_args(rng=1)
            oracle = {key: (value.copy() if isinstance(value, np.ndarray)
                            else value) for key, value in args.items()}
            staged.append((name, workload, args, oracle))
        handles = [(name, session.launch(workload, args=args))
                   for name, workload, args, _ in staged]
        for (_, handle) in handles:
            handle.result(timeout=300.0)
        for name, workload, args, oracle in staged:
            execute_workload_serial(workload, oracle, backend=backend)
            for key, value in oracle.items():
                if isinstance(value, np.ndarray) and \
                        not np.array_equal(value, args[key]):
                    mismatched.append(f"{name}:{key}")
        for chain_name in ("FDTD", "ATAX"):
            served = _chain_for(chain_name, steps=3, grid=12, seed=2)
            oracle_chain = _chain_for(chain_name, steps=3, grid=12, seed=2)
            server.submit_chain(session, served).result(timeout=300.0)
            execute_chain_serial(oracle_chain, backend=backend)
            if served.buffer_bytes() != oracle_chain.buffer_bytes():
                mismatched.append(f"chain:{chain_name}")
        escalated = server.stats.snapshot()["escalated"]
    finally:
        server.close()
    return {
        "workloads": len(SCALED_REAL_FACTORIES),
        "chains": ["FDTD", "ATAX"],
        "bit_identical": not mismatched,
        "mismatched": mismatched,
        "escalated": escalated,
    }


def run_sharded_serve_bench(
    platform: Platform,
    model: Estimator,
    *,
    shards: int = 4,
    clients: int = 8,
    launches_per_client: int = 100,
    window: int = SHARDED_WINDOW,
    workers_per_shard: int = 8,
    workload_names: Optional[Sequence[str]] = None,
    backend: str | None = None,
    dwell_scale: float = DEFAULT_DWELL_SCALE,
    dwell_cap_s: float = DEFAULT_DWELL_CAP_S,
    cache_size: int = 1024,
    queue_depth: int = 64,
    verify: bool = True,
) -> BenchReport:
    """Sharded throughput benchmark + functional bit-identity pass.

    The timed region mirrors :func:`run_serve_bench`'s conditions —
    same workload mix, same per-launch simulated-dwell parameters, same
    benchmark (simulate-only) mode — but drives the multi-process
    :class:`~repro.serve.shard.ShardedServer` with a pipelined window
    per client (:data:`SHARDED_WINDOW`) instead of a closed loop, which
    is the access pattern sharding exists to serve.  ``verify=True``
    appends an untimed functional pass proving the sharded data path
    produces bit-identical buffers (see :func:`_sharded_verify`).
    """
    if clients < 1 or launches_per_client < 1 or window < 1:
        raise ValueError("need at least one client, launch, and window slot")
    names = list(workload_names or SCALED_REAL_FACTORIES)
    factories = {name: SCALED_REAL_FACTORIES[name] for name in names}
    workloads: list[Workload] = [factories[name]() for name in names]
    if window >= len(workloads):
        # A client cycles through the workload list; once the window
        # covers a full cycle, launch j and j+len share buffers and the
        # router would serialise them as WAW hazards — a measurement
        # artifact, not serving behaviour.
        raise ValueError(
            f"window ({window}) must be smaller than the workload mix "
            f"({len(workloads)}) so a client never overlaps itself")

    server = ShardedServer(
        platform, model,
        shards=shards, workers_per_shard=workers_per_shard, backend=backend,
        functional=False, simulate=True, cache_size=cache_size,
        dwell_scale=dwell_scale, dwell_cap_s=dwell_cap_s,
        queue_depth=queue_depth, warm_start=False,
    )
    barrier = threading.Barrier(clients + 1)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    # Untimed warm-up: register every workload with its shard, compile
    # the prepared kernels, and seed the prediction caches, so the timed
    # region measures steady-state serving (as the closed-loop bench does).
    warm_session = server.session("warm")
    warm_handles = [warm_session.launch(workload, args=workload.full_args(0))
                    for workload in workloads]
    for handle in warm_handles:
        handle.result(timeout=300.0)
    warm_count = len(warm_handles)

    def client_loop(index: int) -> None:
        prepared: list[tuple[Workload, dict[str, Any]]] = []
        session = None
        try:
            session = server.session(f"bench-{index}")
            prepared = [(workload, workload.full_args(rng=index + 1))
                        for workload in workloads]
        except BaseException as error:  # noqa: BLE001
            with errors_lock:
                errors.append(error)
        barrier.wait()
        try:
            if session is None:
                return
            # Drain in half-window bursts: waiting per launch costs an
            # Event wake each; draining several at once finds most of
            # them already set, amortising wakes without shrinking the
            # in-flight window below window/2.
            drain = max(1, window // 2)
            pending: deque = deque()
            for j in range(launches_per_client):
                workload, args = prepared[(index + j) % len(prepared)]
                pending.append(session.launch(workload, args=args))
                if len(pending) >= window:
                    for _ in range(drain):
                        pending.popleft().result(timeout=300.0)
            while pending:
                pending.popleft().result(timeout=300.0)
        except BaseException as error:  # noqa: BLE001
            with errors_lock:
                errors.append(error)
        finally:
            barrier.wait()

    threads = [
        threading.Thread(target=client_loop, args=(i,),
                         name=f"shard-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()                    # all clients armed; start the clock
    t0 = time.perf_counter()
    barrier.wait()                    # all clients drained; stop the clock
    wall_s = time.perf_counter() - t0
    for thread in threads:
        thread.join()
    total = clients * launches_per_client
    with server.stats._lock:
        # warm-up samples lead the list; timed region only
        latencies = list(server.stats.latencies_s)[warm_count:]
        completed = server.stats.completed
        failed = server.stats.failed
    router = server.stats.snapshot()
    snapshot = server.snapshot()
    server.close()
    reports = server.shard_reports
    if errors:
        raise errors[0]
    expected = total + warm_count
    assert completed == expected and failed == 0, \
        f"served {completed} of {expected} launches ({failed} failed)"

    shard_blocks = []
    for report in sorted(reports, key=lambda r: r["shard"]):
        shard_blocks.append({
            "shard": report["shard"],
            "launches": report["launches"],
            "completed": report["completed"],
            "failed": report["failed"],
            "cache": report["cache"],
            "ledger": report["ledger"],
            "warm_loaded": report["warm_loaded"],
        })
    out: BenchReport = {
        "mode": "sharded",
        "platform": platform.name,
        "backend": backend or "auto",
        "shards": shards,
        "clients": clients,
        "launches_per_client": launches_per_client,
        "window": window,
        "workers_per_shard": workers_per_shard,
        "total_launches": total,
        "workloads": names,
        "dwell_scale": dwell_scale,
        "dwell_cap_ms": dwell_cap_s * 1e3,
        "wall_s": round(wall_s, 6),
        "throughput_lps": round(total / wall_s, 3) if wall_s > 0 else 0.0,
        "latency": {k: round(v, 3) for k, v in percentiles(latencies).items()},
        "router": router,
        "graph": snapshot["graph"],
        "shard_reports": shard_blocks,
    }
    if verify:
        out["verify"] = _sharded_verify(
            platform, model, shards=shards,
            workers_per_shard=max(2, workers_per_shard // 4),
            backend=backend, cache_size=cache_size)
        out["bit_identical"] = out["verify"]["bit_identical"]
    return out
