"""LRU prediction cache keyed on (feature vector, load bucket).

Model inference over all 44 configurations is the serving hot path's one
non-trivial compute step.  Launches repeat — the same kernels at the same
geometries arrive from many clients — and a prediction is a pure function
of (static features, launch geometry, quantised device load), so an LRU
over that key turns the steady state into a dictionary hit.

Thread-safe via one short lock.  :meth:`get_or_compute` publishes the
result outside the lock, accepting that two threads racing on the same
cold key may both compute (predictions are deterministic, so both compute
the same value); holding the lock across model inference would serialise
every enqueue — exactly the global execution lock this layer avoids.

Entries are tagged with the cache's *model generation* so the online
retraining loop can invalidate everything a superseded model computed
(:meth:`clear` with a generation) without touching entries written by the
newly promoted model — or the hit/miss counters, which keep measuring
this process's traffic across promotions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional


class PredictionCache:
    """A bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        #: generation new entries are tagged with; bumped by
        #: :meth:`advance_generation` when a new model is promoted
        self.generation = 0
        self._gens: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value (refreshing recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._gens[key] = self.generation
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._gens.pop(evicted, None)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> tuple[Any, bool]:
        """``(value, was_hit)`` — computing and inserting on a miss."""
        value = self.get(key)
        if value is not None:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def items(self) -> list[tuple[Hashable, Any]]:
        """Point-in-time snapshot of entries, oldest first.

        Feeds the cross-process persistence tier
        (:class:`repro.serve.predstore.PredictionStore`); recency is not
        refreshed, so snapshotting never perturbs eviction order.
        """
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def advance_generation(self) -> int:
        """Start tagging new entries with the next model generation.

        Returns the *superseded* generation, which the caller passes to
        :meth:`clear` to drop every entry the old model computed — the
        promote-then-invalidate sequence of the online retraining loop.
        """
        with self._lock:
            stale = self.generation
            self.generation += 1
            return stale

    def clear(self, generation: Optional[int] = None) -> None:
        """Drop entries; counters (hits/misses/evictions) are preserved.

        With ``generation`` given, only entries written under that
        generation **or older** are dropped — entries a newly promoted
        model already computed survive.  Concurrent readers are safe:
        they either see the old value (a stale-but-deterministic decision
        made before the promotion) or miss and recompute with whatever
        model is current.
        """
        with self._lock:
            if generation is None:
                self.invalidations += len(self._entries)
                self._entries.clear()
                self._gens.clear()
                return
            stale = [key for key, gen in self._gens.items()
                     if gen <= generation]
            for key in stale:
                del self._entries[key]
                del self._gens[key]
            self.invalidations += len(stale)

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "generation": self.generation,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / (self.hits + self.misses)
                if (self.hits + self.misses) else 0.0,
            }
