"""LRU prediction cache keyed on (feature vector, load bucket).

Model inference over all 44 configurations is the serving hot path's one
non-trivial compute step.  Launches repeat — the same kernels at the same
geometries arrive from many clients — and a prediction is a pure function
of (static features, launch geometry, quantised device load), so an LRU
over that key turns the steady state into a dictionary hit.

Thread-safe via one short lock.  :meth:`get_or_compute` publishes the
result outside the lock, accepting that two threads racing on the same
cold key may both compute (predictions are deterministic, so both compute
the same value); holding the lock across model inference would serialise
every enqueue — exactly the global execution lock this layer avoids.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable


class PredictionCache:
    """A bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value (refreshing recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> tuple[Any, bool]:
        """``(value, was_hit)`` — computing and inserting on a miss."""
        value = self.get(key)
        if value is not None:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def items(self) -> list[tuple[Hashable, Any]]:
        """Point-in-time snapshot of entries, oldest first.

        Feeds the cross-process persistence tier
        (:class:`repro.serve.predstore.PredictionStore`); recency is not
        refreshed, so snapshotting never perturbs eviction order.
        """
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / (self.hits + self.misses)
                if (self.hits + self.misses) else 0.0,
            }
