"""Concurrent multi-client serving layer for the Dopia runtime.

The paper's Table-1 feature vector carries ``CPU_util``/``GPU_util``
precisely so the model can pick a degree of parallelism *online*, under
multiprogrammed co-execution.  This package is where those features come
alive: N client sessions submit kernel launches concurrently into an
admission queue, a device-load ledger tracks in-flight CPU-thread and
GPU-PE occupancy, and every enqueue feeds the live load into
:class:`repro.core.predictor.DopPredictor` so the chosen DoP adapts to
contention.

Components
----------
:class:`~repro.serve.ledger.DeviceLoadLedger`
    Thread-safe occupancy accounting (leases over CPU threads / GPU PEs).
:class:`~repro.serve.cache.PredictionCache`
    LRU over (feature vector, load bucket) keeping the hot path fast.
:class:`~repro.serve.server.DopiaServer`
    Admission queue + worker pool + client sessions.
:func:`~repro.serve.bench.run_serve_bench`
    The ``dopia serve-bench`` harness (throughput / latency percentiles).
:class:`~repro.serve.shard.ShardedServer`
    Multi-process scale-out: consistent-hash routing to worker shards
    over zero-copy shared-memory buffers (:mod:`repro.serve.shm`), with
    a cross-process prediction store (:mod:`repro.serve.predstore`).
"""

from .bench import (
    SHARDED_WINDOW,
    BenchReport,
    run_chained_serve_bench,
    run_serve_bench,
    run_sharded_serve_bench,
)
from .cache import PredictionCache
from .graph import (
    DependencyFailedError,
    GraphCycleError,
    GraphHandle,
    GraphScheduler,
    GraphTask,
    ServeError,
    TaskSpace,
)
from .ledger import DeviceLoadLedger, Lease, LoadSnapshot
from .predstore import PredictionStore, store_namespace
from .server import (
    ClientSession,
    DopiaServer,
    LaunchHandle,
    ServeResult,
    ServerStats,
)
from .shard import (
    BackpressureError,
    ConsistentHashRing,
    RouterStats,
    ShardClientSession,
    ShardCrashError,
    ShardResult,
    ShardedServer,
)
from .shm import SegmentCache, SharedArgs, ShmArena, attach_args

__all__ = [
    "BackpressureError",
    "BenchReport",
    "ClientSession",
    "ConsistentHashRing",
    "DependencyFailedError",
    "DeviceLoadLedger",
    "DopiaServer",
    "GraphCycleError",
    "GraphHandle",
    "GraphScheduler",
    "GraphTask",
    "LaunchHandle",
    "Lease",
    "LoadSnapshot",
    "PredictionCache",
    "PredictionStore",
    "SegmentCache",
    "ServeError",
    "ServeResult",
    "ServerStats",
    "SharedArgs",
    "ShardCrashError",
    "ShardResult",
    "ShardedServer",
    "ShmArena",
    "TaskSpace",
    "attach_args",
    "RouterStats",
    "SHARDED_WINDOW",
    "ShardClientSession",
    "run_chained_serve_bench",
    "run_serve_bench",
    "run_sharded_serve_bench",
    "store_namespace",
]
