"""Sharded multi-process serving: router + worker shards + zero-copy buffers.

A single :class:`~repro.serve.server.DopiaServer` saturates around one
CPU's worth of admission/prediction/dispatch work because the GIL
serialises every Python step.  This module scales the serving layer
horizontally: a **router** (this process) consistent-hashes launches on
``(kernel source, kernel name)`` to a pool of **worker shards** — each a
forked process running a full in-process ``DopiaServer`` — while kernel
buffers live in :mod:`multiprocessing.shared_memory` segments
(:mod:`repro.serve.shm`) so the payload crossing the process boundary is
a tiny descriptor, never the data.

Routing and ordering
--------------------
* :class:`ConsistentHashRing` (virtual nodes) pins every distinct kernel
  to one shard, so per-kernel state — compiled malleable forms, jit
  programs, prediction cache lines — is built once and stays hot; shard
  loss moves only that shard's keys.
* The router runs its own :class:`~repro.serve.graph.GraphScheduler`
  over the *shared views* of every submitted launch.  Dependent launches
  whose pending predecessors were all dispatched to the **same shard**
  are forwarded immediately — the shard's in-process scheduler sees the
  same segments (its :class:`~repro.serve.shm.SegmentCache` maps each
  segment exactly once, so overlap is preserved) and orders them locally,
  pipelining worker-to-worker without a router round-trip.  Conflicts
  spanning **different shards** are *escalated*: the launch parks at the
  router and dispatches only after the completion of every predecessor
  has been observed — the scheduler event log is the ordering proof.
* Failure propagates exactly as in-process: a crashed launch (or a
  crashed *shard* — the router watches process sentinels) fails its
  handle, and output-dependents poison with
  :class:`~repro.serve.graph.DependencyFailedError`, never hang.

Buffers
-------
In functional mode every ndarray argument is *adopted* into the router's
:class:`~repro.serve.shm.ShmArena` keyed by its base allocation, so
aliasing NumPy views stay aliased inside the segment, repeat launches on
the same buffers are zero-copy, and hazard ranges are computed on the
views (stable across launches).  Written buffers are mirrored back into
the client's original arrays when their launch completes, preserving the
in-process server's mutate-in-place contract.  In benchmark mode
(``functional=False``) nothing executes, so only scalars cross the wire
— hazard matching still runs at the router on the client's arrays for
parity with the single-process benchmark.

Flow control
------------
Admission is tiered per shard on the in-flight count: below the soft
watermark launches flow; at the soft watermark submitters *block*
(backpressure) until the shard drains; at the hard watermark, with
``admission="shed"``, submission fails fast with
:class:`BackpressureError`.  Completion handling never blocks on
admission, so backpressure cannot deadlock the pipeline.

Warm start
----------
Each shard persists its prediction cache through
:class:`~repro.serve.predstore.PredictionStore` on shutdown and reloads
it on boot, so a freshly forked pool starts with the accumulated
(features, load-bucket) → DoP decisions instead of cold model inference.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from ..analysis.accessmodel import launch_rw_summary
from ..core.collect import WorkloadSpec
from ..ml.base import Estimator
from ..obs import tracer
from ..obs.tracer import export_env_trace
from ..sim.platforms import Platform
from ..workloads.registry import Workload
from .graph import (
    GraphHandle,
    GraphScheduler,
    GraphTask,
    ServeError,
    TaskSpace,
    buffer_ranges,
    topological_order,
)
from .ledger import LOAD_BUCKETS
from .predstore import PredictionStore, store_namespace
from .server import DopiaServer, LaunchHandle
from .shm import SegmentCache, SharedArgs, ShmArena, attach_args, sweep_orphans

__all__ = [
    "BackpressureError", "ConsistentHashRing", "RouterStats",
    "ShardClientSession", "ShardCrashError", "ShardResult", "ShardedServer",
    "workload_ring_key",
]


class ShardCrashError(ServeError):
    """A worker shard terminated while launches were in flight on it."""


class BackpressureError(ServeError):
    """Admission shed: the target shard's queue passed the hard watermark."""


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


def _ring_hash(value: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(value.encode(), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Virtual-node consistent hashing over integer shard ids.

    ``vnodes`` points per shard keep the key space balanced; adding or
    removing one shard remaps only the keys that land on its points
    (about ``1/n`` of the space), which the router relies on to survive
    shard loss without reshuffling every kernel's home.
    """

    def __init__(self, nodes: Iterable[int] = (), vnodes: int = 64):
        self.vnodes = vnodes
        self._points: list[tuple[int, int]] = []   #: sorted (hash, node)
        self._nodes: set[int] = set()
        for node in nodes:
            self.add(node)

    def add(self, node: int) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            self._points.append((_ring_hash(f"shard-{node}/{v}"), node))
        self._points.sort()

    def remove(self, node: int) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def lookup(self, key: str) -> Optional[int]:
        if not self._points:
            return None
        h = _ring_hash(key)
        at = bisect.bisect_right(self._points, (h, -1)) % len(self._points)
        return self._points[at][1]

    def __len__(self) -> int:
        return len(self._nodes)


def workload_ring_key(workload: Workload) -> str:
    """The routing key: a digest of ``(source, kernel name)``."""
    return hashlib.blake2b(
        workload.source.encode() + b"\0" + workload.kernel_name.encode(),
        digest_size=8).hexdigest()


# ---------------------------------------------------------------------------
# Worker-shard process
# ---------------------------------------------------------------------------


class _Stop(Exception):
    """Internal: the router asked this shard to stop."""


def _picklable_error(error: BaseException) -> BaseException:
    """The error itself if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickle failure means substitute
        return ServeError(f"{type(error).__name__}: {error}")


def _shard_main(index: int, in_recv, out_send, cfg: dict) -> None:
    """Entry point of one worker shard (runs in its own process).

    Protocol (batched lists over the in-pipe):

    ``("wl", wl_id, spec)``
        Register a workload; ``spec`` is a pickle-safe
        :class:`~repro.core.collect.WorkloadSpec`.
    ``("launch", req_id, wl_id, session, shared)``
        Serve one launch; ``shared`` is a pickled
        :class:`~repro.serve.shm.SharedArgs` whose views are attached
        through this process's :class:`~repro.serve.shm.SegmentCache`
        (decoded once per distinct blob — see ``attach_cache``).
    ``("forget", names)``
        Evict segment mappings the router retired.
    ``("stop",)``
        Drain and exit.  SIGTERM requests the same graceful retirement,
        with one addition: launch messages already written to the
        in-pipe are read and served first, so a terminated shard never
        strands a dispatched launch.

    Completions flow back over the out-pipe as batched ``("done", req_id,
    cache_hit, service_time_s)`` / ``("err", req_id, error)`` items, and
    a final ``("bye", index, report)`` carries the shard's statistics —
    cache/ledger/graph counters, the scheduler event log, and warm-start
    accounting — before a clean exit.
    """
    # SIGTERM sets a flag rather than raising: the main loop polls, so a
    # drain request interrupts an idle wait within one tick and a busy
    # batch is never abandoned halfway through.
    drain_flag = threading.Event()
    signal.signal(signal.SIGTERM,
                  lambda signum, frame: drain_flag.set())
    segment_cache = SegmentCache(owner=False)
    server = DopiaServer(
        cfg["platform"], cfg["model"],
        workers=cfg["workers"], backend=cfg["backend"],
        functional=cfg["functional"], simulate=cfg["simulate"],
        load_aware=cfg["load_aware"], cache_size=cfg["cache_size"],
        load_buckets=cfg["load_buckets"], dwell_scale=cfg["dwell_scale"],
        dwell_cap_s=cfg["dwell_cap_s"],
    )
    store: Optional[PredictionStore] = None
    warm_loaded = 0
    if cfg.get("namespace"):
        store = PredictionStore(cfg["namespace"], root=cfg.get("store_root"))
        warm_loaded = store.load_into(server.cache)

    workloads: dict[int, Workload] = {}
    sessions: dict[str, Any] = {}
    # Launch messages carry a pickled SharedArgs blob; identical repeated
    # launches (a client's serving loop) send byte-identical blobs, so
    # the decoded + attached args dict is memoised on the blob itself —
    # views onto the same segments stay valid across launches.
    attach_cache: dict[bytes, dict] = {}
    # Completions are sent inline from the finishing worker thread: on a
    # single-core host a dedicated flusher thread costs a condition-
    # variable wake per completion, which dominates the pipe write it
    # would amortise.  Concurrent completions still coalesce: whoever
    # holds send_lock drains everything buffered meanwhile, and threads
    # that find their item already gone skip the syscall.
    out_buf: list = []
    buf_lock = threading.Lock()
    send_lock = threading.Lock()

    def on_done(req_id: int, handle: LaunchHandle) -> None:
        if handle._error is not None:
            item = ("err", req_id, _picklable_error(handle._error))
        else:
            result = handle._result
            item = ("done", req_id, result.cache_hit, result.service_time_s)
        with buf_lock:
            out_buf.append(item)
        with send_lock:
            with buf_lock:
                if not out_buf:
                    return           # a contending completion sent ours
                batch, out_buf[:] = list(out_buf), []
            try:
                out_send.send(batch)
            except (BrokenPipeError, OSError):
                pass

    launches = 0
    graceful = True
    try:
        while True:
            if not in_recv.poll(0.05):
                if drain_flag.is_set():
                    break                # idle and asked to retire
                continue
            batch = in_recv.recv()
            for msg in batch:
                kind = msg[0]
                if kind == "launch":
                    _, req_id, wl_id, session_name, blob = msg
                    session = sessions.get(session_name)
                    if session is None:
                        session = server.session(session_name)
                        sessions[session_name] = session
                    args = attach_cache.get(blob)
                    if args is None:
                        args = attach_args(pickle.loads(blob), segment_cache)
                        if len(attach_cache) >= 4096:
                            attach_cache.clear()
                        attach_cache[blob] = args
                    launches += 1
                    try:
                        handle = session.launch(workloads[wl_id], args)
                    except BaseException as error:  # noqa: BLE001
                        on_done(req_id, _failed_handle(error))
                    else:
                        handle.add_done_callback(
                            lambda h, rid=req_id: on_done(rid, h))
                elif kind == "wl":
                    workloads[msg[1]] = msg[2].to_workload()
                elif kind == "forget":
                    attach_cache.clear()
                    segment_cache.forget(msg[1])
                elif kind == "stop":
                    raise _Stop
            if drain_flag.is_set() and not in_recv.poll():
                break     # SIGTERM: everything sent before it is served
    except (_Stop, EOFError):
        pass
    except BaseException:  # noqa: BLE001 - report the crash via exit code
        graceful = False
        raise
    finally:
        # Repeat SIGTERMs during cleanup are requests we are already
        # honouring; ignore them rather than re-entering the handler.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        # Drain: parked graph launches dispatch and run, leases release,
        # every handle settles (close() fails any that cannot run), and
        # each settlement is sent inline via its done-callback.
        server.close()
        persisted = 0
        if store is not None and graceful:
            try:
                persisted = store.persist(server.cache)
            except OSError:
                pass
        if graceful:
            report = {
                "shard": index,
                "pid": os.getpid(),
                "launches": launches,
                "completed": server.stats.completed,
                "failed": server.stats.failed,
                "dep_failed": server.stats.dep_failed,
                "cache": server.cache.stats(),
                "warm_loaded": warm_loaded,
                "persisted": persisted,
                "ledger": {
                    "peak_cpu_util": server.ledger.peak_cpu_util,
                    "peak_gpu_util": server.ledger.peak_gpu_util,
                    "total_leases": server.ledger.total_leases,
                },
                "graph": server.graph.snapshot(),
                "events": list(server.graph.events),
                "segments_mapped": len(segment_cache),
            }
            with send_lock:
                try:
                    out_send.send([("bye", index, report)])
                except (BrokenPipeError, OSError):
                    pass
        segment_cache.close_all()
        export_env_trace(suffix=f"shard{index}")


def _failed_handle(error: BaseException) -> LaunchHandle:
    handle = LaunchHandle("?", -1)
    handle._fail(error)
    return handle


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


@dataclass
class ShardResult:
    """What the router hands back for one sharded launch.

    Buffers were mutated in shared memory and mirrored back into the
    caller's arrays before this result resolved, so — like the
    in-process :class:`~repro.serve.server.ServeResult` — the launch's
    outputs are visible the moment ``result()`` returns.
    """

    kernel: str
    session: str
    seq: int
    shard: int
    cache_hit: bool
    service_time_s: float
    latency_s: float
    graph_id: Optional[str] = None
    deps: int = 0


@dataclass
class _WorkloadEntry:
    """Router-side registration of one distinct (source, kernel)."""

    wl_id: int
    spec: WorkloadSpec
    ring_key: str
    shard: int
    read_names: tuple
    write_names: tuple
    registered: set = field(default_factory=set)


@dataclass
class _LaunchPlan:
    """Precomputed per-``(workload, args)`` launch state.

    Clients in a serving loop re-launch the same prepared argument dict
    hundreds of times; sharing/adoption, hazard byte-ranges, and the
    pickled wire descriptor are all functions of the *identical* array
    objects, so they are computed once and replayed.  ``values`` holds
    strong references to the argument values — validity is checked by
    object identity against them, which (unlike comparing ``id()``
    snapshots) cannot be fooled by a freed object's id being reused.
    """

    args: dict
    values: tuple
    blob: bytes          #: pre-pickled SharedArgs wire descriptor
    read_ranges: Any
    write_ranges: Any
    mirrors: tuple


@dataclass
class _RouterRequest:
    req_id: int
    handle: LaunchHandle
    node: Any
    entry: _WorkloadEntry
    session: str
    seq: int
    shared: bytes        #: pickled SharedArgs, ready for the wire
    mirrors: tuple
    submitted_at: float
    shard: Optional[int] = None
    #: claimed by a dispatcher (idempotency: submit thread vs collector)
    claimed: bool = False
    #: launch message written to its shard's pipe — set under the shard's
    #: lock, so ``dispatched`` on a dependency proves its message is
    #: ordered *before* any message written afterwards
    dispatched: bool = False


@dataclass
class _Shard:
    index: int
    proc: Any = None
    in_send: Any = None
    out_recv: Any = None
    cond: threading.Condition = field(default_factory=threading.Condition)
    inflight: int = 0
    stopping: bool = False
    alive: bool = True
    bye: bool = False
    report: Optional[dict] = None


@dataclass
class RouterStats:
    """Router-side aggregate counters (lock-protected)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    dep_failed: int = 0
    escalated: int = 0          #: cross-shard hazards parked at the router
    chained_same_shard: int = 0  #: dependents forwarded for shard-local order
    throttled: int = 0          #: submissions that blocked on backpressure
    shed: int = 0               #: submissions rejected at the hard watermark
    rerouted: int = 0           #: dispatches that left a dead shard's keys
    latencies_s: list = field(default_factory=list)
    max_latency_samples: int = 65536
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "dep_failed": self.dep_failed,
                "escalated": self.escalated,
                "chained_same_shard": self.chained_same_shard,
                "throttled": self.throttled,
                "shed": self.shed,
                "rerouted": self.rerouted,
            }


class ShardClientSession:
    """One client's handle on the sharded server (mirrors ``ClientSession``)."""

    def __init__(self, server: "ShardedServer", name: str):
        self.server = server
        self.name = name
        self._seq = itertools.count()

    def launch(
        self,
        workload: Workload,
        args: Optional[dict[str, Any]] = None,
        rng_seed: int = 0,
        *,
        after: Sequence[LaunchHandle] = (),
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
    ) -> LaunchHandle:
        if args is None:
            args = workload.full_args(rng_seed)
        return self.server._submit(self, workload, args, after=after,
                                   reads=reads, writes=writes)


class ShardedServer:
    """Multi-process sharded serving front-end (see module docstring).

    Parameters mirror :class:`~repro.serve.server.DopiaServer` where they
    share meaning; the sharding-specific ones:

    shards:
        Worker-process count.
    workers_per_shard:
        Thread-pool size inside each shard's ``DopiaServer``.
    queue_depth:
        Soft per-shard in-flight watermark — submitters block (tier:
        backpressure) at or above it; the hard watermark is twice this.
    admission:
        ``"block"`` (default) waits below the soft watermark;
        ``"shed"`` raises :class:`BackpressureError` at the hard one.
    warm_start:
        Load/persist the cross-process prediction store
        (:mod:`repro.serve.predstore`).
    store_root:
        Override the prediction-store directory (tests use tmp paths).
    """

    def __init__(
        self,
        platform: Platform,
        model: Estimator,
        *,
        shards: int = 4,
        workers_per_shard: int = 4,
        backend: str | None = None,
        functional: bool = True,
        simulate: bool = True,
        load_aware: bool = True,
        cache_size: int = 1024,
        load_buckets: int = LOAD_BUCKETS,
        dwell_scale: float = 0.0,
        dwell_cap_s: float = 0.050,
        queue_depth: int = 64,
        admission: str = "block",
        warm_start: bool = True,
        store_root: Optional[Path] = None,
        vnodes: int = 64,
        start_method: Optional[str] = None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        if admission not in ("block", "shed"):
            raise ValueError("admission must be 'block' or 'shed'")
        self.platform = platform
        self.functional = functional
        self.queue_depth = queue_depth
        self.admission = admission
        self.stats = RouterStats()
        self.graph = GraphScheduler()
        self.arena = ShmArena()
        self._graph_ids = itertools.count()
        self._req_ids = itertools.count()
        self._wl_ids = itertools.count()
        self._reg_lock = threading.Lock()
        self._requests: dict[int, _RouterRequest] = {}
        self._by_node: dict[int, _RouterRequest] = {}
        self._entries: dict[tuple[str, str], _WorkloadEntry] = {}
        self._rw_cache: dict[tuple[str, str], tuple[tuple, tuple]] = {}
        #: base allocation (ptr, nbytes) -> (client base array, shm view).
        #: The client array is held strongly so its address can never be
        #: recycled for a different buffer while the entry lives — an
        #: address-keyed cache without that pin would hand back a stale
        #: view (and skip the copy-in) when the allocator reuses memory.
        self._adopted: dict[tuple[int, int],
                            tuple[np.ndarray, np.ndarray]] = {}
        self._adopt_lock = threading.Lock()
        #: (wl_id, id(args)) -> _LaunchPlan for repeated identical launches
        self._plans: dict[tuple[int, int], _LaunchPlan] = {}
        self._plan_lock = threading.Lock()
        self._session_lock = threading.Lock()
        self._session_names: set[str] = set()
        self._closed = False
        self._stop_collector = threading.Event()

        namespace = (store_namespace(platform, model) if warm_start else None)
        cfg = {
            "platform": platform, "model": model, "backend": backend,
            "functional": functional, "simulate": simulate,
            "load_aware": load_aware, "cache_size": cache_size,
            "load_buckets": load_buckets, "dwell_scale": dwell_scale,
            "dwell_cap_s": dwell_cap_s, "workers": workers_per_shard,
            "namespace": namespace,
            "store_root": str(store_root) if store_root else None,
        }
        method = start_method or os.environ.get("DOPIA_MP_START") or "fork"
        ctx = get_context(method)
        self.ring = ConsistentHashRing(range(shards), vnodes=vnodes)
        self._shards: list[_Shard] = []
        for index in range(shards):
            in_recv, in_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_main, args=(index, in_recv, out_send, cfg),
                name=f"dopia-shard-{index}", daemon=True)
            proc.start()
            in_recv.close()
            out_send.close()
            shard = _Shard(index=index, proc=proc, in_send=in_send,
                           out_recv=out_recv)
            self._shards.append(shard)
        self._collector = threading.Thread(
            target=self._collector_loop, name="shard-collect", daemon=True)
        self._collector.start()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 60.0) -> None:
        """Drain, stop every shard, collect reports, release all segments."""
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._reg_lock:
                pending = len(self._requests)
            if pending == 0 and self.graph.drained:
                break
            time.sleep(0.005)
        else:
            self._abandon_pending()
        for shard in self._shards:
            with shard.cond:
                shard.stopping = True
                if shard.alive:
                    try:
                        shard.in_send.send([("stop",)])
                    except (BrokenPipeError, OSError):
                        pass
                shard.cond.notify_all()
        for shard in self._shards:
            if shard.proc is not None:
                shard.proc.join(max(0.1, deadline - time.monotonic()))
                if shard.proc.is_alive():
                    shard.proc.terminate()
                    shard.proc.join(5.0)
                if shard.proc.is_alive():
                    shard.proc.kill()
                    shard.proc.join(5.0)
        self._stop_collector.set()
        self._collector.join(timeout=10.0)
        # Late "bye" batches may still sit in the pipes (collector is
        # stopped now, so these reads race nothing).
        for shard in self._shards:
            try:
                while shard.out_recv.poll():
                    for item in shard.out_recv.recv():
                        self._handle_item(shard, item)
            except (EOFError, OSError):
                pass
            try:
                shard.out_recv.close()
                shard.in_send.close()
            except OSError:
                pass
        with self._adopt_lock:
            self._adopted.clear()
        with self._plan_lock:
            self._plans.clear()
        self.arena.close()
        sweep_orphans(self.arena.prefix)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted launch has settled."""
        deadline = (None if timeout is None else time.monotonic() + timeout)
        while True:
            with self._reg_lock:
                pending = len(self._requests)
            if pending == 0 and self.graph.drained:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.002)

    def _abandon_pending(self) -> None:
        """Close-drain timed out: fail everything still unsettled."""
        error = ServeError("sharded server closed before launch completed")
        with self._reg_lock:
            victims = list(self._requests.values())
        for request in victims:
            self._settle_request(request, error=error, cascade=True)

    # -- client surface ------------------------------------------------------

    def session(self, name: Optional[str] = None) -> ShardClientSession:
        with self._session_lock:
            if name is None:
                name = f"client-{len(self._session_names)}"
            if name in self._session_names:
                raise ValueError(f"session name {name!r} already in use")
            self._session_names.add(name)
        return ShardClientSession(self, name)

    def submit_graph(
        self,
        session: ShardClientSession,
        tasks: Union[TaskSpace, Iterable[GraphTask]],
        name: Optional[str] = None,
    ) -> GraphHandle:
        """Submit a whole named DAG (same contract as ``DopiaServer``)."""
        if isinstance(tasks, TaskSpace):
            if name is None:
                name = tasks.name
            task_list = tasks.tasks()
        else:
            task_list = list(tasks)
        order = topological_order(task_list)
        graph_id = f"{name or 'graph'}-{next(self._graph_ids)}"
        by_key: dict[Any, LaunchHandle] = {}
        for task in order:
            args = (task.args if task.args is not None
                    else task.workload.full_args(task.rng_seed))
            by_key[task.key] = self._submit(
                session, task.workload, args,
                after=tuple(by_key[dep] for dep in task.deps),
                graph_id=graph_id, key=task.key,
            )
        return GraphHandle(graph_id,
                           {task.key: by_key[task.key] for task in task_list})

    def submit_chain(self, session: ShardClientSession, chain) -> GraphHandle:
        tasks = [
            GraphTask(key=task.key, workload=task.workload, args=task.args,
                      deps=tuple(task.deps))
            for task in chain.tasks
        ]
        return self.submit_graph(session, tasks, name=chain.name)

    # -- workload registration / routing -------------------------------------

    def _workload_entry(self, workload: Workload) -> _WorkloadEntry:
        key = (workload.source, workload.kernel_name)
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        with self._reg_lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            ring_key = workload_ring_key(workload)
            shard = self.ring.lookup(ring_key)
            if shard is None:
                raise ShardCrashError("no live shards to route to")
            reads, writes = self._rw_names(workload)
            entry = _WorkloadEntry(
                wl_id=next(self._wl_ids),
                spec=WorkloadSpec.from_workload(workload),
                ring_key=ring_key, shard=shard,
                read_names=reads, write_names=writes,
            )
            self._entries[key] = entry
            return entry

    def _rw_names(self, workload: Workload) -> tuple[tuple, tuple]:
        key = (workload.source, workload.kernel_name)
        cached = self._rw_cache.get(key)
        if cached is None:
            try:
                summary = launch_rw_summary(workload.kernel_info())
                cached = (tuple(sorted(summary.reads)),
                          tuple(sorted(summary.writes)))
            except Exception:  # noqa: BLE001 - conservative: everything both
                cached = (None, None)
            self._rw_cache[key] = cached
        return cached

    def _route(self, entry: _WorkloadEntry) -> Optional[int]:
        shard = entry.shard
        if 0 <= shard < len(self._shards) and self._shards[shard].alive:
            return shard
        rerouted = self.ring.lookup(entry.ring_key)
        if rerouted is not None and rerouted != entry.shard:
            entry.shard = rerouted
            with self.stats._lock:
                self.stats.rerouted += 1
        return rerouted

    # -- buffer adoption (functional mode) ------------------------------------

    @staticmethod
    def _base_of(arr: np.ndarray) -> np.ndarray:
        base = arr
        while isinstance(base.base, np.ndarray):
            base = base.base
        return base

    def _adopt(self, arr: np.ndarray) -> np.ndarray:
        """The stable shm view standing in for ``arr`` (aliasing preserved).

        Keyed by the *base allocation*, so two client views of one buffer
        map into the same segment region and stay aliased; the copy-in
        happens once, on first adoption — afterwards the view is the
        authoritative copy and repeat launches are zero-copy.
        """
        if self.arena.owns(arr):
            return arr                       # caller handed us a view already
        if not arr.flags["C_CONTIGUOUS"]:
            # Non-contiguous views can't be expressed as a byte range in a
            # segment; adopt a standalone copy (aliasing with siblings of
            # the same base is not preserved for these).
            base = arr
        else:
            base = self._base_of(arr)
            if not (isinstance(base, np.ndarray)
                    and base.flags["C_CONTIGUOUS"]):
                base = arr
        base_key = (base.__array_interface__["data"][0], int(base.nbytes))
        with self._adopt_lock:
            adopted = self._adopted.get(base_key)
            if adopted is None:
                base_view = self.arena.share_buffers({"b": base})["b"]
                self._adopted[base_key] = (base, base_view)
            else:
                base_view = adopted[1]
        if base is arr:
            return base_view
        delta = (arr.__array_interface__["data"][0] - base_key[0])
        flat = base_view.reshape(-1).view(np.uint8)
        return (flat[delta:delta + int(arr.nbytes)]
                .view(arr.dtype).reshape(arr.shape))

    def _share_args(self, args: dict[str, Any],
                    write_names: Optional[tuple]) -> tuple[
                        SharedArgs, dict[str, Any], list]:
        """(wire descriptor, hazard-matching args, mirror-back pairs)."""
        live: dict[str, Any] = {}
        wire_arrays = []
        scalars = []
        mirrors = []
        for name, value in args.items():
            if isinstance(value, np.ndarray):
                view = self._adopt(value)
                live[name] = view
                seg, offset = self.arena.locate(view)
                wire_arrays.append(
                    (name, seg, value.dtype.str, value.shape, offset))
                if view is not value and (
                        write_names is None or name in write_names):
                    mirrors.append((view, value))
            else:
                live[name] = value
                scalars.append((name, value))
        shared = SharedArgs(arrays=tuple(wire_arrays),
                            scalars=tuple(scalars))
        return shared, live, mirrors

    # -- submission -----------------------------------------------------------

    def _submit(self, session: ShardClientSession, workload: Workload,
                args: dict[str, Any], *,
                after: Sequence[LaunchHandle] = (),
                reads: Optional[Iterable[str]] = None,
                writes: Optional[Iterable[str]] = None,
                graph_id: Optional[str] = None,
                key: Any = None) -> LaunchHandle:
        if self._closed:
            raise ServeError("server is closed")
        entry = self._workload_entry(workload)
        seq = next(session._seq)
        handle = LaunchHandle(session.name, seq)
        handle._client = session
        plan = None
        plan_key = None
        if reads is None and writes is None:
            plan_key = (entry.wl_id, id(args))
            plan = self._plans.get(plan_key)
            if plan is not None and not (
                    plan.args is args
                    and len(plan.values) == len(args)
                    and all(cached is live for cached, live
                            in zip(plan.values, args.values()))):
                plan = None
        if plan is None:
            all_arrays = tuple(name for name, value in args.items()
                               if isinstance(value, np.ndarray))
            read_names = (tuple(reads) if reads is not None
                          else entry.read_names
                          if entry.read_names is not None else all_arrays)
            write_names = (tuple(writes) if writes is not None
                           else entry.write_names
                           if entry.write_names is not None else all_arrays)
            if self.functional:
                shared, hazard_args, mirrors = self._share_args(args,
                                                                write_names)
            else:
                shared = SharedArgs(
                    arrays=(),
                    scalars=tuple((name, value) for name, value in args.items()
                                  if not isinstance(value, np.ndarray)))
                hazard_args, mirrors = args, []
            plan = _LaunchPlan(
                args=args, values=tuple(args.values()),
                blob=pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL),
                read_ranges=buffer_ranges(hazard_args, read_names),
                write_ranges=buffer_ranges(hazard_args, write_names),
                mirrors=tuple(mirrors),
            )
            if plan_key is not None:
                with self._plan_lock:
                    if len(self._plans) >= 4096:
                        self._plans.clear()
                    self._plans[plan_key] = plan
        node = self.graph.make_node(
            f"{session.name}#{seq} {workload.kernel_name}",
            plan.read_ranges, plan.write_ranges,
            graph_id=graph_id, key=key,
        )
        handle.node = node
        request = _RouterRequest(
            req_id=next(self._req_ids), handle=handle, node=node, entry=entry,
            session=session.name, seq=seq, shared=plan.blob,
            mirrors=plan.mirrors, submitted_at=time.perf_counter(),
        )
        node.request = request
        with self._reg_lock:
            self._requests[request.req_id] = request
            self._by_node[node.id] = request
        with self.stats._lock:
            self.stats.submitted += 1
        if tracer.enabled:
            tracer.instant("shard.submit", "serve", session=session.name,
                           seq=seq, kernel=workload.kernel_name,
                           shard=entry.shard)
        explicit = [h.node for h in after if h.node is not None]
        state = self.graph.admit(node, explicit)
        if state == "ready":
            self._dispatch_or_shed(request)
        elif state == "waiting":
            target = entry.shard
            with self._reg_lock:
                deps = [self._by_node.get(dep_id)
                        for dep_id in list(node.pending)]
            if (self.functional
                    and all(dep is not None and dep.dispatched
                            and dep.shard == target for dep in deps)
                    and 0 <= target < len(self._shards)
                    and self._shards[target].alive):
                # Same-shard chain: forward now; the shard's own scheduler
                # sees the same segments and orders the conflict locally.
                with self.stats._lock:
                    self.stats.chained_same_shard += 1
                self._dispatch_or_shed(request)
            else:
                # Cross-shard (or benchmark-mode) hazard: park here until
                # every predecessor's completion is observed.
                with self.stats._lock:
                    self.stats.escalated += 1
                if tracer.enabled:
                    tracer.instant("shard.escalate", "serve",
                                   session=session.name, seq=seq,
                                   kernel=workload.kernel_name,
                                   deps=node.deps)
        else:  # poisoned at admission
            self._settle_request(request, error=node.error, cascade=False)
        return handle

    # -- dispatch -------------------------------------------------------------

    def _dispatch_or_shed(self, request: _RouterRequest) -> None:
        """Dispatch from a submitting client, honouring admission tiers.

        A shed (hard-watermark :class:`BackpressureError`) must not leave
        the admitted node live in the graph with an unsettled handle — it
        is failed and cascaded before the error propagates to the caller.
        """
        try:
            self._dispatch(request, wait=True)
        except BackpressureError as error:
            self._settle_request(request, error=error, cascade=True)
            raise

    def _dispatch(self, request: _RouterRequest, wait: bool) -> None:
        # Claim-once: the submitting thread (same-shard chaining) and the
        # collector (releasing a node whose last dependency just settled)
        # can race to dispatch the same request; the second caller no-ops.
        with self._reg_lock:
            if request.claimed:
                return
            request.claimed = True
        entry = request.entry
        while True:
            target = self._route(entry)
            if target is None:
                self._settle_request(
                    request,
                    error=ShardCrashError("no live shards to route to"),
                    cascade=True)
                return
            shard = self._shards[target]
            if wait and not self._admit_shard(shard):
                continue                    # shard died while we waited
            with shard.cond:
                if not shard.alive:
                    continue
                # Sent inline under the shard lock: a dedicated sender
                # thread costs a wake per launch, and holding the lock
                # across the pipe write is what makes ``dispatched`` on a
                # dependency prove its message precedes ours in the pipe.
                msgs: list = []
                if target not in entry.registered:
                    entry.registered.add(target)
                    msgs.append(("wl", entry.wl_id, entry.spec))
                msgs.append(("launch", request.req_id, entry.wl_id,
                             request.session, request.shared))
                # Assign before the send: the completion can race back
                # through the collector while this thread is still inside
                # ``send``, and it must find ``request.shard`` set (the
                # lock is held across the send, so any later sender still
                # orders its message after this one).
                shard.inflight += 1
                request.shard = target
                request.dispatched = True
                try:
                    shard.in_send.send(msgs)
                except (BrokenPipeError, OSError):
                    pass        # death handling is the collector's job
                # Still under the lock: the collector takes it again in
                # ``_shard_done`` before logging the completion, so the
                # node's ``start`` event always precedes its ``done``.
                self.graph.note_start(request.node)
            return

    def _admit_shard(self, shard: _Shard) -> bool:
        """Admission tiers; returns False if the shard died while blocked."""
        soft = self.queue_depth
        hard = soft * 2
        with shard.cond:
            if shard.inflight < soft:
                return shard.alive
            if self.admission == "shed" and shard.inflight >= hard:
                with self.stats._lock:
                    self.stats.shed += 1
                raise BackpressureError(
                    f"shard {shard.index} saturated "
                    f"({shard.inflight} in flight >= {hard})")
            with self.stats._lock:
                self.stats.throttled += 1
            while shard.alive and shard.inflight >= soft:
                shard.cond.wait(timeout=0.5)
            return shard.alive

    # -- completion -----------------------------------------------------------

    def _collector_loop(self) -> None:
        by_sentinel = {shard.proc.sentinel: shard for shard in self._shards}
        while not self._stop_collector.is_set():
            waitables: list = []
            for shard in self._shards:
                if shard.alive:
                    waitables.append(shard.out_recv)
                    waitables.append(shard.proc.sentinel)
            if not waitables:
                return
            for obj in connection.wait(waitables, timeout=0.25):
                shard = by_sentinel.get(obj)
                if shard is not None:        # a process exited
                    self._on_shard_exit(shard)
                    continue
                shard = next(s for s in self._shards if s.out_recv is obj)
                try:
                    while obj.poll():
                        for item in obj.recv():
                            self._handle_item(shard, item)
                except (EOFError, OSError):
                    self._on_shard_exit(shard)

    def _handle_item(self, shard: _Shard, item: tuple) -> None:
        kind = item[0]
        if kind == "done":
            self._settle_done(item[1], cache_hit=item[2],
                              service_time_s=item[3])
        elif kind == "err":
            self._settle_err(item[1], item[2])
        elif kind == "bye":
            shard.bye = True
            shard.report = item[2]

    def _shard_done(self, request: _RouterRequest) -> None:
        if request.shard is None:
            return
        shard = self._shards[request.shard]
        with shard.cond:
            shard.inflight = max(0, shard.inflight - 1)
            shard.cond.notify_all()

    def _pop_request(self, req_id: int) -> Optional[_RouterRequest]:
        with self._reg_lock:
            request = self._requests.pop(req_id, None)
            if request is not None:
                self._by_node.pop(request.node.id, None)
            return request

    def _settle_done(self, req_id: int, *, cache_hit: bool,
                     service_time_s: float) -> None:
        request = self._pop_request(req_id)
        if request is None:
            return
        self._shard_done(request)
        for view, client in request.mirrors:
            np.copyto(client, view)
        for ready in self.graph.complete(request.node):
            follower = ready.request
            if follower is not None and not follower.claimed:
                self._dispatch(follower, wait=False)
        latency = time.perf_counter() - request.submitted_at
        result = ShardResult(
            kernel=request.entry.spec.kernel_name,
            session=request.session, seq=request.seq,
            shard=request.shard if request.shard is not None else -1,
            cache_hit=cache_hit, service_time_s=service_time_s,
            latency_s=latency, graph_id=request.node.graph_id,
            deps=request.node.deps,
        )
        with self.stats._lock:
            self.stats.completed += 1
            if len(self.stats.latencies_s) >= self.stats.max_latency_samples:
                self.stats.latencies_s.pop(0)
            self.stats.latencies_s.append(latency)
        request.handle._resolve(result)

    def _settle_err(self, req_id: int, error: BaseException) -> None:
        request = self._pop_request(req_id)
        if request is None:
            return
        self._shard_done(request)
        self._settle_request(request, error=error, cascade=True,
                             popped=True)

    def _settle_request(self, request: _RouterRequest, *,
                        error: BaseException, cascade: bool,
                        popped: bool = False) -> None:
        """Fail one request, optionally cascading through the graph.

        Dispatched dependents are left to their shard's own error path
        (it observed the same hazard and will send its own ``err``);
        router-parked dependents poison here and never run.
        """
        if not popped:
            self._pop_request(request.req_id)
        with self.stats._lock:
            self.stats.failed += 1
            if request.node.state == "poisoned":
                self.stats.dep_failed += 1
        if cascade and request.node.state not in ("failed", "poisoned"):
            ready, poisoned = self.graph.fail(request.node, error)
            for runnable in ready:
                follower = runnable.request
                if follower is not None and not follower.claimed:
                    self._dispatch(follower, wait=False)
            for victim in poisoned:
                victim_req = victim.request
                if victim_req is None or victim_req.claimed:
                    continue      # its shard outcome settles it (done or err)
                self._pop_request(victim_req.req_id)
                with self.stats._lock:
                    self.stats.failed += 1
                    self.stats.dep_failed += 1
                victim_req.handle._fail(victim.error)
        request.handle._fail(error)

    # -- shard death ----------------------------------------------------------

    def _on_shard_exit(self, shard: _Shard) -> None:
        if not shard.alive:
            return
        # Drain any final batches (including "bye") before deciding.
        try:
            while shard.out_recv.poll():
                for item in shard.out_recv.recv():
                    self._handle_item(shard, item)
        except (EOFError, OSError):
            pass
        with shard.cond:
            shard.alive = False
            shard.cond.notify_all()          # release blocked submitters
        self.ring.remove(shard.index)
        if shard.bye:
            # Graceful retirement: the shard drained everything it read.
            # A launch can still be stranded if it was written to the
            # pipe after the shard's last read — fail those too (the
            # victims list below is empty in the common clean case).
            error = ShardCrashError(
                f"shard {shard.index} retired with the launch in flight")
        else:
            error = ShardCrashError(
                f"shard {shard.index} terminated unexpectedly "
                f"(exitcode {shard.proc.exitcode})")
        with self._reg_lock:
            victims = [request for request in self._requests.values()
                       if request.shard == shard.index]
        for request in victims:
            with self._reg_lock:
                if request.req_id not in self._requests:
                    continue                 # settled by an earlier cascade
            self._settle_request(request, error=error, cascade=True)

    # -- reporting ------------------------------------------------------------

    @property
    def shard_reports(self) -> list[dict]:
        """Per-shard "bye" reports (populated as shards retire/close)."""
        return [shard.report for shard in self._shards
                if shard.report is not None]

    def snapshot(self) -> dict:
        """Router counters + graph snapshot (the bench report's block)."""
        return {
            "router": self.stats.snapshot(),
            "graph": self.graph.snapshot(),
            "shards": [
                {
                    "index": shard.index,
                    "alive": shard.alive,
                    "inflight": shard.inflight,
                }
                for shard in self._shards
            ],
            "segments": len(self.arena),
        }
