"""Cross-process prediction store: warm-start the DoP cache from disk.

The per-process :class:`~repro.serve.cache.PredictionCache` makes repeat
launches a dictionary hit — but a freshly forked shard starts cold and
pays full model inference for every distinct (features, geometry, load
bucket) it sees.  KLARAPTOR's argument for dynamic launch-parameter
selection cuts the other way too: the selection *state* is what's
valuable, and it is a pure function of the model, so it can be shared.

This store persists cache entries with the content-addressed shard-store
idiom from :mod:`repro.core.collect`:

``<root>/predictions/<namespace>/<key-hash>.pkl``
    One ``(key, Prediction)`` pair.  The namespace digests the platform
    description **and the pickled model**, so entries can never leak
    across models or platforms — a retrained model gets a fresh, empty
    namespace rather than stale decisions.

Robustness mirrors the collect store: every write is atomic (temp file +
``os.replace``), every read is corruption-safe (a truncated or foreign
file is skipped, and removed when possible), and persisting is
idempotent (the key hash is the filename, so re-writing an entry is a
no-op replace).  Multiple shard processes may persist concurrently
without coordination — last write wins, and both writes carry the same
deterministic value.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Hashable, Optional

from ..ml.base import Estimator
from ..sim.platforms import Platform
from .cache import PredictionCache

__all__ = [
    "PredictionStore", "atomic_replace", "store_namespace",
    "default_store_root",
]

#: Bump when the entry layout changes; part of the namespace digest.
STORE_SCHEMA_VERSION = 1

#: Exceptions that mean "this entry file is unreadable", not "bug".
ENTRY_READ_ERRORS = (OSError, EOFError, pickle.UnpicklingError,
                     AttributeError, ImportError, ValueError, TypeError)


def atomic_replace(directory: Path, name: str, payload: bytes) -> Path:
    """Write ``payload`` to ``directory/name`` atomically.

    The cross-process durability primitive shared by every on-disk store
    in the serving layer (prediction entries here, observation segments in
    :mod:`repro.ml.online.store`): the bytes land in a temp file in the
    same directory and are published with one ``os.replace``, so a reader
    never sees a half-written file and concurrent writers race safely —
    last rename wins, and the loser's bytes were a complete file too.
    """
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        target = directory / name
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def default_store_root() -> Path:
    """``DOPIA_PRED_STORE`` env override, else ``~/.cache/dopia``."""
    env = os.environ.get("DOPIA_PRED_STORE", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "dopia"


def store_namespace(platform: Platform, model: Estimator) -> str:
    """Content address of one (platform, trained model) pair.

    Decisions are deterministic given these two, so the digest is the
    exact validity domain of every stored entry.
    """
    hasher = hashlib.blake2b(digest_size=12)
    hasher.update(repr(STORE_SCHEMA_VERSION).encode())
    hasher.update(repr(sorted(asdict(platform).items())).encode())
    hasher.update(pickle.dumps(model))
    return f"{platform.name}-{hasher.hexdigest()}"


class PredictionStore:
    """Directory-backed (key -> Prediction) map shared across processes."""

    def __init__(self, namespace: str, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.dir = self.root / "predictions" / namespace
        self.loaded = 0
        self.persisted = 0
        self.skipped = 0          #: unreadable entry files seen on load

    @classmethod
    def for_model(cls, platform: Platform, model: Estimator,
                  root: Optional[Path] = None) -> "PredictionStore":
        return cls(store_namespace(platform, model), root=root)

    @staticmethod
    def _entry_name(key: Hashable) -> str:
        digest = hashlib.blake2b(
            pickle.dumps(key, protocol=4), digest_size=16).hexdigest()
        return f"{digest}.pkl"

    # -- write ---------------------------------------------------------------

    def put(self, key: Hashable, value: Any) -> None:
        """Persist one entry atomically (concurrent writers are safe)."""
        payload = pickle.dumps((key, value), protocol=4)
        atomic_replace(self.dir, self._entry_name(key), payload)
        self.persisted += 1

    def persist(self, cache: PredictionCache) -> int:
        """Write every entry currently in ``cache``; returns the count."""
        count = 0
        for key, value in cache.items():
            self.put(key, value)
            count += 1
        return count

    # -- read ----------------------------------------------------------------

    def entries(self) -> list[tuple[Hashable, Any]]:
        """All readable entries (unreadable files skipped and removed)."""
        if not self.dir.is_dir():
            return []
        out = []
        for path in sorted(self.dir.glob("*.pkl")):
            try:
                with open(path, "rb") as fh:
                    key, value = pickle.load(fh)
                out.append((key, value))
            except ENTRY_READ_ERRORS:
                self.skipped += 1
                try:
                    path.unlink()
                except OSError:
                    pass
        return out

    def load_into(self, cache: PredictionCache) -> int:
        """Warm-start ``cache`` from disk; returns entries loaded.

        Loads count as neither hits nor misses — the counters keep
        measuring this process's own traffic.
        """
        count = 0
        for key, value in self.entries():
            cache.put(key, value)
            count += 1
        self.loaded += count
        return count

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*.pkl"))

    def clear(self) -> None:
        if not self.dir.is_dir():
            return
        for path in self.dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
