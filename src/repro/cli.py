"""Command-line interface: ``python -m repro <command>`` (or ``dopia``).

Subcommands mirror the framework's phases:

* ``analyze``   — static analysis of a kernel file: Table-1 features,
  per-operation access classes, and the instantiated profile.
* ``transform`` — print the malleable GPU kernel (Figures 5/6) and the
  generated CPU variant (Figure 7).
* ``train``     — collect the Table-4 training set on a platform and fit a
  model; optionally save it (pickle) and emit the DT as C code (§5.2).
* ``predict``   — pick the best DoP configuration for a kernel launch with
  a trained (or freshly trained) model.
* ``sweep``     — exhaustively simulate all 44 configurations for a kernel
  launch and print the Figure-1-style table.
* ``trace``     — run one registry workload under the interposed runtime
  with tracing on; write the JSONL + Chrome trace-event pair.
* ``stats``     — summarise a JSONL trace written by ``trace`` (or by the
  ``DOPIA_TRACE=<path>`` atexit export).

Example::

    python -m repro analyze examples/kernels/gesummv.cl --arg n=16384 \\
        --global-size 16384 --local-size 256
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
from pathlib import Path

import numpy as np

from .analysis import extract_static_features, profile_kernel
from .analysis.scan import scan_kernel
from .core import DopPredictor, collect_dataset, config_space, measure_workload
from .core.collect import (
    cache_contents,
    clear_cache,
    collect_dataset_with_stats,
    default_jobs,
)
from .core.training import _workloads_fingerprint, default_cache_dir
from .frontend import FrontendError, analyze_kernel, parse_kernel
from .ml import MODEL_FAMILIES, make_model, tree_to_c
from .sim import get_platform
from .transform import make_cpu_kernel, make_malleable
from .workloads import (
    REAL_WORKLOAD_FACTORIES,
    SCALED_REAL_FACTORIES,
    real_workloads,
)
from .workloads.registry import Workload
from .workloads.synthetic import training_workloads


def _parse_scalar(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def _parse_args_option(pairs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--arg expects name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        out[name] = _parse_scalar(value)
    return out


def _load_kernel(path: str, name: str | None):
    try:
        source = Path(path).read_text()
    except OSError as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    try:
        kernel = parse_kernel(source, name)
        return source, analyze_kernel(kernel)
    except FrontendError as error:
        raise SystemExit(f"error: {path}: {error}")


def _sizes(option: str) -> tuple[int, ...]:
    return tuple(int(v) for v in option.split(","))


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_analyze(args: argparse.Namespace) -> int:
    _, info = _load_kernel(args.kernel, args.name)
    features = extract_static_features(info)
    print(f"kernel        : {info.kernel.name}")
    print(f"buffers       : {', '.join(info.buffer_params)}")
    print(f"scalars       : {', '.join(info.scalar_params) or '-'}")
    print("Table-1 code features:")
    for field in ("mem_constant", "mem_continuous", "mem_stride", "mem_random",
                  "arith_int", "arith_float"):
        print(f"  {field:16s} {getattr(features, field)}")
    scan = scan_kernel(info)
    print("memory operations:")
    for op in scan.mem_ops:
        kind = "store" if op.is_store else "load"
        print(f"  {op.buffer:12s} {kind:5s} {op.access.value:10s} depth={op.loop_depth}")
    if args.global_size:
        scalars = _parse_args_option(args.arg)
        profile = profile_kernel(
            info, scalars, args.global_size, args.local_size,
            work_dim=args.work_dim, irregular_trip_hint=args.hint,
        )
        print(f"profile @ global={args.global_size} local={args.local_size}:")
        print(f"  bytes/work-item      {profile.bytes_per_item:,.0f}")
        print(f"  flops/work-item      {profile.flops_per_item:,.0f}")
        print(f"  mem ops/work-item    {profile.mem_ops_per_item:,.0f}")
        print(f"  arithmetic intensity {profile.arithmetic_intensity:.3f} flop/B")
        print(f"  irregular            {profile.irregular}")
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    source, info = _load_kernel(args.kernel, args.name)
    malleable = make_malleable(info.kernel, work_dim=args.work_dim)
    print(f"// malleable GPU kernel (work_dim={args.work_dim})")
    print(malleable.source)
    if args.cpu:
        cpu = make_cpu_kernel(info.kernel, work_dim=args.work_dim)
        print(f"// generated CPU variant")
        print(cpu.source)
    return 0


def _progress_printer(every: int = 100):
    def report(done: int, total: int, key: str) -> None:
        if done == total or done % every == 0:
            print(f"  collected {done}/{total} workloads ({key})", file=sys.stderr)
    return report


def cmd_train(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    jobs = args.jobs or default_jobs()
    print(f"collecting Table-4 training data on {platform.name} "
          f"with {jobs} worker(s) (cached after the first run) ...", file=sys.stderr)
    dataset, stats = collect_dataset_with_stats(
        training_workloads(), platform,
        cache=not args.no_cache, jobs=jobs, progress=_progress_printer(),
    )
    print(f"  {stats.summary()}", file=sys.stderr)
    model = make_model(args.model)
    model.fit(dataset.feature_matrix(), dataset.targets())
    print(f"trained {args.model} on {dataset.n_workloads} x {dataset.n_configs} points")
    if args.output:
        payload = {"platform": platform.name, "model_name": args.model, "model": model}
        Path(args.output).write_bytes(pickle.dumps(payload))
        print(f"model saved to {args.output}")
    if args.emit_c:
        if args.model != "dt":
            raise SystemExit("--emit-c requires --model dt")
        from .analysis.features import FEATURE_NAMES

        Path(args.emit_c).write_text(
            tree_to_c(model, feature_names=list(FEATURE_NAMES))
        )
        print(f"decision tree emitted as C to {args.emit_c}")
    return 0


def _predictor(args: argparse.Namespace) -> DopPredictor:
    platform = get_platform(args.platform)
    if getattr(args, "model_file", None):
        payload = pickle.loads(Path(args.model_file).read_bytes())
        if payload["platform"] != platform.name:
            raise SystemExit(
                f"model was trained for {payload['platform']}, not {platform.name}"
            )
        return DopPredictor(payload["model"], platform)
    dataset = collect_dataset(
        training_workloads(), platform, cache=True,
        jobs=getattr(args, "jobs", None) or default_jobs(),
    )
    model = make_model(args.model)
    model.fit(dataset.feature_matrix(), dataset.targets())
    return DopPredictor(model, platform)


def cmd_predict(args: argparse.Namespace) -> int:
    _, info = _load_kernel(args.kernel, args.name)
    predictor = _predictor(args)
    features = extract_static_features(info)
    prediction = predictor.select(
        features, args.work_dim, args.global_size, args.local_size
    )
    setting = prediction.config.setting
    print(f"kernel   : {info.kernel.name}")
    print(f"platform : {predictor.platform.name}")
    print(f"selected : {setting.cpu_threads} CPU threads, "
          f"{setting.gpu_fraction:.1%} of GPU PEs")
    print(f"inference: {prediction.inference_cost_s * 1e6:.2f} us for 44 configs")
    if args.verbose:
        print("predicted normalised performance per configuration:")
        for config, score in zip(predictor.configs, prediction.scores):
            marker = " <-- selected" if config is prediction.config else ""
            print(f"  cpu={config.cpu_util:4.2f} gpu={config.gpu_util:5.3f} "
                  f"-> {score:6.3f}{marker}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else default_cache_dir()
    if args.cache_command == "key":
        platform = get_platform(args.platform)
        workloads = real_workloads() if args.real else training_workloads()
        print(f"{platform.name}-{_workloads_fingerprint(workloads, platform)}")
        return 0
    if args.cache_command == "clear":
        removed = clear_cache(directory)
        print(f"removed {removed} cache file(s) from {directory}")
        return 0
    # info (default)
    contents = cache_contents(directory)
    print(f"cache dir : {directory}")
    print(f"manifests : {len(contents['manifests'])}")
    print(f"shards    : {len(contents['shards'])}")
    print(f"legacy npz: {len(contents['legacy'])}")
    print(f"size      : {contents['bytes'] / 1e6:.2f} MB")
    for manifest in contents["manifests"]:
        print(f"  {manifest.name}")
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    """Differential run: execute one launch on every interpreter backend
    (scalar oracle, vectorized, jit), compare the output buffers
    bit-for-bit, and report the speedups."""
    from .interp import (
        JitUnsupported,
        KernelExecutor,
        NDRange,
        VectorizedExecutor,
        check_vectorizable,
        compile_cached,
        execution_stats,
        make_executor,
    )

    _, info = _load_kernel(args.kernel, args.name)
    ndrange = NDRange(_launch_sizes(args.global_size, args.work_dim),
                      _launch_sizes(args.local_size, args.work_dim))
    scalars = _parse_args_option(args.arg)
    sizes: dict[str, int] = {}
    for pair in args.buffer or []:
        if "=" not in pair:
            raise SystemExit(f"--buffer expects name=elements, got {pair!r}")
        name, _, count = pair.partition("=")
        sizes[name] = int(count)

    def build_args() -> dict:
        rng = np.random.default_rng(args.seed)
        values: dict = {}
        for param in info.kernel.params:
            if param.type.pointer:
                count = sizes.get(param.name, ndrange.total_work_items)
                if param.type.is_float:
                    values[param.name] = rng.standard_normal(count)
                else:
                    values[param.name] = rng.integers(
                        0, max(1, ndrange.total_work_items), count)
            elif param.name in scalars:
                values[param.name] = scalars[param.name]
            else:
                # a usable default: integer scalars are usually problem
                # sizes, float scalars usually coefficients
                values[param.name] = (
                    1.0 if param.type.is_float else ndrange.total_work_items
                )
        return values

    eligibility = check_vectorizable(info)
    print(f"kernel    : {info.kernel.name}")
    print(f"launch    : global={ndrange.global_size} local={ndrange.local_size}")
    where = getattr(eligibility, "location", None)
    at = f" at {where.line}:{where.column}" if where is not None else ""
    print(f"eligible  : {eligibility.eligible}"
          + (f" ({eligibility.reason}{at})" if eligibility.reason else ""))

    import time as _time

    from .interp import KernelRuntimeError

    scalar_args = build_args()
    started = _time.perf_counter()
    try:
        KernelExecutor(info, scalar_args, ndrange).run()
    except KernelRuntimeError as exc:
        raise SystemExit(
            f"kernel failed on the default inputs: {exc}\n"
            "(size buffers explicitly with --buffer NAME=ELEMENTS; buffers "
            "default to one element per work-item)"
        )
    scalar_s = _time.perf_counter() - started

    vector_args = build_args()
    executor = VectorizedExecutor(info, vector_args, ndrange)
    started = _time.perf_counter()
    executor.run()
    vector_s = _time.perf_counter() - started

    jit_args = build_args()
    jit_s = jit_note = None
    try:
        compiled = compile_cached(info, jit_args, ndrange)
    except JitUnsupported as exc:
        jit_note = f"declined: {exc}"
        jit_args = None
    else:
        jit_executor = make_executor(info, jit_args, ndrange, backend="jit")
        started = _time.perf_counter()
        jit_executor.run()
        jit_s = _time.perf_counter() - started
        notes = [f"compile {compiled.compile_seconds * 1e3:.1f} ms"]
        if compiled.masked:
            notes.append("masked")
        if compiled.oob_elided_by_verdict:
            notes.append("oob-elided-by-verdict")
        if getattr(jit_executor, "used_fallback", False):
            notes.append("fell back to vector")
        jit_note = ", ".join(notes)

    mismatched = [
        name for name in info.buffer_params
        if np.asarray(scalar_args[name]).tobytes()
        != np.asarray(vector_args[name]).tobytes()
        or (jit_args is not None
            and np.asarray(scalar_args[name]).tobytes()
            != np.asarray(jit_args[name]).tobytes())
    ]
    print(f"scalar    : {scalar_s:.4f} s")
    print(f"vector    : {vector_s:.4f} s"
          + (" (fell back to scalar)" if executor.used_fallback else ""))
    if jit_s is not None:
        print(f"jit       : {jit_s:.4f} s ({jit_note})")
    else:
        print(f"jit       : - ({jit_note})")
    if vector_s > 0:
        print(f"speedup   : {scalar_s / vector_s:.1f}x (vector over scalar)")
    if jit_s is not None and jit_s > 0:
        print(f"            {scalar_s / jit_s:.1f}x (jit over scalar), "
              f"{vector_s / jit_s:.1f}x (jit over vector)")
    print(f"identical : {not mismatched}"
          + (f" (mismatch in {', '.join(mismatched)})" if mismatched else ""))
    print(execution_stats.summary(), file=sys.stderr)
    return 1 if mismatched else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static verification over registry workloads and/or kernel files.

    Positional targets are registry workload keys or ``.cl`` paths; no
    targets means every registry workload.  Workloads are verified against
    their real launch geometry (plus, with ``--variants``, their malleable
    GPU and generated CPU transforms); bare files get the
    launch-independent passes unless ``--global-size`` is given.
    """
    from .analysis.diagnostics import Severity, report_to_json
    from .analysis.lint import diff_baseline, lint_kernel_info, lint_workloads
    from .analysis.verify import LaunchSpec
    from .interp.ndrange import NDRange

    # Registry keys contain "/" (e.g. GESUMMV/24/wg8), so a path separator
    # alone does not make a target a file: only a real suffix or an
    # existing path does.
    file_targets = [t for t in args.target or []
                    if Path(t).suffix or Path(t).exists()]
    workload_keys = [t for t in args.target or [] if t not in file_targets]

    reports = []
    if workload_keys or not file_targets:
        try:
            reports.extend(lint_workloads(workload_keys or None,
                                          variants=args.variants))
        except KeyError as error:
            raise SystemExit(f"error: {error.args[0]}")
    for path in file_targets:
        _, info = _load_kernel(path, args.name)
        launch = None
        if args.global_size:
            ndrange = NDRange(_launch_sizes(args.global_size, args.work_dim),
                              _launch_sizes(args.local_size, args.work_dim))
            extents = {}
            for pair in args.buffer or []:
                name, _, count = pair.partition("=")
                extents[name] = int(count)
            buffers = {
                p.name: np.zeros(
                    extents.get(p.name, ndrange.total_work_items))
                for p in info.kernel.params if p.type.pointer
            }
            launch = LaunchSpec.from_args(
                ndrange, {**buffers, **_parse_args_option(args.arg)})
        reports.append(lint_kernel_info(info, name=Path(path).stem,
                                        launch=launch))

    document = report_to_json(reports)
    if args.json:
        print(document, end="")
    else:
        for report in reports:
            print(report.render())

    ratchet = _lint_stats(document, args.allow_unknown) if args.stats else 0

    if args.check:
        try:
            baseline = Path(args.check).read_text()
        except OSError as error:
            raise SystemExit(f"error: cannot read baseline: {error}")
        diff = diff_baseline(document, baseline)
        for line in diff.improved:
            print(f"lint: IMPROVED verdict: {line}", file=sys.stderr)
        for line in diff.removed:
            print(f"lint: removed from baseline: {line}", file=sys.stderr)
        if diff.improved or diff.removed:
            print("lint: baseline is stale; regenerate it with:",
                  file=sys.stderr)
            print(f"lint:   PYTHONPATH=src python -m repro lint "
                  f"{'--variants ' if args.variants else ''}--json "
                  f"> {args.check}", file=sys.stderr)
        if diff.schema_changed:
            print("lint: schema version differs from baseline",
                  file=sys.stderr)
        for line in diff.regressed:
            print(f"lint: REGRESSED verdict: {line}", file=sys.stderr)
        for line in diff.new:
            print(f"lint: NEW diagnostic: {line}", file=sys.stderr)
        if not diff.clean:
            return 1
        print(f"lint: no new diagnostics across {len(reports)} report(s)",
              file=sys.stderr)
        return ratchet
    errors = sum(len(r.by_severity(Severity.ERROR)) for r in reports)
    return 1 if errors else ratchet


def _lint_stats(document_json: str, allowlist_path: Optional[str]) -> int:
    """Per-verdict summary plus the *unknown ratchet*: exit non-zero when
    any ``unknown`` verdict is not excused by the committed allowlist, so
    the soundness envelope can only grow."""
    import json

    from .analysis.lint import unknown_entries, verdict_summary

    document = json.loads(document_json)
    summary = verdict_summary(document)
    for pass_name in sorted(summary):
        counts = ", ".join(
            f"{verdict}={count}"
            for verdict, count in sorted(summary[pass_name].items()))
        print(f"lint: stats: {pass_name}: {counts}", file=sys.stderr)

    unknowns = unknown_entries(document)
    allowed: set[str] = set()
    if allowlist_path:
        try:
            allowed = set(json.loads(Path(allowlist_path).read_text()))
        except OSError as error:
            raise SystemExit(f"error: cannot read allowlist: {error}")
        except ValueError as error:
            raise SystemExit(f"error: malformed allowlist: {error}")
    for key in sorted(allowed - set(unknowns)):
        print(f"lint: allowlist entry no longer unknown (ratchet it): {key}",
              file=sys.stderr)
    unexpected = [key for key in unknowns if key not in allowed]
    for key in unexpected:
        print(f"lint: UNKNOWN verdict outside allowlist: {key}",
              file=sys.stderr)
    if unexpected:
        return 1
    print(f"lint: stats: {len(unknowns)} unknown verdict(s), "
          f"all allowlisted" if unknowns else
          "lint: stats: no unknown verdicts", file=sys.stderr)
    return 0


def _launch_sizes(total: int, work_dim: int) -> tuple[int, ...]:
    if work_dim == 1:
        return (total,)
    side = int(round(total ** (1 / work_dim)))
    return tuple(side for _ in range(work_dim))


def cmd_figures(args: argparse.Namespace) -> int:
    from .report import generate_all

    paths = generate_all(args.out)
    for path in paths:
        print(path)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    source, info = _load_kernel(args.kernel, args.name)
    platform = get_platform(args.platform)
    scalars = _parse_args_option(args.arg)
    global_size = (args.global_size,) if args.work_dim == 1 else tuple(
        int(round(args.global_size ** (1 / args.work_dim)))
        for _ in range(args.work_dim)
    )
    local_size = (args.local_size,) if args.work_dim == 1 else tuple(
        int(round(args.local_size ** (1 / args.work_dim)))
        for _ in range(args.work_dim)
    )
    workload = Workload(
        key=f"cli/{info.kernel.name}",
        source=source,
        kernel_name=info.kernel.name,
        global_size=global_size,
        local_size=local_size,
        scalar_args=scalars,
        irregular_trip_hint=args.hint,
    )
    configs = config_space(platform)
    times = measure_workload(workload, platform, configs)
    order = np.argsort(times)
    print(f"{info.kernel.name} on {platform.name}: all 44 configurations "
          "(fastest first)")
    for rank, index in enumerate(order[: args.top], start=1):
        config = configs[index]
        print(f"  {rank:2d}. cpu={config.setting.cpu_threads} "
              f"gpu={config.gpu_util:5.1%}  {times[index] * 1e3:9.3f} ms")
    best = configs[int(order[0])]
    print(f"best: {best.setting.cpu_threads} CPU threads + "
          f"{best.gpu_util:.1%} GPU ({times.min() * 1e3:.3f} ms)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one registry workload under the Dopia runtime with tracing on.

    Training (or the cached dataset load) happens *before* the tracer is
    enabled, so the trace covers exactly the online phase: program build,
    kernel analysis, prediction over the 44 configurations, functional
    co-execution, and the performance model.
    """
    from . import cl
    from .core.runtime import DopiaRuntime
    from .obs import (
        format_summary,
        summarize,
        tracer,
        write_chrome_trace,
        write_jsonl,
    )

    factories = REAL_WORKLOAD_FACTORIES if args.full else SCALED_REAL_FACTORIES
    if args.workload not in factories:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from: "
            + ", ".join(factories)
        )
    workload = factories[args.workload]()

    platform = get_platform(args.platform)
    jobs = args.jobs or default_jobs()
    print(f"training {args.model} on {platform.name} "
          "(cached after the first run) ...", file=sys.stderr)
    runtime = DopiaRuntime.from_pretrained(
        platform, model_name=args.model, jobs=jobs
    )

    tracer.enable()
    try:
        with cl.interposed(runtime):
            context = cl.create_context(args.platform)
            program = context.create_program_with_source(workload.source).build()
            kernel = program.create_kernel(workload.kernel_name)
            for name, value in workload.full_args(args.seed).items():
                kernel.set_arg(
                    name,
                    context.create_buffer(value)
                    if isinstance(value, np.ndarray) else value,
                )
            queue = cl.create_command_queue(
                context, functional=not args.full
            )
            event = queue.enqueue_nd_range_kernel(
                kernel, workload.global_size, workload.local_size,
                irregular_trip_hint=workload.irregular_trip_hint,
            )
        events = tracer.events()
        counters = dict(tracer.counters)
        dropped = tracer.dropped
    finally:
        tracer.disable()
        tracer.clear()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jsonl = out / f"{args.workload}.trace.jsonl"
    chrome = out / f"{args.workload}.chrome.json"
    write_jsonl(events, jsonl)
    write_chrome_trace(events, chrome, counters)

    print(f"workload : {args.workload} "
          f"(global={workload.global_size} local={workload.local_size})")
    print(f"simulated: {event.simulated_time_s * 1e3:.3f} ms")
    print(f"trace    : {jsonl}")
    print(f"chrome   : {chrome}  (load in chrome://tracing or ui.perfetto.dev)")
    if dropped:
        print(f"warning  : ring buffer dropped {dropped} event(s)", file=sys.stderr)
    print(format_summary(summarize(events)))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarise a JSONL trace file."""
    from .obs import format_summary, read_jsonl, summarize

    try:
        events = read_jsonl(args.trace)
    except OSError as error:
        raise SystemExit(f"error: cannot read {args.trace}: {error}")
    except ValueError as error:
        raise SystemExit(f"error: {args.trace} is not a JSONL trace: {error}")
    print(f"trace    : {args.trace}")
    print(format_summary(summarize(events)))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Backend micro-benchmark with a committed-baseline regression guard.

    Times the scalar / vector / jit tiers on representative registry
    kernels, checks bit-identity, and prints the table.  ``--out`` writes
    the JSON report; ``--update-baseline`` refreshes the committed
    ``BENCH_backend.json``; ``--check`` replays against a baseline and
    fails when any speedup drops below ``--check-ratio`` of it (the CI
    ``perf`` lane).
    """
    import json

    from .interp.bench import backend_bench, compare_reports

    payload = backend_bench(repeats=args.repeats)

    header = (f"{'kernel':10s} {'items':>7s} {'scalar':>9s} {'vector':>9s} "
              f"{'jit':>9s} {'vec-x':>6s} {'jit-x':>6s} {'jit/vec':>7s} "
              f"{'path':>6s}  identical")
    print(header)
    for name, row in payload["kernels"].items():
        print(f"{name:10s} {row['work_items']:7d} {row['scalar_s']:8.4f}s "
              f"{row['vector_s']:8.4f}s {row['jit_s']:8.4f}s "
              f"{row['vector_speedup']:5.1f}x {row['jit_speedup']:5.1f}x "
              f"{row['jit_over_vector']:6.1f}x {row['jit_path']:>6s}  "
              f"{row['identical']}")
    if "geomean_jit_over_vector" in payload:
        print(f"geomean   : {payload['geomean_jit_over_vector']:.2f}x "
              "(jit over vector, uniform-control fast path)")

    broken = [name for name, row in payload["kernels"].items()
              if not row["identical"]]
    if broken:
        raise SystemExit(
            f"error: fast-tier buffers diverged from scalar on {broken}")

    out = args.out
    if args.update_baseline:
        out = args.update_baseline
    if out:
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report    : {out}")

    if args.check:
        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"error: cannot read baseline {args.check}: {error}")
        failures, warnings = compare_reports(
            payload, baseline, args.check_ratio)
        for line in warnings:
            print(f"guard WARN: {line}")
        for line in failures:
            print(f"guard FAIL: {line}")
        if failures:
            raise SystemExit(
                f"error: {len(failures)} backend-speedup regression(s) "
                f"(< {args.check_ratio:.0%} of baseline)")
        print(f"guard     : aggregate speedups within "
              f"{args.check_ratio:.0%} of baseline")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Benchmark the concurrent serving layer: clients x launches.

    Runs a closed-loop load generator against :class:`repro.serve.DopiaServer`
    and prints throughput + latency percentiles.  ``--out`` writes the JSON
    report (the committed ``BENCH_serve.json`` baseline); ``--check`` compares
    the measured throughput against a baseline report and fails below
    ``--check-ratio`` of it (the CI stress-lane regression guard).

    ``--graph`` switches to the chained benchmark instead: every client owns
    ``--chains-per-client`` multi-kernel chains (``--chain``, default FDTD)
    and submits them twice — once as dependent launches with a client-side
    wait between hops, once as a whole graph via ``submit_chain`` — and the
    report records the graph-over-sync speedup plus bit-identity against a
    serial oracle.  With ``--out`` the chained report is merged under the
    top-level ``"chained"`` key, preserving the flat-bench ``"runs"`` (and
    vice versa).

    ``--shards N`` switches to the sharded multi-process benchmark: clients
    drive :class:`repro.serve.ShardedServer` with a pipelined window per
    client, and the report (merged under ``"sharded"[str(N)]``) carries
    per-shard blocks plus router counters.  Unless ``--no-verify``, an
    untimed functional pass re-runs every workload and two chains through
    the sharded data path and asserts bit-identity against the serial
    oracle.  ``--check`` guards against the matching shard count in the
    baseline's ``"sharded"`` dict.
    """
    import json

    from .core.runtime import DopiaRuntime
    from .serve import run_serve_bench
    from .serve.bench import run_chained_serve_bench, run_sharded_serve_bench
    from .workloads import SCALED_REAL_FACTORIES

    def merge_out(path: str, payload: dict, *, keep: tuple[str, ...]) -> None:
        """Write ``payload`` to ``path``, carrying over baseline keys in
        ``keep`` from any existing report so the flat, chained, and sharded
        benches can update one BENCH_serve.json without clobbering each
        other.  The ``"sharded"`` key is a dict of reports by shard count
        and is merged entry-wise."""
        target = Path(path)
        if target.exists():
            try:
                previous = json.loads(target.read_text())
            except ValueError:
                previous = {}
            for key in keep:
                if key not in previous:
                    continue
                if key == "sharded" and key in payload:
                    merged = dict(previous[key])
                    merged.update(payload[key])
                    payload[key] = merged
                elif key not in payload:
                    payload[key] = previous[key]
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report   : {path}")

    if args.graph:
        platform = get_platform(args.platform)
        jobs = args.jobs or default_jobs()
        print(f"training {args.model} on {platform.name} "
              "(cached after the first run) ...", file=sys.stderr)
        runtime = DopiaRuntime.from_pretrained(
            platform, model_name=args.model, jobs=jobs)
        backend = args.backend or os.environ.get("DOPIA_BACKEND") or "auto"
        clients = max(int(v) for v in args.clients.split(","))
        report = run_chained_serve_bench(
            platform, runtime.predictor.model,
            clients=clients,
            steps=args.steps,
            chain=args.chain,
            grid=args.grid,
            chains_per_client=args.chains_per_client,
            workers=args.workers,
            backend=backend,
        )
        for mode in ("sync", "graph"):
            run = report[mode]
            print(f"{mode:5s}: {run['throughput_lps']:9.1f} launches/s  "
                  f"wall={run['wall_s']:.3f}s "
                  f"p50={run['latency']['p50_ms']:.2f}ms "
                  f"p99={run['latency']['p99_ms']:.2f}ms  "
                  f"bit_identical={run['bit_identical']} "
                  f"drained={run['drained']}")
        print(f"chained {report['chain']} x{report['chains_per_client']} "
              f"@ {report['clients']} clients: "
              f"{report['speedup_graph_over_sync']:.2f}x graph over sync")
        if not report["bit_identical"]:
            raise SystemExit("error: chained bench output diverged from the "
                             "serial oracle (bit_identical=false)")

        if args.out:
            merge_out(args.out, {"chained": report},
                      keep=("runs", "scaling", "sharded"))

        if args.check:
            try:
                baseline = json.loads(Path(args.check).read_text())
            except (OSError, ValueError) as error:
                raise SystemExit(
                    f"error: cannot read baseline {args.check}: {error}")
            reference = baseline.get("chained")
            if reference is None:
                print("guard    : baseline has no 'chained' report; skipping")
                return 0
            ref_tp = reference["graph"]["throughput_lps"]
            measured = report["graph"]["throughput_lps"]
            floor = args.check_ratio * ref_tp
            status = "ok" if measured >= floor else "REGRESSED"
            print(f"guard    : graph mode {measured:.1f} vs baseline "
                  f"{ref_tp:.1f} launches/s (floor {floor:.1f}) {status}")
            if status != "ok":
                raise SystemExit(
                    f"error: chained graph throughput regression "
                    f"(< {args.check_ratio:.0%} of baseline)")
        return 0

    if args.shards:
        platform = get_platform(args.platform)
        jobs = args.jobs or default_jobs()
        print(f"training {args.model} on {platform.name} "
              "(cached after the first run) ...", file=sys.stderr)
        runtime = DopiaRuntime.from_pretrained(
            platform, model_name=args.model, jobs=jobs)
        backend = args.backend or os.environ.get("DOPIA_BACKEND") or "auto"
        clients = max(int(v) for v in args.clients.split(","))
        report = run_sharded_serve_bench(
            platform, runtime.predictor.model,
            shards=args.shards,
            clients=clients,
            launches_per_client=args.launches,
            window=args.window,
            workers_per_shard=args.workers_per_shard,
            backend=backend,
            verify=not args.no_verify,
        )
        print(f"{args.shards} shard(s) x {report['workers_per_shard']} "
              f"workers, {clients} clients (window {report['window']}): "
              f"{report['throughput_lps']:9.1f} launches/s  "
              f"p50={report['latency']['p50_ms']:.2f}ms "
              f"p99={report['latency']['p99_ms']:.2f}ms")
        for block in report["shard_reports"]:
            cache = block["cache"]
            print(f"  shard {block['shard']}: {block['launches']:5d} launches "
                  f"({block['completed']} completed, {block['failed']} failed) "
                  f"cache={cache['hit_rate']:.0%}")
        router = report["router"]
        print(f"router   : escalated={router['escalated']} "
              f"chained_same_shard={router['chained_same_shard']} "
              f"throttled={router['throttled']} shed={router['shed']} "
              f"rerouted={router['rerouted']}")
        if "verify" in report:
            print(f"verify   : bit_identical={report['bit_identical']} "
                  f"({report['verify']['workloads']} workloads, "
                  f"chains {'/'.join(report['verify']['chains'])})")
            if not report["bit_identical"]:
                raise SystemExit("error: sharded bench output diverged from "
                                 "the serial oracle (bit_identical=false)")

        if args.out:
            merge_out(args.out, {"sharded": {str(args.shards): report}},
                      keep=("runs", "scaling", "chained", "sharded"))

        if args.check:
            try:
                baseline = json.loads(Path(args.check).read_text())
            except (OSError, ValueError) as error:
                raise SystemExit(
                    f"error: cannot read baseline {args.check}: {error}")
            reference = baseline.get("sharded", {}).get(str(args.shards))
            if reference is None:
                print(f"guard    : baseline has no sharded[{args.shards}] "
                      "report; skipping")
                return 0
            ref_tp = reference["throughput_lps"]
            measured = report["throughput_lps"]
            floor = args.check_ratio * ref_tp
            status = "ok" if measured >= floor else "REGRESSED"
            print(f"guard    : {args.shards} shard(s) {measured:.1f} vs "
                  f"baseline {ref_tp:.1f} launches/s (floor {floor:.1f}) "
                  f"{status}")
            if status != "ok":
                raise SystemExit(
                    f"error: sharded throughput regression "
                    f"(< {args.check_ratio:.0%} of baseline)")
        return 0

    names = (args.workloads.split(",") if args.workloads
             else list(SCALED_REAL_FACTORIES))
    unknown = [name for name in names if name not in SCALED_REAL_FACTORIES]
    if unknown:
        raise SystemExit(
            f"unknown workload(s) {', '.join(unknown)}; choose from: "
            + ", ".join(SCALED_REAL_FACTORIES))

    platform = get_platform(args.platform)
    jobs = args.jobs or default_jobs()
    print(f"training {args.model} on {platform.name} "
          "(cached after the first run) ...", file=sys.stderr)
    runtime = DopiaRuntime.from_pretrained(
        platform, model_name=args.model, jobs=jobs)

    client_counts = [int(v) for v in args.clients.split(",")]
    backend = args.backend or os.environ.get("DOPIA_BACKEND") or "auto"
    reports = []
    for clients in client_counts:
        report = run_serve_bench(
            platform, runtime.predictor.model,
            clients=clients,
            launches_per_client=args.launches,
            workload_names=names,
            workers=args.workers,
            backend=backend,
            functional=args.functional,
        )
        reports.append(report)
        print(f"{clients:3d} client(s): {report['throughput_lps']:9.1f} "
              f"launches/s  p50={report['latency']['p50_ms']:.2f}ms "
              f"p99={report['latency']['p99_ms']:.2f}ms  "
              f"cache={report['cache']['hit_rate']:.0%}  "
              f"adapted={report['predictions']['adapted']}")

    payload = {"runs": reports}
    if len(reports) > 1:
        base, top = reports[0], reports[-1]
        if base["throughput_lps"] > 0:
            payload["scaling"] = {
                "from_clients": base["clients"],
                "to_clients": top["clients"],
                "speedup": round(
                    top["throughput_lps"] / base["throughput_lps"], 3),
            }
            print(f"scaling {base['clients']} -> {top['clients']} clients: "
                  f"{payload['scaling']['speedup']:.2f}x")

    if args.out:
        merge_out(args.out, payload, keep=("chained", "sharded"))

    if args.check:
        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, ValueError) as error:
            raise SystemExit(f"error: cannot read baseline {args.check}: {error}")
        failures = []
        by_clients = {run["clients"]: run for run in baseline.get("runs", [])}
        for report in reports:
            reference = by_clients.get(report["clients"])
            if reference is None:
                continue
            floor = args.check_ratio * reference["throughput_lps"]
            status = "ok" if report["throughput_lps"] >= floor else "REGRESSED"
            print(f"guard    : {report['clients']} client(s) "
                  f"{report['throughput_lps']:.1f} vs baseline "
                  f"{reference['throughput_lps']:.1f} launches/s "
                  f"(floor {floor:.1f}) {status}")
            if status != "ok":
                failures.append(report["clients"])
        if failures:
            raise SystemExit(
                f"error: throughput regression at {failures} client(s) "
                f"(< {args.check_ratio:.0%} of baseline)")
    return 0


def cmd_retrain(args: argparse.Namespace) -> int:
    """Run the online retraining loop manually (``dopia retrain``).

    Default mode loads the persisted observation store for the platform
    (segments written by serving processes via
    ``ObservationStore.flush``), trains the pretrained prior, and runs
    one drift-detect → refit → shadow-score step, printing the decision.

    ``--check`` runs the deterministic golden-trace replay end-to-end
    instead — planted load shift, drift detection, shadow-scored
    promotion, and a second replay for bit-stability — and exits
    non-zero unless every check passes.  This is the CI entry point; the
    regret report goes to ``--out``.
    """
    import json

    from .ml.online import (
        ObservationStore,
        OnlineConfig,
        OnlineLoop,
        ReplayConfig,
        observation_namespace,
        run_replay,
        train_base,
    )

    if args.check:
        config = ReplayConfig()
        print("training incumbent on the reduced Table-4 slice ...",
              file=sys.stderr)
        model, X, y = train_base(config)
        print("replaying the golden trace (twice, for bit-stability) ...",
              file=sys.stderr)
        first = run_replay(config, model=model, base_X=X, base_y=y)
        second = run_replay(config, model=model, base_X=X, base_y=y)
        report = dict(first)
        report["checks"] = dict(
            first["checks"],
            bit_stable=(first["chosen"] == second["chosen"]
                        and first["decisions"] == second["decisions"]),
        )
        report["pass"] = all(report["checks"].values())
        print(f"drift     : detected at launch {report['drift_detected_at']} "
              f"(shift planted at {config.shift_at})")
        print(f"promotion : at launch {report['promoted_at']} "
              f"({report['promotions']} promoted, "
              f"{report['rejections']} rejected)")
        print(f"regret    : pre={report['pre_promotion_regret']:.4f} "
              f"post={report['post_promotion_regret']:.4f} "
              f"(idle {report['idle_regret']:.4f})")
        for name, ok in report["checks"].items():
            print(f"check     : {name:22s} {'ok' if ok else 'FAILED'}")
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
            print(f"report    : {args.out}")
        if not report["pass"]:
            failed = [k for k, ok in report["checks"].items() if not ok]
            raise SystemExit(
                f"error: golden-trace replay failed: {', '.join(failed)}")
        return 0

    platform = get_platform(args.platform)
    store = ObservationStore(
        observation_namespace(platform.name),
        window=args.window,
        root=Path(args.store) if args.store else None,
    )
    loaded = store.load()
    print(f"observations: {loaded} loaded from {store.dir}")
    if not loaded:
        print("nothing to retrain from; serve with online=True (and flush "
              "the observation store) first")
        return 0

    jobs = args.jobs or default_jobs()
    print(f"training the {args.model} prior on {platform.name} "
          "(cached after the first run) ...", file=sys.stderr)
    dataset = collect_dataset(training_workloads(), platform,
                              cache=True, jobs=jobs)
    X, y = dataset.feature_matrix(), dataset.targets()
    model = make_model(args.model)
    model.fit(X, y)
    predictor = DopPredictor(model, platform)

    loop = OnlineLoop(
        model=model,
        configs_utils=predictor._utils,
        base_X=X,
        base_y=y,
        config=OnlineConfig(),
        store=store,
    )
    decision = loop.step()
    drift = decision.drift
    print(f"drift       : {'DETECTED' if drift.drifted else 'none'} "
          f"(mean regret {drift.mean_regret:.4f} over "
          f"{sum(k.observations for k in drift.kernels)} launches)")
    for kernel in drift.kernels:
        flag = " <- drifted" if kernel.drifted else ""
        print(f"  {kernel.kernel:20s} regret={kernel.mean_regret:.4f} "
              f"obs={kernel.observations} cells={kernel.cells}{flag}")
    if decision.shadow is not None:
        shadow = decision.shadow
        print(f"shadow      : incumbent={shadow.incumbent_regret:.4f} "
              f"candidate={shadow.candidate_regret:.4f} "
              f"margin={shadow.margin} -> "
              f"{'PROMOTE' if shadow.promote else 'reject'} "
              f"({shadow.reason})")
    if args.out:
        payload = {
            "platform": platform.name,
            "observations": store.stats(),
            "drifted": drift.drifted,
            "mean_regret": drift.mean_regret,
            "kernels": [
                {"kernel": k.kernel, "mean_regret": k.mean_regret,
                 "observations": k.observations, "cells": k.cells,
                 "drifted": k.drifted}
                for k in drift.kernels
            ],
            "promoted": decision.promoted,
            "reason": decision.reason,
        }
        if decision.shadow is not None:
            payload["shadow"] = {
                "incumbent_regret": decision.shadow.incumbent_regret,
                "candidate_regret": decision.shadow.candidate_regret,
                "margin": decision.shadow.margin,
            }
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report      : {args.out}")
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dopia",
        description="Dopia (PPoPP'22) reproduction: analyse, transform, and "
                    "schedule OpenCL kernels on simulated integrated processors.",
    )
    parser.add_argument(
        "--backend", choices=("auto", "jit", "vector", "scalar"), default=None,
        help="kernel-execution backend for functional runs (sets "
             "DOPIA_BACKEND; default: auto — trace-compiled NumPy program "
             "where eligible, vectorized batches otherwise, scalar "
             "interpreter as the last resort)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_kernel_options(p, launch=True):
        p.add_argument("kernel", help="path to an OpenCL-C kernel file")
        p.add_argument("--name", help="kernel name (if the file has several)")
        if launch:
            p.add_argument("--global-size", type=int, default=16384,
                           dest="global_size", help="total work-items")
            p.add_argument("--local-size", type=int, default=256,
                           dest="local_size", help="work-items per group")
            p.add_argument("--work-dim", type=int, default=1, choices=(1, 2, 3))
            p.add_argument("--arg", action="append", metavar="NAME=VALUE",
                           help="scalar kernel argument (repeatable)")
            p.add_argument("--hint", type=float, default=None,
                           help="expected trip count of irregular loops")

    p = sub.add_parser("analyze", help="static analysis + optional profile")
    add_kernel_options(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("transform", help="print malleable / CPU variants")
    p.add_argument("kernel")
    p.add_argument("--name")
    p.add_argument("--work-dim", type=int, default=1, choices=(1, 2, 3))
    p.add_argument("--cpu", action="store_true", help="also print the CPU variant")
    p.set_defaults(func=cmd_transform)

    p = sub.add_parser("train", help="collect training data and fit a model")
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--model", default="dt", choices=sorted(MODEL_FAMILIES))
    p.add_argument("--output", help="save the trained model (pickle)")
    p.add_argument("--emit-c", help="emit the decision tree as C code")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for dataset collection "
                        "(default: DOPIA_JOBS or cpu count)")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="select the best DoP for a launch")
    add_kernel_options(p)
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--model", default="dt", choices=sorted(MODEL_FAMILIES))
    p.add_argument("--model-file", help="use a model saved by `train --output`")
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes if training data must be collected")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("cache", help="inspect or manage the dataset cache")
    cache_sub = p.add_subparsers(dest="cache_command")
    pi = cache_sub.add_parser("info", help="show cache location and contents")
    pi.add_argument("--dir", help="cache directory (default: DOPIA_CACHE_DIR)")
    pk = cache_sub.add_parser("key", help="print the dataset fingerprint "
                                          "(used as the CI cache key)")
    pk.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    pk.add_argument("--real", action="store_true",
                    help="fingerprint the 14 real-world workloads instead")
    pk.add_argument("--dir", help=argparse.SUPPRESS)
    pc = cache_sub.add_parser("clear", help="delete all cached shards/manifests")
    pc.add_argument("--dir", help="cache directory (default: DOPIA_CACHE_DIR)")
    p.set_defaults(func=cmd_cache, cache_command="info", dir=None)

    p = sub.add_parser(
        "backends",
        help="differential-test one launch: scalar vs vector vs jit backend",
    )
    add_kernel_options(p)
    p.add_argument("--buffer", action="append", metavar="NAME=ELEMENTS",
                   help="element count for a pointer argument "
                        "(default: total work-items)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the generated input buffers")
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser(
        "lint",
        help="static verification: data races, out-of-bounds accesses, "
             "divergent barriers, vectorizer eligibility",
    )
    p.add_argument("target", nargs="*", metavar="WORKLOAD|FILE",
                   help="registry workload keys and/or .cl files "
                        "(default: every registry workload)")
    p.add_argument("--variants", action="store_true",
                   help="also verify the malleable GPU and generated CPU "
                        "transforms of each workload")
    p.add_argument("--json", action="store_true",
                   help="emit the stable, schema-versioned JSON document")
    p.add_argument("--check", default=None, metavar="PATH",
                   help="diff against a committed baseline (LINT_BASELINE."
                        "json); exit 1 on any new diagnostic or verdict "
                        "regression")
    p.add_argument("--stats", action="store_true",
                   help="print per-pass verdict counts and fail on any "
                        "'unknown' verdict not excused by --allow-unknown")
    p.add_argument("--allow-unknown", default=None, metavar="PATH",
                   dest="allow_unknown",
                   help="JSON list of 'kernel#pass' keys whose unknown "
                        "verdicts are tolerated by --stats "
                        "(LINT_ALLOWLIST.json)")
    p.add_argument("--name", help="kernel name for file targets")
    p.add_argument("--global-size", type=int, default=None, dest="global_size",
                   help="specialize file targets at this launch (default: "
                        "launch-independent passes only)")
    p.add_argument("--local-size", type=int, default=256, dest="local_size")
    p.add_argument("--work-dim", type=int, default=1, choices=(1, 2, 3))
    p.add_argument("--arg", action="append", metavar="NAME=VALUE",
                   help="scalar kernel argument for file targets")
    p.add_argument("--buffer", action="append", metavar="NAME=ELEMENTS",
                   help="buffer extent for file targets "
                        "(default: total work-items)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("figures", help="regenerate the paper's figures as SVG")
    p.add_argument("--out", default="figures", help="output directory")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("sweep", help="simulate all 44 configurations")
    add_kernel_options(p)
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--top", type=int, default=10, help="rows to print")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="trace one registry workload through the interposed runtime",
    )
    p.add_argument("workload", metavar="WORKLOAD",
                   help="registry key (e.g. GESUMMV, SpMV, 2DCONV)")
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--model", default="dt", choices=sorted(MODEL_FAMILIES))
    p.add_argument("--full", action="store_true",
                   help="paper-sized launch, simulation only (default: the "
                        "scaled launch, executed functionally)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the input buffers")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes if training data must be collected")
    p.add_argument("--out", default="traces",
                   help="output directory for the trace pair")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="benchmark the execution backends against each other "
             "(scalar / vector / jit) with a baseline regression guard",
    )
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repetitions per backend; best-of wins "
                        "(default 3)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON report")
    p.add_argument("--check", default=None, metavar="PATH",
                   help="compare speedups against a baseline report "
                        "(BENCH_backend.json) and fail on regression")
    p.add_argument("--check-ratio", type=float, default=0.9,
                   help="minimum acceptable fraction of each baseline "
                        "speedup (default 0.9)")
    p.add_argument("--update-baseline", default=None, metavar="PATH",
                   nargs="?", const="BENCH_backend.json",
                   help="rewrite the committed baseline "
                        "(default path: BENCH_backend.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve-bench",
        help="benchmark the concurrent serving layer (clients x launches)",
    )
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--model", default="dt", choices=sorted(MODEL_FAMILIES))
    p.add_argument("--clients", default="1,8",
                   help="comma-separated client counts to sweep (default 1,8)")
    p.add_argument("--launches", type=int, default=100,
                   help="launches per client (default 100)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads (default: one per client)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated registry kernels (default: all 14)")
    p.add_argument("--functional", action="store_true",
                   help="execute kernels functionally instead of "
                        "simulation-only benchmark mode")
    p.add_argument("--graph", action="store_true",
                   help="run the chained benchmark instead: dependent "
                        "multi-kernel chains submitted as graphs vs "
                        "client-side waits (reports the speedup and "
                        "bit-identity against a serial oracle)")
    p.add_argument("--chain", default="FDTD",
                   choices=("FDTD", "ATAX", "BICG", "MVT"),
                   help="chain workload for --graph (default FDTD)")
    p.add_argument("--steps", type=int, default=8,
                   help="chain steps/reps for --graph (default 8)")
    p.add_argument("--grid", type=int, default=12,
                   help="FDTD grid edge for --graph (default 12)")
    p.add_argument("--chains-per-client", type=int, default=2,
                   help="independent chains each client owns in --graph "
                        "mode (default 2)")
    p.add_argument("--shards", type=int, default=0,
                   help="run the sharded multi-process benchmark with this "
                        "many worker shards instead (0 = off)")
    p.add_argument("--workers-per-shard", type=int, default=8,
                   help="worker threads inside each shard for --shards "
                        "(default 8)")
    p.add_argument("--window", type=int, default=8,
                   help="pipelined launches each client keeps in flight "
                        "in --shards mode (default 8)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the untimed functional bit-identity pass "
                        "after the --shards benchmark")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for cold dataset collection")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON report (e.g. BENCH_serve.json)")
    p.add_argument("--check", default=None, metavar="PATH",
                   help="compare against a baseline report and fail on "
                        "throughput regression")
    p.add_argument("--check-ratio", type=float, default=0.9,
                   help="minimum acceptable fraction of baseline throughput "
                        "(default 0.9)")
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "retrain",
        help="run the online retraining loop (drift -> refit -> shadow "
             "promotion) over persisted observations, or --check the "
             "golden-trace replay",
    )
    p.add_argument("--platform", default="kaveri", choices=("kaveri", "skylake"))
    p.add_argument("--model", default="dt", choices=sorted(MODEL_FAMILIES))
    p.add_argument("--store", default=None, metavar="DIR",
                   help="observation-store root (default: DOPIA_PRED_STORE "
                        "or ~/.cache/dopia)")
    p.add_argument("--window", type=int, default=4096,
                   help="observation window to score (default 4096)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for cold dataset collection")
    p.add_argument("--check", action="store_true",
                   help="run the deterministic golden-trace replay end-to-end "
                        "and fail unless drift is detected, the candidate is "
                        "promoted exactly once, regret improves, and the "
                        "replay is bit-stable")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the regret report JSON "
                        "(e.g. BENCH_retrain.json)")
    p.set_defaults(func=cmd_retrain)

    p = sub.add_parser("stats", help="summarise a JSONL trace file")
    p.add_argument("trace", help="path to a .trace.jsonl file")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        # Environment, not plumbing: every layer (queue, scheduler,
        # runtime) resolves its backend through DOPIA_BACKEND.
        os.environ["DOPIA_BACKEND"] = args.backend
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped to a consumer that exited early (e.g. `| head`);
        # silence the interpreter's stderr complaint about the lost stdout.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
