"""Kernel body scanner: the single AST walk behind all static analyses.

The scanner walks a kernel exactly once and records

* every global-memory operation with its affine address form, access class
  (Table 1), load/store direction, element type, and the symbolic product
  of enclosing-loop trip counts (its per-work-item execution multiplier);
* every arithmetic operation, split into integer and floating point;
* every loop with its (possibly symbolic, possibly irregular) trip count;
* every branch, with flags for data-dependent (divergent) conditions.

Static feature extraction (:mod:`repro.analysis.features`) consumes the
static counts; the simulator profile (:mod:`repro.analysis.profile`)
instantiates the symbolic trip counts with the runtime argument values that
only become available at ``clEnqueueNDRangeKernel`` time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..frontend import ast
from ..frontend.semantics import (
    INT_BUILTINS,
    KernelInfo,
    MATH_BUILTINS,
    SYNC_BUILTINS,
    WORK_ITEM_BUILTINS,
)
from .accessclass import (
    AccessClass,
    AffineEvaluator,
    AffineForm,
    Coeff,
    classify,
    loop_var,
)

_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"})


@dataclass
class TripCount:
    """Symbolic trip count of one loop: ``(bound - start) / step``.

    ``bound`` and ``start`` are affine forms; ``step`` is the per-iteration
    increment as a :class:`Coeff`.  ``irregular`` marks loops whose bound
    depends on loaded data (e.g. the CSR row loop of SpMV) — their counts
    cannot be derived statically and callers fall back to hints.
    ``inclusive`` distinguishes ``<=`` from ``<`` bounds.
    """

    bound: Optional[AffineForm]
    start: Optional[AffineForm]
    step: Coeff
    irregular: bool = False
    inclusive: bool = False

    def evaluate(self, env: dict[str, float], default: float = 1.0) -> float:
        """Numeric trip count under ``env`` (symbol name → value).

        Index-variable-dependent bounds (triangular loops) evaluate the
        bound's constant part only; irregular loops return ``default``.
        """
        if self.irregular or self.bound is None or self.start is None:
            return default
        if self.bound.indirect or self.start.indirect:
            return default
        span = self.bound.const.evaluate(env) - self.start.const.evaluate(env)
        if self.inclusive:
            span += 1.0
        step = abs(self.step.evaluate(env)) or 1.0
        return max(span / step, 0.0)


@dataclass
class MemoryOp:
    """One static global-memory operation site."""

    buffer: str
    is_store: bool
    access: AccessClass
    form: AffineForm
    elem_bytes: int
    elem_is_float: bool
    loop_depth: int
    trips: tuple[TripCount, ...]
    location: object = None

    def executions(self, env: dict[str, float], irregular_default: float = 1.0) -> float:
        """Dynamic executions per work-item: product of enclosing trip counts."""
        total = 1.0
        for trip in self.trips:
            total *= trip.evaluate(env, default=irregular_default)
        return total


@dataclass
class ArithOp:
    """One static arithmetic operation site."""

    is_float: bool
    is_special: bool
    loop_depth: int
    trips: tuple[TripCount, ...]

    def executions(self, env: dict[str, float], irregular_default: float = 1.0) -> float:
        total = 1.0
        for trip in self.trips:
            total *= trip.evaluate(env, default=irregular_default)
        return total


@dataclass
class BranchInfo:
    """One conditional statement in the kernel body."""

    data_dependent: bool
    id_dependent: bool
    loop_depth: int


@dataclass
class LoopRecord:
    """One loop in the kernel body."""

    trip: TripCount
    depth: int
    irregular: bool


@dataclass
class KernelScan:
    """The complete scan result for one kernel."""

    info: KernelInfo
    mem_ops: list[MemoryOp] = field(default_factory=list)
    arith_ops: list[ArithOp] = field(default_factory=list)
    branches: list[BranchInfo] = field(default_factory=list)
    loops: list[LoopRecord] = field(default_factory=list)
    local_mem_ops: int = 0
    atomic_ops: int = 0
    barrier_ops: int = 0

    # -- static counts (Table 1 code features) ------------------------------

    def count_access(self, access: AccessClass) -> int:
        return sum(1 for op in self.mem_ops if op.access is access)

    @property
    def n_arith_int(self) -> int:
        return sum(1 for op in self.arith_ops if not op.is_float)

    @property
    def n_arith_float(self) -> int:
        return sum(1 for op in self.arith_ops if op.is_float)

    @property
    def has_irregular_loop(self) -> bool:
        return any(loop.irregular for loop in self.loops)

    @property
    def n_data_dependent_branches(self) -> int:
        return sum(1 for b in self.branches if b.data_dependent)


_ELEM_BYTES = {
    "char": 1, "uchar": 1, "bool": 1,
    "short": 2, "ushort": 2,
    "int": 4, "uint": 4, "float": 4,
    "long": 8, "ulong": 8, "double": 8, "size_t": 8, "ptrdiff_t": 8,
}


class KernelScanner:
    """Performs the single analysis walk over a kernel body."""

    def __init__(self, info: KernelInfo, _call_depth: int = 0):
        self.info = info
        self.scan = KernelScan(info=info)
        self.env: dict[str, AffineForm] = {}
        self.evaluator = AffineEvaluator(info, self.env)
        self.loop_stack: list[TripCount] = []
        self._loop_serial = itertools.count()
        self._call_depth = _call_depth

    # -- entry point ----------------------------------------------------------

    def run(self) -> KernelScan:
        self._walk_stmt(self.info.kernel.body)
        return self.scan

    # -- helpers ---------------------------------------------------------------

    @property
    def _depth(self) -> int:
        return len(self.loop_stack)

    def _trips(self) -> tuple[TripCount, ...]:
        return tuple(self.loop_stack)

    def _buffer_of(self, expr: ast.Expr) -> Optional[str]:
        """The global/constant buffer name an index chain is rooted at."""
        base = expr
        while isinstance(base, ast.Index):
            base = base.base
        if not isinstance(base, ast.Identifier):
            return None
        symbol = self.info.symbols.lookup(base.name)
        if symbol is None:
            return None
        if symbol.type.pointer and symbol.type.address_space in ("global", "constant"):
            return base.name
        return None

    def _address_form(self, expr: ast.Index) -> AffineForm:
        """Linearised address of an index chain (row-major for 2-D arrays)."""
        # Collect the chain: A[i][j] parses as Index(Index(A, i), j).
        indices: list[ast.Expr] = []
        base: ast.Expr = expr
        while isinstance(base, ast.Index):
            indices.append(base.index)
            base = base.base
        indices.reverse()
        name = base.name if isinstance(base, ast.Identifier) else "<anon>"
        form = AffineForm.literal(0)
        for level, index in enumerate(indices):
            if level > 0:
                # row-major: multiply the partial address by the (unknown)
                # extent of this dimension before adding the next index
                form = form * AffineForm.constant(Coeff.symbol(f"<dim:{name}:{level}>"))
            form = form + self.evaluator.eval(index)
        return form

    def _elem_info(self, buffer: str) -> tuple[int, bool]:
        symbol = self.info.symbols.lookup(buffer)
        if symbol is None:
            return 4, True
        return _ELEM_BYTES.get(symbol.type.name, 4), symbol.type.is_float

    def _record_mem_op(self, expr: ast.Index, is_store: bool) -> None:
        buffer = self._buffer_of(expr)
        if buffer is None:
            # local / private array traffic: cheap, tracked separately
            self.scan.local_mem_ops += 1
            return
        form = self._address_form(expr)
        elem_bytes, elem_is_float = self._elem_info(buffer)
        self.scan.mem_ops.append(
            MemoryOp(
                buffer=buffer,
                is_store=is_store,
                access=classify(form, in_loop=self._depth > 0),
                form=form,
                elem_bytes=elem_bytes,
                elem_is_float=elem_is_float,
                loop_depth=self._depth,
                trips=self._trips(),
                location=expr.location,
            )
        )

    def _record_arith(self, is_float: bool, special: bool = False) -> None:
        self.scan.arith_ops.append(
            ArithOp(
                is_float=is_float,
                is_special=special,
                loop_depth=self._depth,
                trips=self._trips(),
            )
        )

    # -- expression scanning ----------------------------------------------------
    #
    # ``_scan_expr`` recursively counts arithmetic and memory operations.
    # Index nodes reached here are *reads*; assignment targets are handled
    # by ``_scan_assignment`` so stores are counted once.

    def _scan_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.Identifier)):
            return
        if isinstance(expr, ast.Assignment):
            self._scan_assignment(expr)
            return
        if isinstance(expr, ast.Index):
            self._scan_expr(expr.index)
            if isinstance(expr.base, ast.Index):
                self._scan_index_chain_reads(expr.base)
            self._record_mem_op(expr, is_store=False)
            return
        if isinstance(expr, ast.BinaryOp):
            self._scan_expr(expr.left)
            self._scan_expr(expr.right)
            if expr.op in _ARITH_OPS:
                is_float = self.info.type_of(expr).is_float
                self._record_arith(is_float)
            return
        if isinstance(expr, ast.UnaryOp):
            self._scan_expr(expr.operand)
            if expr.op == "-":
                self._record_arith(self.info.type_of(expr).is_float)
            elif expr.op in ("++", "--"):
                self._record_arith(self.info.type_of(expr).is_float)
                self._update_env_incdec(expr.operand, expr.op)
            return
        if isinstance(expr, ast.PostfixOp):
            self._scan_expr(expr.operand)
            self._record_arith(self.info.type_of(expr).is_float)
            self._update_env_incdec(expr.operand, expr.op)
            return
        if isinstance(expr, ast.Conditional):
            self._scan_expr(expr.cond)
            self._scan_expr(expr.then)
            self._scan_expr(expr.otherwise)
            return
        if isinstance(expr, ast.Cast):
            self._scan_expr(expr.operand)
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._scan_expr(arg)
            if expr.name in MATH_BUILTINS:
                self._record_arith(is_float=True, special=True)
            elif expr.name in INT_BUILTINS:
                self._record_arith(is_float=False)
            elif expr.name in SYNC_BUILTINS:
                if expr.name == "barrier":
                    self.scan.barrier_ops += 1
                else:
                    self.scan.atomic_ops += 1
            elif expr.name in self.info.user_functions:
                self._scan_user_call(expr)
            return
        # unknown node kinds are ignored (future extensions)

    def _scan_user_call(self, expr: ast.Call) -> None:
        """Inline-scan a helper function's body in the caller's context.

        The callee's operations execute once per call site, i.e. under the
        caller's current loop multipliers; its parameters are bound to the
        caller's argument affine forms so address patterns flow through.
        Recursion depth is capped (the supported subset has no recursion).
        """
        if self._call_depth >= 4:
            return
        callee = self.info.user_functions[expr.name]
        sub = KernelScanner(callee, _call_depth=self._call_depth + 1)
        sub.scan = self.scan                 # shared op accumulators
        sub.loop_stack = self.loop_stack     # caller's trip multipliers
        for param, arg in zip(callee.kernel.params, expr.args):
            sub.env[param.name] = self.evaluator.eval(arg)
        saved_info = sub.scan.info
        sub.scan.info = callee
        try:
            sub._walk_stmt(callee.kernel.body)
        finally:
            sub.scan.info = saved_info

    def _scan_index_chain_reads(self, expr: ast.Expr) -> None:
        """Scan inner levels of an index chain (their index expressions only).

        For ``A[i][j]`` the inner ``Index(A, i)`` is address computation, not
        a separate load, so only its subscript expressions are scanned.
        """
        while isinstance(expr, ast.Index):
            self._scan_expr(expr.index)
            expr = expr.base

    def _scan_assignment(self, expr: ast.Assignment) -> None:
        self._scan_expr(expr.value)
        target = expr.target
        if isinstance(target, ast.Index):
            self._scan_expr(target.index)
            if isinstance(target.base, ast.Index):
                self._scan_index_chain_reads(target.base)
            if expr.op != "=":
                # compound assignment reads the old value first
                self._record_mem_op(target, is_store=False)
                self._record_arith(self.info.type_of(expr).is_float)
            self._record_mem_op(target, is_store=True)
        elif isinstance(target, ast.Identifier):
            if expr.op != "=":
                self._record_arith(self.info.type_of(expr).is_float)
            self._update_env_assign(target.name, expr)
        elif isinstance(target, ast.UnaryOp) and target.op == "*":
            self._scan_expr(target.operand)

    def _update_env_assign(self, name: str, expr: ast.Assignment) -> None:
        value = self.evaluator.eval(expr.value)
        if expr.op == "=":
            self.env[name] = value
        elif expr.op == "+=":
            self.env[name] = self.env.get(name, AffineForm.opaque()) + value
        elif expr.op == "-=":
            self.env[name] = self.env.get(name, AffineForm.opaque()) - value
        else:
            self.env[name] = AffineForm.tainted(indirect=value.indirect)

    def _update_env_incdec(self, operand: ast.Expr, op: str) -> None:
        if isinstance(operand, ast.Identifier):
            delta = AffineForm.literal(1 if op == "++" else -1)
            self.env[operand.name] = self.env.get(operand.name, AffineForm.opaque()) + delta

    # -- statement walking -----------------------------------------------------

    def _walk_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._walk_stmt(inner)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._scan_expr(decl.init)
                    self.env[decl.name] = self.evaluator.eval(decl.init)
                else:
                    self.env[decl.name] = AffineForm.opaque()
        elif isinstance(stmt, ast.ExprStmt):
            self._scan_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt)
        elif isinstance(stmt, ast.For):
            self._walk_for(stmt)
        elif isinstance(stmt, ast.While):
            self._walk_unbounded_loop(stmt.cond, stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._walk_unbounded_loop(stmt.cond, stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
        # Break / Continue: nothing to record

    def _cond_flags(self, cond: ast.Expr) -> tuple[bool, bool]:
        """(data_dependent, id_dependent) flags of a branch condition."""
        data_dependent = False
        id_dependent = False
        for node in ast.walk(cond):
            if isinstance(node, ast.Index):
                data_dependent = True
            elif isinstance(node, ast.Call) and node.name in WORK_ITEM_BUILTINS:
                id_dependent = True
            elif isinstance(node, ast.Identifier):
                form = self.env.get(node.name)
                if form is not None:
                    if form.indirect:
                        data_dependent = True
                    if form.has_vars:
                        id_dependent = True
        return data_dependent, id_dependent

    def _walk_if(self, stmt: ast.If) -> None:
        self._scan_expr(stmt.cond)
        data_dependent, id_dependent = self._cond_flags(stmt.cond)
        self.scan.branches.append(
            BranchInfo(
                data_dependent=data_dependent,
                id_dependent=id_dependent,
                loop_depth=self._depth,
            )
        )
        self._walk_stmt(stmt.then)
        if stmt.otherwise is not None:
            self._walk_stmt(stmt.otherwise)

    def _extract_iv(self, stmt: ast.For) -> tuple[Optional[str], Optional[AffineForm]]:
        """(name, initial value form) of the loop's induction variable."""
        init = stmt.init
        if isinstance(init, ast.DeclStmt) and len(init.decls) == 1:
            decl = init.decls[0]
            start = (
                self.evaluator.eval(decl.init)
                if decl.init is not None
                else AffineForm.literal(0)
            )
            return decl.name, start
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assignment):
            target = init.expr.target
            if isinstance(target, ast.Identifier):
                return target.name, self.evaluator.eval(init.expr.value)
        return None, None

    def _extract_step(self, stmt: ast.For, iv: str) -> Optional[Coeff]:
        """Per-iteration increment of ``iv``, or ``None`` if unrecognised."""
        step = stmt.step
        if step is None:
            return None
        if isinstance(step, (ast.PostfixOp, ast.UnaryOp)) and step.op in ("++", "--"):
            operand = step.operand
            if isinstance(operand, ast.Identifier) and operand.name == iv:
                return Coeff.of(1 if step.op == "++" else -1)
        if isinstance(step, ast.Assignment) and isinstance(step.target, ast.Identifier):
            if step.target.name != iv:
                return None
            if step.op in ("+=", "-="):
                delta = self.evaluator.eval(step.value)
                if delta.is_index_free and not delta.indirect:
                    return delta.const if step.op == "+=" else -delta.const
            if step.op == "=" and isinstance(step.value, ast.BinaryOp):
                value = step.value
                if (
                    value.op in ("+", "-")
                    and isinstance(value.left, ast.Identifier)
                    and value.left.name == iv
                ):
                    delta = self.evaluator.eval(value.right)
                    if delta.is_index_free and not delta.indirect:
                        return delta.const if value.op == "+" else -delta.const
        return None

    def _extract_bound(
        self, stmt: ast.For, iv: str
    ) -> tuple[Optional[AffineForm], bool, bool]:
        """(bound form, inclusive, data_dependent) from the loop condition."""
        cond = stmt.cond
        if not isinstance(cond, ast.BinaryOp) or cond.op not in ("<", "<=", ">", ">="):
            return None, False, False
        left_is_iv = isinstance(cond.left, ast.Identifier) and cond.left.name == iv
        bound_expr = cond.right if left_is_iv else cond.left
        bound = self.evaluator.eval(bound_expr)
        inclusive = cond.op in ("<=", ">=")
        return bound, inclusive, bound.indirect

    def _walk_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            if isinstance(stmt.init, ast.DeclStmt):
                for decl in stmt.init.decls:
                    if decl.init is not None:
                        self._scan_expr(decl.init)
            elif isinstance(stmt.init, ast.ExprStmt):
                self._scan_expr(stmt.init.expr)
        iv, start = self._extract_iv(stmt)
        step = self._extract_step(stmt, iv) if iv is not None else None
        bound, inclusive, data_dependent = (
            self._extract_bound(stmt, iv) if iv is not None else (None, False, False)
        )
        irregular = data_dependent or iv is None or step is None or bound is None
        trip = TripCount(
            bound=bound,
            start=start,
            step=step if step is not None else Coeff.of(1),
            irregular=irregular,
            inclusive=inclusive,
        )
        depth = self._depth + 1
        self.scan.loops.append(LoopRecord(trip=trip, depth=depth, irregular=irregular))
        saved_iv_form = self.env.get(iv) if iv is not None else None
        if iv is not None:
            var = loop_var(iv, depth, next(self._loop_serial))
            scale = step if step is not None else Coeff.of(1)
            iv_form = AffineForm.variable(var, scale)
            # Carry the start value into the induction variable's form:
            # addresses derived from the counter stay anchored to the
            # per-item base (e.g. CSR row segments).  Starts that cannot
            # be expressed affinely (loaded row pointers) taint the form
            # with an *unknown per-item base* — the pattern relative to
            # the loop stays known, the absolute address does not.
            if start is not None:
                if start.indirect or start.nonaffine:
                    iv_form = AffineForm(
                        vars=dict(iv_form.vars), const=iv_form.const,
                        unknown_base=True,
                    )
                else:
                    iv_form = iv_form + start
            self.env[iv] = iv_form
        self.loop_stack.append(trip)
        try:
            # condition and step expressions execute once per iteration
            if stmt.cond is not None:
                self._scan_expr(stmt.cond)
            if stmt.step is not None:
                self._scan_expr(stmt.step)
            self._walk_stmt(stmt.body)
        finally:
            self.loop_stack.pop()
            if iv is not None:
                if saved_iv_form is not None:
                    self.env[iv] = saved_iv_form
                else:
                    self.env.pop(iv, None)

    def _walk_unbounded_loop(self, cond: ast.Expr, body: ast.Stmt) -> None:
        self._scan_expr(cond)
        data_dependent, _ = self._cond_flags(cond)
        trip = TripCount(bound=None, start=None, step=Coeff.of(1), irregular=True)
        depth = self._depth + 1
        self.scan.loops.append(LoopRecord(trip=trip, depth=depth, irregular=True))
        self.loop_stack.append(trip)
        try:
            self._walk_stmt(body)
        finally:
            self.loop_stack.pop()
        if data_dependent:
            self.scan.branches.append(
                BranchInfo(data_dependent=True, id_dependent=False, loop_depth=depth)
            )


def scan_kernel(info: KernelInfo) -> KernelScan:
    """Run the analysis walk over ``info``'s kernel and return the scan."""
    return KernelScanner(info).run()
