"""Detailed kernel profiles for the architecture simulator.

The 11-feature vector of Table 1 deliberately *summarises* a kernel; the
hardware does not.  To make the reproduction face the paper's real
difficulty — the ML model predicting a machine whose behaviour its features
under-describe (cf. the MVT2/ATAX2 aliasing discussion in §9.4) — the
simulator consumes a strictly richer description extracted from the same
AST: dynamic per-work-item operation counts (loop trip counts evaluated
with the actual scalar arguments), exact stride magnitudes, per-buffer
footprints, and divergence structure.

A :class:`KernelProfile` is produced at enqueue time, when the scalar
argument values and the ND-range are known.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..frontend.semantics import KernelInfo
from .accessclass import AccessClass, stride_magnitude
from .scan import KernelScan, scan_kernel


@dataclass(frozen=True)
class OpProfile:
    """Dynamic view of one memory-operation site, as the hardware sees it.

    ``temporal_stride_elems`` is the address delta (in elements) between
    consecutive executions by the *same* work-item (the innermost-loop
    coefficient); ``warp_stride_elems`` is the delta between *adjacent*
    work-items (the dimension-0 id coefficient).  Together they determine
    GPU coalescing: a small warp stride coalesces across SIMD lanes, a
    zero warp stride broadcasts one address to the whole warp, and a large
    warp stride gives every lane a private stream whose cache line must
    survive in L2 until its next use — the paper's capacity-miss mechanism
    (Figure 3b).  ``shared`` marks operations whose addresses do not depend
    on the work-item identity at all (inter-item reuse, e.g. the ``x``
    vector of Gesummv).
    """

    buffer: str
    access: AccessClass
    is_store: bool
    executions_per_item: float
    elem_bytes: int
    temporal_stride_elems: float
    warp_stride_elems: float
    shared: bool

    @property
    def bytes_per_item(self) -> float:
        return self.executions_per_item * self.elem_bytes


@dataclass(frozen=True)
class ClassTraffic:
    """Per-work-item dynamic memory traffic for one access class."""

    loads: float = 0.0
    stores: float = 0.0
    bytes: float = 0.0

    @property
    def ops(self) -> float:
        return self.loads + self.stores


@dataclass
class KernelProfile:
    """Everything the performance model needs to know about one launch.

    All ``*_per_item`` quantities are dynamic estimates per work-item,
    derived by evaluating each operation site's enclosing-loop trip counts
    under the actual argument environment.
    """

    #: dynamic memory traffic per work-item, keyed by access class
    traffic: dict[AccessClass, ClassTraffic] = field(default_factory=dict)
    #: per-operation detail consumed by the simulator's memory model
    op_profiles: list[OpProfile] = field(default_factory=list)
    #: dynamic arithmetic per work-item
    flops_int_per_item: float = 0.0
    flops_float_per_item: float = 0.0
    special_per_item: float = 0.0
    #: mean stride (elements) over stride-class operations, weighted by count
    mean_stride_elems: float = 0.0
    #: approximate distinct bytes touched by one work-item
    footprint_per_item: float = 0.0
    #: fraction of memory operations that are data-dependent / irregular
    irregular: bool = False
    #: number of data-dependent branch sites (control divergence on GPU)
    divergent_branches: int = 0
    #: work-group shape information
    work_dim: int = 1
    global_size: int = 1
    local_size: int = 1
    uses_barrier: bool = False
    uses_atomics: bool = False

    # -- aggregates used by the machine model -------------------------------

    def class_traffic(self, access: AccessClass) -> ClassTraffic:
        return self.traffic.get(access, ClassTraffic())

    @property
    def mem_ops_per_item(self) -> float:
        return sum(t.ops for t in self.traffic.values())

    @property
    def bytes_per_item(self) -> float:
        return sum(t.bytes for t in self.traffic.values())

    @property
    def flops_per_item(self) -> float:
        return self.flops_int_per_item + self.flops_float_per_item + self.special_per_item

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of raw memory traffic (avoids division by zero)."""
        return self.flops_per_item / max(self.bytes_per_item, 1e-12)

    @property
    def num_work_groups(self) -> int:
        return max(1, self.global_size // max(self.local_size, 1))


def symbol_environment(
    info: KernelInfo,
    scalar_args: dict[str, float],
    global_size: int,
    local_size: int,
    work_dim: int = 1,
) -> dict[str, float]:
    """Build the symbol valuation used to evaluate trip counts and strides.

    Maps scalar kernel parameters to their runtime values and the launch
    symbols produced by the affine evaluator (``<get_local_size:d>`` etc.)
    to the ND-range values.  Per-dimension sizes assume the square-ish
    decomposition used by all paper workloads.
    """
    env: dict[str, float] = {}
    for name in info.scalar_params:
        if name in scalar_args:
            env[name] = float(scalar_args[name])
    per_dim_global = global_size ** (1.0 / work_dim) if work_dim > 1 else float(global_size)
    per_dim_local = local_size ** (1.0 / work_dim) if work_dim > 1 else float(local_size)
    for dim in range(3):
        env[f"<get_global_size:{dim}>"] = per_dim_global if dim < work_dim else 1.0
        env[f"<get_local_size:{dim}>"] = per_dim_local if dim < work_dim else 1.0
        env[f"<get_num_groups:{dim}>"] = (
            per_dim_global / per_dim_local if dim < work_dim else 1.0
        )
        env[f"<get_global_offset:{dim}>"] = 0.0
    env["<opaque>"] = 1.0
    env["<quotient>"] = 1.0
    return env


def _op_profile(op, count: float, env: dict[str, float]) -> OpProfile:
    """Derive the hardware-facing :class:`OpProfile` of one memory op."""
    form = op.form
    if form.indirect or form.nonaffine:
        return OpProfile(
            buffer=op.buffer,
            access=op.access,
            is_store=op.is_store,
            executions_per_item=count,
            elem_bytes=op.elem_bytes,
            temporal_stride_elems=math.inf,
            warp_stride_elems=math.inf,
            shared=False,
        )
    live = [(var, coeff) for var, coeff in form.vars.items() if not coeff.is_zero]
    loop_vars = sorted((v for v, _ in live if v.rank < 0), key=lambda v: v.rank)
    temporal = abs(form.vars[loop_vars[0]].evaluate(env)) if loop_vars else 0.0
    # Coalescing granularity: work-groups are n-D blocks, and the hardware
    # rasterises SIMD batches along whichever dimension gives unit-stride
    # lines their spatial reuse — so the *smallest* per-dimension stride
    # governs effective coalescing.
    id_strides = [
        abs(coeff.evaluate(env))
        for var, coeff in live
        if 100 <= var.rank < 300  # local/global ids; group ids excluded
    ]
    warp = min((s for s in id_strides if s > 0.0), default=0.0)
    shared = all(var.rank < 0 for var, _ in live)
    if form.unknown_base:
        # anchored to an unknown per-work-item base (e.g. a CSR row
        # segment): definitely not shared, and every SIMD lane streams
        # from its own distant region
        shared = False
        if warp == 0.0:
            warp = math.inf
    return OpProfile(
        buffer=op.buffer,
        access=op.access,
        is_store=op.is_store,
        executions_per_item=count,
        elem_bytes=op.elem_bytes,
        temporal_stride_elems=temporal,
        warp_stride_elems=warp,
        shared=shared,
    )


def build_profile(
    scan: KernelScan,
    scalar_args: dict[str, float],
    global_size: int,
    local_size: int,
    work_dim: int = 1,
    irregular_trip_hint: float | None = None,
) -> KernelProfile:
    """Instantiate a :class:`KernelProfile` from a static scan.

    ``irregular_trip_hint`` supplies the expected trip count of loops whose
    bounds are data-dependent (e.g. the nnz-per-row loop of CSR SpMV);
    without a hint such loops count as a single iteration.
    """
    info = scan.info
    env = symbol_environment(info, scalar_args, global_size, local_size, work_dim)
    hint = irregular_trip_hint if irregular_trip_hint is not None else 1.0

    loads: dict[AccessClass, float] = {c: 0.0 for c in AccessClass}
    stores: dict[AccessClass, float] = {c: 0.0 for c in AccessClass}
    nbytes: dict[AccessClass, float] = {c: 0.0 for c in AccessClass}
    stride_weight = 0.0
    stride_total = 0.0
    footprint = 0.0
    op_profiles: list[OpProfile] = []

    for op in scan.mem_ops:
        count = op.executions(env, irregular_default=hint)
        if op.is_store:
            stores[op.access] += count
        else:
            loads[op.access] += count
        nbytes[op.access] += count * op.elem_bytes
        if op.access is AccessClass.STRIDE:
            stride = stride_magnitude(op.form, env)
            if math.isfinite(stride) and stride > 0:
                stride_total += stride * count
                stride_weight += count
        # Footprint: constants touch one element; everything else touches a
        # distinct element per execution (an upper bound for stride/random).
        if op.access is AccessClass.CONSTANT:
            footprint += op.elem_bytes
        else:
            footprint += count * op.elem_bytes
        op_profiles.append(_op_profile(op, count, env))

    flops_int = 0.0
    flops_float = 0.0
    special = 0.0
    for op in scan.arith_ops:
        count = op.executions(env, irregular_default=hint)
        if op.is_special:
            special += count
        elif op.is_float:
            flops_float += count
        else:
            flops_int += count

    traffic = {
        access: ClassTraffic(loads=loads[access], stores=stores[access], bytes=nbytes[access])
        for access in AccessClass
        if loads[access] or stores[access] or nbytes[access]
    }

    return KernelProfile(
        traffic=traffic,
        op_profiles=op_profiles,
        flops_int_per_item=flops_int,
        flops_float_per_item=flops_float,
        special_per_item=special,
        mean_stride_elems=(stride_total / stride_weight) if stride_weight else 0.0,
        footprint_per_item=footprint,
        irregular=scan.has_irregular_loop,
        divergent_branches=scan.n_data_dependent_branches,
        work_dim=work_dim,
        global_size=global_size,
        local_size=local_size,
        uses_barrier=scan.barrier_ops > 0,
        uses_atomics=scan.atomic_ops > 0,
    )


def profile_kernel(
    info: KernelInfo,
    scalar_args: dict[str, float],
    global_size: int,
    local_size: int,
    work_dim: int = 1,
    irregular_trip_hint: float | None = None,
) -> KernelProfile:
    """Scan ``info``'s kernel and instantiate its profile in one call."""
    return build_profile(
        scan_kernel(info),
        scalar_args,
        global_size,
        local_size,
        work_dim,
        irregular_trip_hint,
    )
