"""Affine address analysis and memory-access classification (paper §5.1).

Dopia classifies every memory operation into one of four classes based on
its address pattern — ``constant``, ``continuous``, ``stride``, ``random``
(Table 1).  The classification drives both the ML feature vector and the
coalescing model of the architecture simulator.

The implementation performs a symbolic *affine* analysis: every integer
expression is evaluated into an :class:`AffineForm`, a linear combination

    ``sum_k coeff_k * var_k + const``

over the kernel's *index variables* — loop induction variables and
work-item identifiers — with coefficients that may be literal integers or
symbolic products of scalar kernel parameters (e.g. the ``n`` in
``A[i * n + j]``).  A memory operation is then classified by the
coefficient of its fastest-varying index variable:

* no index variable           → ``constant``  (same address every time)
* fastest coefficient == ±1   → ``continuous`` (unit stride)
* any other affine dependence → ``stride``    (constant non-unit stride)
* indirect (address contains a load) or non-affine → ``random``

"Fastest-varying" uses the paper's temporal order: the innermost enclosing
loop iterates fastest; if the address does not depend on any enclosing
loop, neighbouring work-items provide the variation, with dimension 0
fastest (this is exactly the order that matters for GPU coalescing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..frontend import ast
from ..frontend.semantics import KernelInfo, MATH_BUILTINS, WORK_ITEM_BUILTINS


class AccessClass(enum.Enum):
    """The four address-pattern classes of Table 1."""

    CONSTANT = "constant"
    CONTINUOUS = "continuous"
    STRIDE = "stride"
    RANDOM = "random"


# ---------------------------------------------------------------------------
# Symbolic coefficients
# ---------------------------------------------------------------------------

#: A monomial is a sorted tuple of symbolic-constant names; the empty tuple
#: is the literal-integer monomial.
Monomial = tuple[str, ...]


@dataclass(frozen=True)
class Coeff:
    """A symbolic integer coefficient: a sum of integer-weighted monomials.

    ``terms[()]`` is the pure literal part; other keys are products of
    scalar-parameter names (``("n",)``, ``("nx", "ny")``...).
    """

    terms: tuple[tuple[Monomial, int], ...] = ()

    @staticmethod
    def of(value: int) -> "Coeff":
        return Coeff((((), value),)) if value else Coeff()

    @staticmethod
    def symbol(name: str) -> "Coeff":
        return Coeff((((name,), 1),))

    def _as_dict(self) -> dict[Monomial, int]:
        return dict(self.terms)

    @staticmethod
    def _from_dict(data: dict[Monomial, int]) -> "Coeff":
        items = tuple(sorted((m, c) for m, c in data.items() if c != 0))
        return Coeff(items)

    def __add__(self, other: "Coeff") -> "Coeff":
        data = self._as_dict()
        for monomial, weight in other.terms:
            data[monomial] = data.get(monomial, 0) + weight
        return Coeff._from_dict(data)

    def __neg__(self) -> "Coeff":
        return Coeff(tuple((m, -c) for m, c in self.terms))

    def __sub__(self, other: "Coeff") -> "Coeff":
        return self + (-other)

    def __mul__(self, other: "Coeff") -> "Coeff":
        data: dict[Monomial, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                monomial = tuple(sorted(m1 + m2))
                data[monomial] = data.get(monomial, 0) + c1 * c2
        return Coeff._from_dict(data)

    @property
    def is_zero(self) -> bool:
        return not self.terms

    @property
    def is_literal(self) -> bool:
        """True if the coefficient is a plain integer (possibly zero)."""
        return all(m == () for m, _ in self.terms)

    @property
    def literal(self) -> Optional[int]:
        """The integer value if literal, else ``None``."""
        if not self.terms:
            return 0
        if self.is_literal:
            return self.terms[0][1]
        return None

    @property
    def is_unit(self) -> bool:
        """True if the coefficient is exactly +1 or -1."""
        return self.literal in (1, -1)

    def evaluate(self, env: dict[str, float]) -> float:
        """Numerically evaluate with symbol values from ``env`` (default 1)."""
        total = 0.0
        for monomial, weight in self.terms:
            value = float(weight)
            for name in monomial:
                value *= env.get(name, 1.0)
            total += value
        return total


ZERO = Coeff()
ONE = Coeff.of(1)


# ---------------------------------------------------------------------------
# Index variables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexVar:
    """An index variable with a *rank*: lower rank ⇒ varies faster.

    Ranks: enclosing loops get ranks ``-depth`` (innermost = most negative
    ... wait, innermost loop has the largest depth, so we use ``-depth`` to
    make it the smallest/fastest); work-item ids use ranks 100+dim (local),
    200+dim (global), 300+dim (group) so any loop is faster than any
    work-item dimension, and dimension 0 is fastest among ids.
    """

    name: str
    rank: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


def loop_var(name: str, depth: int, serial: int) -> IndexVar:
    return IndexVar(f"loop{serial}:{name}", -depth)


def local_id_var(dim: int) -> IndexVar:
    return IndexVar(f"lid{dim}", 100 + dim)


def global_id_var(dim: int) -> IndexVar:
    return IndexVar(f"gid{dim}", 200 + dim)


def group_id_var(dim: int) -> IndexVar:
    return IndexVar(f"grp{dim}", 300 + dim)


# ---------------------------------------------------------------------------
# Affine forms
# ---------------------------------------------------------------------------


@dataclass
class AffineForm:
    """A symbolic affine expression over index variables.

    ``indirect`` marks forms whose value involves a memory load (indirect
    addressing); ``nonaffine`` marks products of index variables, divisions
    by variables, and other shapes outside the affine fragment.  Both are
    sticky through arithmetic.
    """

    vars: dict[IndexVar, Coeff] = field(default_factory=dict)
    const: Coeff = ZERO
    indirect: bool = False
    nonaffine: bool = False
    #: the expression is affine *relative to* an unknown per-work-item base
    #: (e.g. a loop counter initialised from a loaded row pointer): the
    #: iteration-to-iteration pattern is known, the absolute address is not
    unknown_base: bool = False

    # -- constructors --------------------------------------------------------

    @staticmethod
    def constant(coeff: Coeff) -> "AffineForm":
        return AffineForm(const=coeff)

    @staticmethod
    def literal(value: int) -> "AffineForm":
        return AffineForm(const=Coeff.of(value))

    @staticmethod
    def variable(var: IndexVar, scale: Coeff = ONE) -> "AffineForm":
        return AffineForm(vars={var: scale})

    @staticmethod
    def opaque() -> "AffineForm":
        """An unknown but loop-invariant value (e.g. an unanalysed local)."""
        return AffineForm(const=Coeff.symbol("<opaque>"))

    @staticmethod
    def tainted(indirect: bool = False) -> "AffineForm":
        return AffineForm(indirect=indirect, nonaffine=not indirect)

    # -- queries ---------------------------------------------------------------

    @property
    def has_vars(self) -> bool:
        return any(not c.is_zero for c in self.vars.values())

    @property
    def is_index_free(self) -> bool:
        return not self.has_vars

    def fastest_var(self) -> Optional[IndexVar]:
        """The fastest-varying (lowest-rank) variable with nonzero coefficient."""
        live = [v for v, c in self.vars.items() if not c.is_zero]
        if not live:
            return None
        return min(live, key=lambda v: v.rank)

    # -- arithmetic ----------------------------------------------------------

    def _merge_flags(self, other: "AffineForm") -> tuple[bool, bool, bool]:
        return (
            self.indirect or other.indirect,
            self.nonaffine or other.nonaffine,
            self.unknown_base or other.unknown_base,
        )

    def __add__(self, other: "AffineForm") -> "AffineForm":
        indirect, nonaffine, unknown = self._merge_flags(other)
        vars_out = dict(self.vars)
        for var, coeff in other.vars.items():
            vars_out[var] = vars_out.get(var, ZERO) + coeff
        return AffineForm(vars_out, self.const + other.const, indirect, nonaffine,
                          unknown)

    def __neg__(self) -> "AffineForm":
        return AffineForm(
            {v: -c for v, c in self.vars.items()}, -self.const, self.indirect,
            self.nonaffine, self.unknown_base,
        )

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + (-other)

    def __mul__(self, other: "AffineForm") -> "AffineForm":
        indirect, nonaffine, unknown = self._merge_flags(other)
        if self.has_vars and other.has_vars:
            # product of two index-dependent values: outside the affine fragment
            return AffineForm(indirect=indirect, nonaffine=True,
                              unknown_base=unknown)
        scalar, linear = (self, other) if other.has_vars else (other, self)
        factor = scalar.const
        vars_out = {v: c * factor for v, c in linear.vars.items()}
        return AffineForm(vars_out, linear.const * factor, indirect, nonaffine,
                          unknown)

    def divided(self, other: "AffineForm") -> "AffineForm":
        """Integer division; exact only for index-free values, else non-affine."""
        indirect, nonaffine, unknown = self._merge_flags(other)
        if self.has_vars or other.has_vars:
            return AffineForm(indirect=indirect, nonaffine=True,
                              unknown_base=unknown)
        return AffineForm(const=Coeff.symbol("<quotient>"), indirect=indirect,
                          nonaffine=nonaffine, unknown_base=unknown)


# ---------------------------------------------------------------------------
# Quotient/remainder derived variables
# ---------------------------------------------------------------------------

#: Rank band for derived quotient/remainder variables: slower than any
#: loop counter (negative ranks) but faster than worklist claims (50) and
#: work-item ids (100+), so they stay per-work-item in the race pairing.
DIVMOD_RANK = 10


@dataclass(frozen=True)
class DivModDef:
    """One ``base / divisor`` + ``base % divisor`` decomposition.

    ``quot`` and ``rem`` are fresh index variables tied together by the
    exact encoding ``base == divisor*quot + rem, 0 <= rem < divisor``,
    which the verifier materialises as solver constraints once the
    divisor resolves to a positive integer at specialization time.  The
    encoding matches C's truncating ``/``/``%`` only for ``base >= 0``;
    the verifier enforces that via the base's interval before trusting
    the pair.
    """

    base: AffineForm
    divisor: Coeff
    quot: IndexVar
    rem: IndexVar


class DivModRegistry:
    """Interns (dividend form, divisor) pairs into shared (q, r) variables.

    ``id / K`` and ``id % K`` in one kernel must map to the *same*
    quotient/remainder pair for the defining equation to tie them
    together — that is the whole point of the encoding.  Keys are the
    structural identity of the dividend's affine form plus the divisor's
    symbolic coefficient, so chained decompositions (a 3-D id split) nest
    naturally: the outer quotient is itself a registered variable and can
    serve as a later dividend.
    """

    def __init__(self):
        self.defs: dict[IndexVar, DivModDef] = {}
        self._by_key: dict[tuple, DivModDef] = {}

    @staticmethod
    def _form_key(form: AffineForm) -> tuple:
        vars_key = tuple(sorted(
            ((v.name, v.rank), c.terms)
            for v, c in form.vars.items() if not c.is_zero))
        return (vars_key, form.const.terms)

    def resolve(self, dividend: AffineForm, divisor_form: AffineForm,
                kind: str) -> Optional[AffineForm]:
        """The q (``kind="div"``) or r (``"mod"``) form, or None to punt.

        Only index-dependent affine dividends with an index-free affine
        divisor are modelled; everything else keeps the legacy
        (non-affine) behaviour so callers outside the verifier see no
        change.
        """
        for form in (dividend, divisor_form):
            if form.indirect or form.nonaffine or form.unknown_base:
                return None
        if divisor_form.has_vars or not dividend.has_vars:
            return None
        divisor = divisor_form.const
        if divisor.is_zero:
            return None
        key = (self._form_key(dividend), divisor.terms)
        definition = self._by_key.get(key)
        if definition is None:
            serial = len(self._by_key)
            definition = DivModDef(
                base=dividend, divisor=divisor,
                quot=IndexVar(f"q{serial}", DIVMOD_RANK),
                rem=IndexVar(f"r{serial}", DIVMOD_RANK),
            )
            self._by_key[key] = definition
            self.defs[definition.quot] = definition
            self.defs[definition.rem] = definition
        return AffineForm.variable(
            definition.quot if kind == "div" else definition.rem)

    def base_vars(self, var: IndexVar) -> list[IndexVar]:
        """Transitive underlying variables of a derived variable."""
        definition = self.defs.get(var)
        if definition is None:
            return [var]
        out: list[IndexVar] = []
        for base_var, coeff in definition.base.vars.items():
            if not coeff.is_zero:
                out.extend(self.base_vars(base_var))
        return out


# ---------------------------------------------------------------------------
# Expression evaluation into affine forms
# ---------------------------------------------------------------------------


class AffineEvaluator:
    """Evaluates integer expressions into :class:`AffineForm` values.

    ``env`` maps local scalar names to their current affine form (forward
    substitution); scalar kernel parameters evaluate to symbolic constants
    named after themselves, so coefficients like the ``n`` in
    ``A[i * n + j]`` remain inspectable.
    """

    def __init__(self, info: KernelInfo, env: dict[str, AffineForm],
                 divmod: Optional[DivModRegistry] = None):
        self.info = info
        self.env = env
        #: opt-in quotient/remainder modelling; ``None`` (the default, used
        #: by feature extraction) keeps ``/``/``%`` of index expressions
        #: non-affine exactly as before
        self.divmod = divmod

    def eval(self, expr: ast.Expr) -> AffineForm:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            return AffineForm.tainted()
        return method(expr)

    # -- leaves ---------------------------------------------------------------

    def _eval_IntLiteral(self, expr: ast.IntLiteral) -> AffineForm:
        return AffineForm.literal(expr.value)

    def _eval_FloatLiteral(self, expr: ast.FloatLiteral) -> AffineForm:
        return AffineForm.tainted()

    def _eval_Identifier(self, expr: ast.Identifier) -> AffineForm:
        if expr.name in self.env:
            return self.env[expr.name]
        symbol = self.info.symbols.lookup(expr.name)
        if symbol is not None and symbol.is_param and not symbol.type.pointer:
            if symbol.type.is_float:
                return AffineForm.tainted()
            return AffineForm.constant(Coeff.symbol(expr.name))
        # Unanalysed local: loop-invariant unknown.
        return AffineForm.opaque()

    # -- operators ---------------------------------------------------------------

    def _eval_BinaryOp(self, expr: ast.BinaryOp) -> AffineForm:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op in ("/", ">>"):
            if expr.op == ">>" and isinstance(expr.right, ast.IntLiteral):
                right = AffineForm.literal(1 << expr.right.value)
            if self.divmod is not None:
                derived = self.divmod.resolve(left, right, "div")
                if derived is not None:
                    return derived
            return left.divided(right)
        if expr.op == "%":
            if self.divmod is not None:
                derived = self.divmod.resolve(left, right, "mod")
                if derived is not None:
                    return derived
            indirect = left.indirect or right.indirect
            return AffineForm(indirect=indirect, nonaffine=True)
        if expr.op == "<<":
            # x << c  ==  x * 2^c when c is a literal
            if isinstance(expr.right, ast.IntLiteral):
                return left * AffineForm.literal(1 << expr.right.value)
            return AffineForm.tainted()
        if expr.op == ",":
            return right
        # comparisons / logical / bitwise: not address-like
        indirect = left.indirect or right.indirect
        return AffineForm(indirect=indirect, nonaffine=True)

    def _eval_UnaryOp(self, expr: ast.UnaryOp) -> AffineForm:
        operand = self.eval(expr.operand)
        if expr.op == "-":
            return -operand
        if expr.op in ("++", "--"):
            return operand
        return AffineForm(indirect=operand.indirect, nonaffine=True)

    def _eval_PostfixOp(self, expr: ast.PostfixOp) -> AffineForm:
        return self.eval(expr.operand)

    def _eval_Cast(self, expr: ast.Cast) -> AffineForm:
        return self.eval(expr.operand)

    def _eval_Conditional(self, expr: ast.Conditional) -> AffineForm:
        then = self.eval(expr.then)
        otherwise = self.eval(expr.otherwise)
        indirect = then.indirect or otherwise.indirect
        return AffineForm(indirect=indirect, nonaffine=True)

    def _eval_Assignment(self, expr: ast.Assignment) -> AffineForm:
        return self.eval(expr.value)

    def _eval_Index(self, expr: ast.Index) -> AffineForm:
        # A loaded value used inside an address ⇒ indirect addressing.
        return AffineForm.tainted(indirect=True)

    def _eval_Call(self, expr: ast.Call) -> AffineForm:
        name = expr.name
        if name in WORK_ITEM_BUILTINS:
            dim = 0
            if expr.args and isinstance(expr.args[0], ast.IntLiteral):
                dim = expr.args[0].value
            if name == "get_global_id":
                return AffineForm.variable(global_id_var(dim))
            if name == "get_local_id":
                return AffineForm.variable(local_id_var(dim))
            if name == "get_group_id":
                return AffineForm.variable(group_id_var(dim))
            # sizes and offsets are launch-time constants
            return AffineForm.constant(Coeff.symbol(f"<{name}:{dim}>"))
        if name in ("atomic_inc", "atomic_dec", "atomic_add", "atomic_sub"):
            return AffineForm.tainted(indirect=True)
        if name in MATH_BUILTINS:
            return AffineForm.tainted()
        return AffineForm.tainted()


def classify(form: AffineForm, in_loop: bool = False) -> AccessClass:
    """Map an address :class:`AffineForm` to its Table-1 access class.

    ``in_loop`` selects the paper's temporal view: operations *inside* a
    loop are classified against the enclosing loop induction variables
    only (rank < 0); an address that does not vary across loop iterations
    — e.g. ``tmp[i]`` inside the ``j`` loop of Gesummv — is ``constant``
    even if it depends on the work-item id.  Operations outside any loop
    are classified spatially, against neighbouring work-items.
    """
    if form.indirect or form.nonaffine:
        return AccessClass.RANDOM
    live = [v for v, c in form.vars.items() if not c.is_zero]
    if in_loop:
        live = [v for v in live if v.rank < 0]
    if not live:
        return AccessClass.CONSTANT
    fastest = min(live, key=lambda v: v.rank)
    coeff = form.vars[fastest]
    if coeff.is_unit:
        return AccessClass.CONTINUOUS
    return AccessClass.STRIDE


def stride_magnitude(form: AffineForm, env: Optional[dict[str, float]] = None) -> float:
    """Numeric stride (elements) of the fastest-varying index variable.

    Symbolic coefficients are evaluated with ``env`` (name → value, default
    1.0 for unknown symbols).  Returns 0.0 for constant accesses and
    ``float('nan')`` for random ones.
    """
    if form.indirect or form.nonaffine:
        return float("nan")
    fastest = form.fastest_var()
    if fastest is None:
        return 0.0
    return abs(form.vars[fastest].evaluate(env or {}))
