"""Guard-aware access model for the static kernel verifier.

:mod:`repro.analysis.scan` walks a kernel once to *count* things; this
module walks it once to *prove* things.  The walk produces an
:class:`AccessModel`: every buffer access with its affine address form,
the stack of control-flow guards it sits under, the loops enclosing it
(including recognised atomic-worklist *claim loops* from the
``gpu_malleable`` / ``cpu_codegen`` rewrites), its barrier phase, and the
declared extents of ``__local`` / private arrays.  The race, OOB and
barrier passes in :mod:`repro.analysis.verify` consume the model.

Soundness conventions
---------------------
Anything the walker cannot express exactly is *demoted*, never guessed:

* accesses inside ``while`` / ``do-while`` bodies, through non-identifier
  roots, or via pointers are marked ``unanalyzable``;
* variables that carry values across loop iterations (read-before-write
  in the body) or are assigned divergently across ``if`` branches are
  re-bound to :meth:`AffineForm.tainted`;
* composite guard negations that cannot be split into comparisons are
  kept only as concrete-evaluation trees (no box tightening).
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Optional

from ..frontend import ast
from ..frontend.semantics import (
    KernelInfo,
    SYNC_BUILTINS,
    WORK_ITEM_BUILTINS,
)
from .accessclass import (
    AffineEvaluator,
    AffineForm,
    DivModRegistry,
    IndexVar,
    loop_var,
)

#: Rank for worklist-claim variables: slower than any loop (<= 0), faster
#: than any work-item id (>= 100), so classification is unaffected.
CLAIM_RANK = 50


def claim_var(name: str, serial: int) -> IndexVar:
    return IndexVar(f"claim{serial}:{name}", CLAIM_RANK)


# ---------------------------------------------------------------------------
# Guard trees: exact concrete evaluation of arbitrary conditions
# ---------------------------------------------------------------------------
#
# A guard tree mirrors the condition expression with affine-form leaves
# snapshotted at walk time (forward substitution applied), so a witness
# assignment of index variables can be checked *exactly* — including the
# non-affine ``lid % mod < alloc`` participation guard of the malleable
# rewrite.  Tree nodes are tuples:
#
#   ("leaf", AffineForm) | ("mod"|"div", l, r) | ("cmp", op, l, r)
#   ("and"|"or", l, r)   | ("not", x)

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _c_div(a: int, b: int) -> Optional[int]:
    if b == 0:
        return None
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> Optional[int]:
    d = _c_div(a, b)
    return None if d is None else a - b * d


@dataclass(frozen=True)
class Guard:
    """One control-flow predicate enclosing an access.

    ``tree`` evaluates the original condition concretely; when the
    condition is a single comparison of affine operands, ``form``/``op``
    give the polarity-normalised constraint ``form op 0`` used for box
    tightening.  ``expect`` is the branch polarity of ``tree``.
    """

    tree: tuple
    expect: bool
    form: Optional[AffineForm]
    op: Optional[str]
    id_dependent: bool
    data_dependent: bool
    location: Any = None


@dataclass(frozen=True)
class ClaimLoop:
    """A recognised atomic-worklist claim loop (Figure 5-7 rewrites).

    ``space`` is the worklist's address space: ``"local"`` claims are
    unique per work-group (gpu_malleable), ``"global"`` claims are unique
    across the whole launch (cpu_codegen).
    """

    var: IndexVar
    worklist: str
    space: str
    bound: AffineForm
    location: Any = None


@dataclass(frozen=True)
class LoopInfo:
    """One ``for`` loop: its iteration-count variable and symbolic range.

    The bound variable counts *iterations from zero*; the induction
    variable's affine form is ``var * step + start``, so witness values
    for ``var`` are always achievable (no step-divisibility concerns).
    """

    var: IndexVar
    start: Optional[AffineForm]
    bound: Optional[AffineForm]
    step: Optional[int]
    op: Optional[str]          # iv OP bound, normalised: < <= > >=
    irregular: bool
    has_break: bool
    claim: Optional[ClaimLoop] = None


@dataclass
class Access:
    """One static buffer-access site with its full proof context."""

    buffer: str
    space: str                  # "global" | "local" | "private"
    is_store: bool
    atomic: bool
    form: AffineForm
    guards: tuple[Guard, ...]
    loops: tuple[LoopInfo, ...]
    phase: int
    location: Any
    unanalyzable: bool = False
    #: For plain ``=`` stores: the affine form of the stored value, when it
    #: could be evaluated.  Lets the race pass recognise idempotent
    #: write/write pairs (every racing item stores the same value).
    value: Optional[AffineForm] = None


@dataclass
class BarrierSite:
    location: Any
    guards: tuple[Guard, ...]
    loops: tuple[LoopInfo, ...]
    divergent: bool
    reasons: tuple[str, ...]


@dataclass
class AccessModel:
    """Everything the verifier passes need, from one AST walk."""

    info: KernelInfo
    kernel: str
    accesses: list[Access] = field(default_factory=list)
    barriers: list[BarrierSite] = field(default_factory=list)
    claim_loops: list[ClaimLoop] = field(default_factory=list)
    local_extents: dict[str, Optional[int]] = field(default_factory=dict)
    private_extents: dict[str, Optional[int]] = field(default_factory=dict)
    #: True when every barrier sits at top level (no guards, no loops):
    #: barrier phases then partition accesses and the race pass may treat
    #: different-phase local pairs as synchronised.
    phases_valid: bool = True
    deref_store: bool = False
    #: interned quotient/remainder variables for ``/``/``%`` of index
    #: expressions; the verifier turns each into an exact defining
    #: equation (``base == K*q + r, 0 <= r < K``) at specialization time
    divmod: DivModRegistry = field(default_factory=DivModRegistry)

    def sync_rank_vars(self, form: AffineForm) -> list[IndexVar]:
        """Variables of ``form`` at or above :data:`CLAIM_RANK`, seeing
        *through* derived quotient/remainder variables to their bases."""
        out = []
        for var, coeff in form.vars.items():
            if coeff.is_zero:
                continue
            for base in self.divmod.base_vars(var):
                if base.rank >= CLAIM_RANK:
                    out.append(base)
        return out


_ATOMIC_BUILTINS = frozenset(
    {"atomic_inc", "atomic_dec", "atomic_add", "atomic_sub"}
)


class _ModelWalker:
    """Single walk of a kernel body building the :class:`AccessModel`."""

    def __init__(
        self,
        info: KernelInfo,
        model: AccessModel,
        call_depth: int = 0,
        loop_serial=None,
    ):
        self.info = info
        self.model = model
        self.env: dict[str, AffineForm] = {}
        self.evaluator = AffineEvaluator(info, self.env, divmod=model.divmod)
        self.guard_stack: list[Guard] = []
        self.loop_stack: list[LoopInfo] = []
        self.buffer_alias: dict[str, Optional[tuple[str, str]]] = {}
        self.in_while = 0
        self._call_depth = call_depth
        self._loop_serial = loop_serial or itertools.count()

    def run(self) -> AccessModel:
        self._walk_block_body([self.info.kernel.body])
        return self.model

    # -- name resolution -----------------------------------------------------

    def _root_of(self, expr: ast.Expr) -> Optional[ast.Identifier]:
        base = expr
        while isinstance(base, ast.Index):
            base = base.base
        return base if isinstance(base, ast.Identifier) else None

    def _space_of(self, name: str) -> Optional[tuple[str, str]]:
        """(space, canonical buffer name) for an access root, or None."""
        if name in self.buffer_alias:
            return self.buffer_alias[name]
        if name in self.model.local_extents:
            return ("local", name)
        if name in self.model.private_extents:
            return ("private", name)
        symbol = self.info.symbols.lookup(name)
        if symbol is not None and symbol.type.pointer:
            space = symbol.type.address_space
            if space in ("global", "constant"):
                return ("global", name)
            if space == "local":
                return ("local", name)
        return None

    # -- guard construction -----------------------------------------------------

    def _guard_tree(self, expr: ast.Expr) -> tuple:
        if isinstance(expr, ast.BinaryOp):
            if expr.op in _CMP_OPS:
                return ("cmp", expr.op, self._guard_tree(expr.left),
                        self._guard_tree(expr.right))
            if expr.op == "&&":
                return ("and", self._guard_tree(expr.left),
                        self._guard_tree(expr.right))
            if expr.op == "||":
                return ("or", self._guard_tree(expr.left),
                        self._guard_tree(expr.right))
            if expr.op == "%":
                return ("mod", self._guard_tree(expr.left),
                        self._guard_tree(expr.right))
            if expr.op == "/":
                return ("div", self._guard_tree(expr.left),
                        self._guard_tree(expr.right))
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            return ("not", self._guard_tree(expr.operand))
        return ("leaf", self.evaluator.eval(expr))

    def _cond_flags(self, cond: ast.Expr) -> tuple[bool, bool]:
        """(id_dependent, data_dependent): does the condition vary across
        work-items / with loaded data?  Uniform-loop counters (rank < 50)
        do not count as divergent."""
        id_dep = False
        data_dep = False
        for node in ast.walk(cond):
            if isinstance(node, ast.Index):
                data_dep = True
            elif isinstance(node, ast.Call) and node.name in WORK_ITEM_BUILTINS:
                if node.name in ("get_global_id", "get_local_id",
                                 "get_group_id"):
                    id_dep = True
            elif isinstance(node, ast.Identifier):
                form = self.env.get(node.name)
                if form is not None:
                    if form.indirect:
                        data_dep = True
                    if self.model.sync_rank_vars(form):
                        id_dep = True
                    if form.unknown_base:
                        data_dep = True
        return id_dep, data_dep

    def _make_guards(self, cond: ast.Expr, expect: bool) -> list[Guard]:
        """Split a branch condition into per-conjunct guards."""
        if isinstance(cond, ast.BinaryOp):
            if cond.op == "&&" and expect:
                return (self._make_guards(cond.left, True)
                        + self._make_guards(cond.right, True))
            if cond.op == "||" and not expect:
                # !(a || b) == !a && !b
                return (self._make_guards(cond.left, False)
                        + self._make_guards(cond.right, False))
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            return self._make_guards(cond.operand, not expect)

        tree = self._guard_tree(cond)
        form = None
        op = None
        if tree[0] == "cmp" and tree[2][0] == "leaf" and tree[3][0] == "leaf":
            left, right = tree[2][1], tree[3][1]
            diff = left - right
            if not (diff.indirect or diff.nonaffine or diff.unknown_base):
                form = diff
                op = tree[1] if expect else _NEGATED[tree[1]]
        id_dep, data_dep = self._cond_flags(cond)
        return [Guard(tree=tree, expect=expect, form=form, op=op,
                      id_dependent=id_dep, data_dependent=data_dep,
                      location=cond.location)]

    # -- access recording -----------------------------------------------------

    def _record_access(self, expr: ast.Index, is_store: bool,
                       atomic: bool = False,
                       value: Optional[AffineForm] = None) -> None:
        root = self._root_of(expr)
        resolved = self._space_of(root.name) if root is not None else None
        if resolved is None:
            return
        space, buffer = resolved
        form = self._address_form(expr)
        self.model.accesses.append(
            Access(
                buffer=buffer,
                space=space,
                is_store=is_store,
                atomic=atomic,
                form=form,
                guards=tuple(self.guard_stack),
                loops=tuple(self.loop_stack),
                phase=self._phase,
                location=expr.location,
                unanalyzable=self.in_while > 0 or self._call_depth >= 4,
                value=value,
            )
        )

    def _address_form(self, expr: ast.Index) -> AffineForm:
        indices: list[ast.Expr] = []
        base: ast.Expr = expr
        while isinstance(base, ast.Index):
            indices.append(base.index)
            base = base.base
        indices.reverse()
        if len(indices) > 1:
            # Multi-dimensional chains have per-level extents the verifier
            # cannot bound: outside the envelope.
            return AffineForm.tainted()
        return self.evaluator.eval(indices[0])

    @property
    def _phase(self) -> int:
        return self.model.__dict__.setdefault("_phase_counter", 0)

    def _bump_phase(self) -> None:
        self.model.__dict__["_phase_counter"] = self._phase + 1

    # -- expression scanning ----------------------------------------------------

    def _scan_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.Identifier)):
            return
        if isinstance(expr, ast.Assignment):
            self._scan_assignment(expr)
            return
        if isinstance(expr, ast.Index):
            self._scan_expr(expr.index)
            if isinstance(expr.base, ast.Index):
                self._scan_index_chain(expr.base)
            self._record_access(expr, is_store=False)
            return
        if isinstance(expr, ast.BinaryOp):
            self._scan_expr(expr.left)
            self._scan_expr(expr.right)
            return
        if isinstance(expr, ast.UnaryOp):
            self._scan_expr(expr.operand)
            if expr.op in ("++", "--"):
                self._update_env_incdec(expr.operand, expr.op)
            return
        if isinstance(expr, ast.PostfixOp):
            self._scan_expr(expr.operand)
            self._update_env_incdec(expr.operand, expr.op)
            return
        if isinstance(expr, ast.Conditional):
            self._scan_expr(expr.cond)
            self._scan_expr(expr.then)
            self._scan_expr(expr.otherwise)
            return
        if isinstance(expr, ast.Cast):
            self._scan_expr(expr.operand)
            return
        if isinstance(expr, ast.Call):
            self._scan_call(expr)
            return

    def _scan_call(self, expr: ast.Call) -> None:
        if expr.name == "barrier":
            self._record_barrier(expr)
            return
        if expr.name in _ATOMIC_BUILTINS and expr.args:
            target = expr.args[0]
            if isinstance(target, ast.Index):
                self._scan_expr(target.index)
                self._record_access(target, is_store=True, atomic=True)
            elif isinstance(target, ast.Identifier):
                root = self._space_of(target.name)
                if root is not None:
                    space, buffer = root
                    self.model.accesses.append(
                        Access(buffer=buffer, space=space, is_store=True,
                               atomic=True, form=AffineForm.literal(0),
                               guards=tuple(self.guard_stack),
                               loops=tuple(self.loop_stack),
                               phase=self._phase, location=expr.location)
                    )
            for arg in expr.args[1:]:
                self._scan_expr(arg)
            return
        for arg in expr.args:
            self._scan_expr(arg)
        if expr.name in SYNC_BUILTINS or expr.name in WORK_ITEM_BUILTINS:
            return
        if expr.name in self.info.user_functions:
            self._scan_user_call(expr)

    def _record_barrier(self, expr: ast.Call) -> None:
        reasons: list[str] = []
        for guard in self.guard_stack:
            if guard.id_dependent:
                reasons.append("work-item-dependent condition")
            elif guard.data_dependent:
                reasons.append("data-dependent condition")
        for loop in self.loop_stack:
            bound = loop.bound
            if loop.irregular or bound is None:
                reasons.append("loop with irregular trip count")
            elif bound.indirect or bound.unknown_base \
                    or self.model.sync_rank_vars(bound):
                reasons.append("loop with work-item-dependent trip count")
        divergent = bool(reasons)
        self.model.barriers.append(
            BarrierSite(
                location=expr.location,
                guards=tuple(self.guard_stack),
                loops=tuple(self.loop_stack),
                divergent=divergent,
                reasons=tuple(dict.fromkeys(reasons)),
            )
        )
        if self.guard_stack or self.loop_stack:
            self.model.phases_valid = False
        else:
            self._bump_phase()

    def _scan_user_call(self, expr: ast.Call) -> None:
        if self._call_depth >= 4:
            return
        callee = self.info.user_functions[expr.name]
        sub = _ModelWalker(callee, self.model, self._call_depth + 1,
                           loop_serial=self._loop_serial)
        sub.guard_stack = self.guard_stack
        sub.loop_stack = self.loop_stack
        sub.in_while = self.in_while
        for param, arg in zip(callee.kernel.params, expr.args):
            if param.type.pointer:
                root = arg if isinstance(arg, ast.Identifier) else None
                sub.buffer_alias[param.name] = (
                    self._space_of(root.name) if root is not None else None
                )
            else:
                sub.env[param.name] = self.evaluator.eval(arg)
        sub._walk_stmt(callee.kernel.body)

    def _scan_index_chain(self, expr: ast.Expr) -> None:
        while isinstance(expr, ast.Index):
            self._scan_expr(expr.index)
            expr = expr.base

    def _scan_assignment(self, expr: ast.Assignment) -> None:
        self._scan_expr(expr.value)
        target = expr.target
        if isinstance(target, ast.Index):
            self._scan_expr(target.index)
            if isinstance(target.base, ast.Index):
                self._scan_index_chain(target.base)
            if expr.op != "=":
                self._record_access(target, is_store=False)
                self._record_access(target, is_store=True)
            else:
                self._record_access(target, is_store=True,
                                    value=self.evaluator.eval(expr.value))
        elif isinstance(target, ast.Identifier):
            self._update_env_assign(target.name, expr)
        elif isinstance(target, ast.UnaryOp) and target.op == "*":
            self._scan_expr(target.operand)
            self.model.deref_store = True

    def _update_env_assign(self, name: str, expr: ast.Assignment) -> None:
        value = self.evaluator.eval(expr.value)
        if expr.op == "=":
            self.env[name] = value
        elif expr.op == "+=":
            self.env[name] = self.env.get(name, AffineForm.opaque()) + value
        elif expr.op == "-=":
            self.env[name] = self.env.get(name, AffineForm.opaque()) - value
        else:
            self.env[name] = AffineForm.tainted(indirect=value.indirect)

    def _update_env_incdec(self, operand: ast.Expr, op: str) -> None:
        if isinstance(operand, ast.Identifier):
            delta = AffineForm.literal(1 if op == "++" else -1)
            self.env[operand.name] = (
                self.env.get(operand.name, AffineForm.opaque()) + delta
            )

    # -- statement walking -----------------------------------------------------

    def _walk_stmt(self, stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._walk_block_body(stmt.body)
        elif isinstance(stmt, ast.DeclStmt):
            self._walk_decls(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._scan_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt)
        elif isinstance(stmt, ast.For):
            self._walk_for(stmt)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._walk_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value)

    def _walk_block_body(self, body) -> None:
        """Walk a statement list, turning early-return guards into negated
        guards over the remaining statements."""
        pushed = 0
        try:
            for stmt in body:
                if isinstance(stmt, ast.Return):
                    self._walk_stmt(stmt)
                    return  # everything after an unconditional return is dead
                if (isinstance(stmt, ast.If) and stmt.otherwise is None
                        and self._then_returns(stmt.then)):
                    self._scan_expr(stmt.cond)
                    guards = self._make_guards(stmt.cond, True)
                    self.guard_stack.extend(guards)
                    try:
                        self._walk_stmt(stmt.then)
                    finally:
                        del self.guard_stack[len(self.guard_stack) - len(guards):]
                    negated = self._make_guards(stmt.cond, False)
                    self.guard_stack.extend(negated)
                    pushed += len(negated)
                    continue
                self._walk_stmt(stmt)
        finally:
            if pushed:
                del self.guard_stack[len(self.guard_stack) - pushed:]

    @staticmethod
    def _then_returns(stmt) -> bool:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, ast.Block) and stmt.body:
            return isinstance(stmt.body[-1], ast.Return)
        return False

    def _walk_decls(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            if decl.array_dims:
                extent = self._array_extent(decl.array_dims)
                if decl.type.address_space == "local":
                    self.model.local_extents[decl.name] = extent
                else:
                    self.model.private_extents[decl.name] = extent
                continue
            if decl.init is not None:
                self._scan_expr(decl.init)
                self.env[decl.name] = self.evaluator.eval(decl.init)
            else:
                self.env[decl.name] = AffineForm.opaque()

    def _array_extent(self, dims) -> Optional[int]:
        total = 1
        for dim in dims:
            form = self.evaluator.eval(dim)
            literal = form.const.literal if not form.has_vars else None
            if (literal is None or form.indirect or form.nonaffine
                    or literal <= 0):
                return None
            total *= literal
        return total

    def _walk_if(self, stmt: ast.If) -> None:
        self._scan_expr(stmt.cond)
        before = dict(self.env)

        guards = self._make_guards(stmt.cond, True)
        self.guard_stack.extend(guards)
        try:
            self._walk_stmt(stmt.then)
        finally:
            del self.guard_stack[len(self.guard_stack) - len(guards):]
        after_then = dict(self.env)

        self.env.clear()
        self.env.update(before)
        if stmt.otherwise is not None:
            negated = self._make_guards(stmt.cond, False)
            self.guard_stack.extend(negated)
            try:
                self._walk_stmt(stmt.otherwise)
            finally:
                del self.guard_stack[len(self.guard_stack) - len(negated):]
        after_else = dict(self.env)

        # Merge: keep bindings both paths agree on, taint the rest.
        merged: dict[str, AffineForm] = {}
        for name in set(after_then) | set(after_else):
            a, b = after_then.get(name), after_else.get(name)
            if a is not None and b is not None and a == b:
                merged[name] = a
            else:
                merged[name] = AffineForm.tainted()
        self.env.clear()
        self.env.update(merged)

    # -- loops ---------------------------------------------------------------

    def _detect_claim(self, stmt: ast.For) -> Optional[tuple[str, ast.Expr]]:
        """Recognise ``for (int iv = atomic_inc(W); iv < bound;
        iv = atomic_inc(W))`` and return (iv name, worklist root name,
        bound expr) — the claim-loop shape both rewrites emit."""

        def _claim_call(expr) -> Optional[str]:
            if (isinstance(expr, ast.Call) and expr.name == "atomic_inc"
                    and len(expr.args) == 1):
                root = self._root_of(expr.args[0])
                return root.name if root is not None else None
            return None

        init = stmt.init
        if not (isinstance(init, ast.DeclStmt) and len(init.decls) == 1):
            return None
        decl = init.decls[0]
        wl = _claim_call(decl.init)
        if wl is None:
            return None
        step = stmt.step
        if not (isinstance(step, ast.Assignment) and step.op == "="
                and isinstance(step.target, ast.Identifier)
                and step.target.name == decl.name
                and _claim_call(step.value) == wl):
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.BinaryOp) and cond.op == "<"
                and isinstance(cond.left, ast.Identifier)
                and cond.left.name == decl.name):
            return None
        return decl.name, wl, cond.right

    def _walk_for(self, stmt: ast.For) -> None:
        claim = self._detect_claim(stmt)
        if claim is not None:
            self._walk_claim_loop(stmt, *claim)
            return

        if stmt.init is not None:
            if isinstance(stmt.init, ast.DeclStmt):
                for decl in stmt.init.decls:
                    if decl.init is not None:
                        self._scan_expr(decl.init)
            elif isinstance(stmt.init, ast.ExprStmt):
                self._scan_expr(stmt.init.expr)
        iv, start = self._extract_iv(stmt)
        step = self._extract_step(stmt, iv) if iv is not None else None
        bound, op = (self._extract_bound(stmt, iv) if iv is not None
                     else (None, None))
        irregular = (
            iv is None or step is None or bound is None or op is None
            or bound.indirect or bound.nonaffine or bound.unknown_base
            or (start is not None
                and (start.indirect or start.nonaffine or start.unknown_base))
        )
        serial = next(self._loop_serial)
        var = loop_var(iv or f"anon{serial}", len(self.loop_stack) + 1, serial)
        loop = LoopInfo(
            var=var, start=start, bound=bound, step=step, op=op,
            irregular=irregular, has_break=self._has_break(stmt.body),
        )
        saved = self.env.get(iv) if iv is not None else None
        if iv is not None:
            iv_form = AffineForm.variable(var) * AffineForm.literal(step or 1)
            if start is not None and not irregular:
                iv_form = iv_form + start
            elif start is not None:
                iv_form = AffineForm(vars=dict(iv_form.vars),
                                     const=iv_form.const, unknown_base=True)
            self.env[iv] = iv_form
        self._taint_loop_carried(stmt.body, exclude=iv)
        self.loop_stack.append(loop)
        try:
            if stmt.cond is not None:
                self._scan_expr(stmt.cond)
            if stmt.step is not None:
                self._scan_expr(stmt.step)
            if iv is not None:
                # Scanning cond/step may have advanced the induction
                # variable's binding (e.g. `j++`); the body sees iteration 0.
                self.env[iv] = iv_form
            self._walk_stmt(stmt.body)
        finally:
            self.loop_stack.pop()
            self._taint_written(stmt.body, exclude=iv)
            if iv is not None:
                if saved is not None:
                    self.env[iv] = saved
                else:
                    self.env.pop(iv, None)

    def _walk_claim_loop(self, stmt: ast.For, iv: str, worklist: str,
                         bound_expr: ast.Expr) -> None:
        resolved = self._space_of(worklist)
        space = resolved[0] if resolved is not None else "local"
        if resolved is not None:
            # the claim itself is an atomic RMW on the worklist
            self.model.accesses.append(
                Access(buffer=resolved[1], space=space, is_store=True,
                       atomic=True, form=AffineForm.literal(0),
                       guards=tuple(self.guard_stack),
                       loops=tuple(self.loop_stack),
                       phase=self._phase, location=stmt.location)
            )
        serial = next(self._loop_serial)
        var = claim_var(iv, serial)
        bound = self.evaluator.eval(bound_expr)
        claim = ClaimLoop(var=var, worklist=worklist, space=space,
                          bound=bound, location=stmt.location)
        self.model.claim_loops.append(claim)
        loop = LoopInfo(var=var, start=AffineForm.literal(0), bound=bound,
                        step=1, op="<", irregular=False,
                        has_break=self._has_break(stmt.body), claim=claim)
        saved = self.env.get(iv)
        self.env[iv] = AffineForm.variable(var)
        self._taint_loop_carried(stmt.body, exclude=iv)
        self.loop_stack.append(loop)
        try:
            self._walk_stmt(stmt.body)
        finally:
            self.loop_stack.pop()
            self._taint_written(stmt.body, exclude=iv)
            if saved is not None:
                self.env[iv] = saved
            else:
                self.env.pop(iv, None)

    def _walk_while(self, stmt) -> None:
        self._scan_expr(stmt.cond)
        self._taint_loop_carried(stmt.body, exclude=None)
        serial = next(self._loop_serial)
        loop = LoopInfo(var=loop_var(f"while{serial}",
                                     len(self.loop_stack) + 1, serial),
                        start=None, bound=None, step=None, op=None,
                        irregular=True, has_break=True)
        self.loop_stack.append(loop)
        self.in_while += 1
        try:
            self._walk_stmt(stmt.body)
        finally:
            self.in_while -= 1
            self.loop_stack.pop()
            self._taint_written(stmt.body, exclude=None)

    # -- loop-carried-value hygiene ---------------------------------------------

    def _written_names(self, body) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(body):
            if isinstance(node, ast.Assignment):
                if isinstance(node.target, ast.Identifier):
                    names.add(node.target.name)
            elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)):
                if node.op in ("++", "--") and isinstance(
                        node.operand, ast.Identifier):
                    names.add(node.operand.name)
        return names

    def _taint_loop_carried(self, body, exclude: Optional[str]) -> None:
        """Before walking a loop body: variables whose body assignment reads
        their own prior value (accumulators) carry state across iterations
        the single symbolic walk cannot express — taint them."""
        written = self._written_names(body)
        written.discard(exclude)
        if not written:
            return
        reads: set[str] = set()
        for node in ast.walk(body):
            if isinstance(node, ast.Assignment):
                if (isinstance(node.target, ast.Identifier)
                        and node.op != "="):
                    reads.add(node.target.name)
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Identifier):
                        reads.add(sub.name)
            elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)):
                if node.op in ("++", "--") and isinstance(
                        node.operand, ast.Identifier):
                    reads.add(node.operand.name)
        for name in written & reads:
            self.env[name] = AffineForm.tainted()

    def _taint_written(self, body, exclude: Optional[str]) -> None:
        """After a loop: bindings made inside reflect one symbolic iteration,
        not the loop's final state — taint them for post-loop uses."""
        for name in self._written_names(body) - {exclude}:
            if name in self.env:
                self.env[name] = AffineForm.tainted()

    def _extract_iv(self, stmt: ast.For):
        init = stmt.init
        if isinstance(init, ast.DeclStmt) and len(init.decls) == 1:
            decl = init.decls[0]
            start = (self.evaluator.eval(decl.init)
                     if decl.init is not None else AffineForm.literal(0))
            return decl.name, start
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr,
                                                         ast.Assignment):
            target = init.expr.target
            if isinstance(target, ast.Identifier) and init.expr.op == "=":
                return target.name, self.evaluator.eval(init.expr.value)
        return None, None

    def _extract_step(self, stmt: ast.For, iv: str) -> Optional[int]:
        step = stmt.step
        if step is None:
            return None
        if isinstance(step, (ast.PostfixOp, ast.UnaryOp)) and step.op in (
                "++", "--"):
            operand = step.operand
            if isinstance(operand, ast.Identifier) and operand.name == iv:
                return 1 if step.op == "++" else -1
        if isinstance(step, ast.Assignment) and isinstance(
                step.target, ast.Identifier) and step.target.name == iv:
            delta = None
            if step.op in ("+=", "-="):
                form = self.evaluator.eval(step.value)
                delta = form.const.literal if not form.has_vars else None
                if delta is not None and step.op == "-=":
                    delta = -delta
            elif step.op == "=" and isinstance(step.value, ast.BinaryOp):
                value = step.value
                if (value.op in ("+", "-")
                        and isinstance(value.left, ast.Identifier)
                        and value.left.name == iv):
                    form = self.evaluator.eval(value.right)
                    delta = form.const.literal if not form.has_vars else None
                    if delta is not None and value.op == "-":
                        delta = -delta
            if delta:
                return delta
        return None

    def _extract_bound(self, stmt: ast.For, iv: str):
        """(bound form, op) with op normalised to ``iv OP bound``."""
        cond = stmt.cond
        if not isinstance(cond, ast.BinaryOp) or cond.op not in (
                "<", "<=", ">", ">="):
            return None, None
        left_is_iv = (isinstance(cond.left, ast.Identifier)
                      and cond.left.name == iv)
        right_is_iv = (isinstance(cond.right, ast.Identifier)
                       and cond.right.name == iv)
        if left_is_iv:
            return self.evaluator.eval(cond.right), cond.op
        if right_is_iv:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            return self.evaluator.eval(cond.left), flipped[cond.op]
        return None, None

    @staticmethod
    def _has_break(body) -> bool:
        for node in ast.walk(body):
            if isinstance(node, (ast.Break, ast.Continue)):
                return True
            if isinstance(node, ast.Return):
                return True
        return False


# ``KernelInfo`` is an unhashable dataclass, so a WeakKeyDictionary keyed
# on it raises TypeError on every lookup and never memoises anything —
# key by id() with a weakref finalizer instead (the verify/jit cache
# idiom): identity is exactly the sharing unit of the serving layer's
# prepared artifacts, and the finalizer evicts when the info dies.
_MODEL_CACHE: dict[int, tuple["weakref.ref", "AccessModel"]] = {}
_RW_CACHE: dict[int, tuple["weakref.ref", "LaunchRWSummary"]] = {}
_CACHE_LOCK = threading.Lock()


def _memo_get(cache: dict, info: KernelInfo):
    with _CACHE_LOCK:
        entry = cache.get(id(info))
        if entry is not None and entry[0]() is info:
            return entry[1]
    return None


def _memo_put(cache: dict, info: KernelInfo, value) -> None:
    ident = id(info)
    try:
        # no lock in the callback: dict.pop is atomic under the GIL, and
        # taking _CACHE_LOCK from a GC callback could deadlock
        ref = weakref.ref(info, lambda _r, i=ident, c=cache: c.pop(i, None))
    except TypeError:  # pragma: no cover - non-weakrefable info
        return
    with _CACHE_LOCK:
        cache[ident] = (ref, value)


def build_access_model(info: KernelInfo) -> AccessModel:
    """Build (and memoise per KernelInfo) the access model for a kernel."""
    cached = _memo_get(_MODEL_CACHE, info)
    if cached is not None:
        return cached
    model = AccessModel(info=info, kernel=info.kernel.name)
    _ModelWalker(info, model).run()
    _memo_put(_MODEL_CACHE, info, model)
    return model


@dataclass(frozen=True)
class LaunchRWSummary:
    """Which *global* buffer parameters a launch reads and writes.

    This is the launch-level face of the access model, consumed by the
    serving layer's hazard matcher (:mod:`repro.serve.graph`): a kernel
    conflicts with an in-flight one iff their read/write sets touch
    overlapping buffers.  ``exact`` is False when the walker saw a
    pointer-deref store it could not attribute to a named buffer — the
    summary then conservatively claims every buffer parameter as both
    read and written, which can only over-order, never miss a hazard.
    """

    reads: frozenset[str]
    writes: frozenset[str]
    exact: bool = True


def launch_rw_summary(info: KernelInfo) -> LaunchRWSummary:
    """Summarise (and memoise) a kernel's global-buffer read/write sets.

    Soundness follows the walker's demotion rules: unanalyzable accesses
    still carry their buffer name, so they classify correctly; atomics
    are read-modify-write and land in both sets; only an unattributable
    pointer-deref store (``model.deref_store``) forces the all-buffers
    fallback.  A declared buffer parameter the kernel never touches
    (e.g. FDTD2's unused ``ey``) appears in neither set.
    """
    cached = _memo_get(_RW_CACHE, info)
    if cached is not None:
        return cached
    model = build_access_model(info)
    params = frozenset(info.buffer_params)
    if model.deref_store:
        summary = LaunchRWSummary(reads=params, writes=params, exact=False)
    else:
        reads = set()
        writes = set()
        for access in model.accesses:
            if access.space != "global" or access.buffer not in params:
                continue
            if access.is_store or access.atomic:
                writes.add(access.buffer)
            if not access.is_store or access.atomic:
                reads.add(access.buffer)
        summary = LaunchRWSummary(reads=frozenset(reads),
                                  writes=frozenset(writes))
    _memo_put(_RW_CACHE, info, summary)
    return summary
